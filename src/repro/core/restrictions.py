"""Allocation restrictions from ASAP parallelism (section 4.3).

The greedy allocator could otherwise keep adding units of one type; the
ASAP schedule bounds how many same-type operations can ever execute in
parallel, so allocating beyond that peak can never help.  The cap for a
resource is the highest per-control-step count of any operation type it
executes, maximised over all BSBs.
"""

from repro.core.rmap import RMap
from repro.sched.asap import asap_schedule


def asap_type_parallelism(bsbs, library=None):
    """Per op type, the max same-step count over all BSB ASAP schedules."""
    peaks = {}
    for bsb in bsbs:
        schedule = asap_schedule(bsb.dfg, library=library)
        for optype, count in schedule.max_type_parallelism().items():
            if count > peaks.get(optype, 0):
                peaks[optype] = count
    return peaks


def asap_restrictions(bsbs, library):
    """Restriction RMap: resource name -> max allocatable instances."""
    peaks = asap_type_parallelism(bsbs, library=library)
    restrictions = RMap()
    for optype, peak in peaks.items():
        if not library.supports(optype):
            continue
        resource = library.resource_for(optype)
        # A multi-function unit inherits the largest peak among its types.
        if peak > restrictions[resource.name]:
            restrictions[resource.name] = peak
    return restrictions


def exclusive_type_load(dfg, library):
    """Per-resource work that *only* that resource can absorb.

    For every operation type with exactly one capable unit in the
    library, all of the DFG's operations of that type must run on that
    unit's instances — whatever the allocation.  Returns ``{resource
    name: (op count, latency)}``; with ``c`` allocated instances and a
    non-pipelined pool, those operations alone need at least
    ``ceil(op_count / c) * latency`` control steps.  The branch-and-
    bound search combines this load floor with the dependency-only
    critical path (:func:`~repro.core.eca.min_latency_states`) into an
    admissible schedule-length bound — unlike a schedule *under* the
    restriction caps, which list scheduling anomalies make inadmissible.
    """
    loads = {}
    for optype, op_count in dfg.count_by_type().items():
        candidates = library.candidates_for(optype)
        if len(candidates) != 1:
            continue
        resource = candidates[0]
        count, latency = loads.get(resource.name, (0, resource.latency))
        loads[resource.name] = (count + op_count, latency)
    return loads


def relax_restrictions(restrictions, factor):
    """Scale every cap by ``factor`` (ablation helper; ceil, min 1)."""
    relaxed = RMap()
    for name, count in restrictions.items():
        relaxed[name] = max(1, int(count * factor + 0.999999))
    return relaxed
