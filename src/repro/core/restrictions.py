"""Allocation restrictions from ASAP parallelism (section 4.3).

The greedy allocator could otherwise keep adding units of one type; the
ASAP schedule bounds how many same-type operations can ever execute in
parallel, so allocating beyond that peak can never help.  The cap for a
resource is the highest per-control-step count of any operation type it
executes, maximised over all BSBs.
"""

from repro.core.rmap import RMap
from repro.sched.asap import asap_schedule


def asap_type_parallelism(bsbs, library=None):
    """Per op type, the max same-step count over all BSB ASAP schedules."""
    peaks = {}
    for bsb in bsbs:
        schedule = asap_schedule(bsb.dfg, library=library)
        for optype, count in schedule.max_type_parallelism().items():
            if count > peaks.get(optype, 0):
                peaks[optype] = count
    return peaks


def asap_restrictions(bsbs, library):
    """Restriction RMap: resource name -> max allocatable instances."""
    peaks = asap_type_parallelism(bsbs, library=library)
    restrictions = RMap()
    for optype, peak in peaks.items():
        if not library.supports(optype):
            continue
        resource = library.resource_for(optype)
        # A multi-function unit inherits the largest peak among its types.
        if peak > restrictions[resource.name]:
            restrictions[resource.name] = peak
    return restrictions


def relax_restrictions(restrictions, factor):
    """Scale every cap by ``factor`` (ablation helper; ceil, min 1)."""
    relaxed = RMap()
    for name, count in restrictions.items():
        relaxed[name] = max(1, int(count * factor + 0.999999))
    return relaxed
