"""Pluggable search objectives over allocation evaluations.

The paper optimises one scalar — PACE speed-up under the ASIC area cap
— and until this module that contract was welded into every consumer:
the ``_better`` tournament of :mod:`repro.core.exhaustive`, the design
-iteration loop's ``evaluation.speedup`` comparisons, the service wire
format and the CLI tables.  An :class:`Objective` lifts the contract
into one seam:

* :meth:`Objective.key` maps an evaluation to a *maximise-oriented*
  sortable tuple, so ``better(candidate, incumbent)`` is simply a tuple
  comparison and incumbent-wins-on-tie falls out of ``>`` being strict;
* :meth:`Objective.primary` is the key's leading axis — the scalar the
  strict-only prune thresholds and the shared parallel incumbent carry;
* :meth:`Objective.improves` compares *only* the primary axis, which is
  what the reduce-only design iteration accepts steps on (the default
  objective must reproduce its historical pure-speed-up comparisons);
* :attr:`Objective.bounded` says whether the branch-and-bound search
  has an admissible per-node bound for the objective — objectives
  without one fall back to the brute scan.

:class:`SpeedupObjective` (the default) reproduces the historical
tournament exactly: higher speed-up wins, ties go to the smaller
data-path, exact ties keep the incumbent (scan order).
:class:`ParetoObjective` keeps that tournament for the single reported
winner while additionally collecting the non-dominated front over
(speed-up, −area, −energy) with a dominance filter and a hypervolume
metric (:class:`ParetoFront`).

Objectives are stateless singletons addressed by name — the form that
travels across process forks and the service wire.
"""

from repro.errors import ReproError

#: Objective names understood by every ``--objective`` surface.
OBJECTIVE_NAMES = ("speedup", "area", "energy", "pareto")


class Objective:
    """One total order over allocation evaluations.

    Subclasses define :meth:`key`; every comparison derives from it.
    Keys are maximise-oriented: minimised quantities (area, energy)
    enter negated, so ``>`` on keys is always "strictly better".
    """

    #: Registry/wire name of the objective.
    name = None
    #: True when :class:`~repro.core.bounds.BoundEngine` offers an
    #: admissible per-node bound, enabling ``search="pruned"``.
    bounded = False

    def key(self, evaluation, library):
        """Maximise-oriented sortable tuple of one evaluation."""
        raise NotImplementedError

    def primary(self, evaluation, library):
        """The key's leading axis (the oriented prune-threshold scalar)."""
        return self.key(evaluation, library)[0]

    def better(self, candidate, incumbent, library):
        """Strictly better under the full key (ties keep the incumbent)."""
        return self.key(candidate, library) > self.key(incumbent, library)

    def improves(self, candidate, incumbent, library):
        """Strictly better on the primary axis alone.

        The design-iteration loop historically accepted steps on pure
        speed-up (no area tie-break); routing it through this method
        keeps that behaviour bit-identical under the default objective
        while generalising the axis.
        """
        return (self.primary(candidate, library)
                > self.primary(incumbent, library))

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)


class SpeedupObjective(Objective):
    """The paper's contract: speed-up, area tie-break, incumbent wins."""

    name = "speedup"
    bounded = True

    def key(self, evaluation, library):
        return (evaluation.speedup,
                -evaluation.allocation.area(library))


class AreaObjective(Objective):
    """Smallest data-path wins; speed-up breaks area ties."""

    name = "area"
    bounded = True

    def key(self, evaluation, library):
        return (-evaluation.allocation.area(library),
                evaluation.speedup)


class EnergyObjective(Objective):
    """Lowest energy wins; speed-up, then area, break ties."""

    name = "energy"
    bounded = True

    def key(self, evaluation, library):
        return (-evaluation.energy, evaluation.speedup,
                -evaluation.allocation.area(library))


def dominates(left, right):
    """True when oriented vector ``left`` Pareto-dominates ``right``:
    no axis worse, at least one strictly better."""
    return all(l >= r for l, r in zip(left, right)) and \
        any(l > r for l, r in zip(left, right))


class ParetoFront:
    """The non-dominated set of (oriented vector, payload) points.

    Insertion keeps the *first* point of an exact vector tie (scan
    order), mirroring the incumbent-wins tournament; dominated points
    are filtered on entry and evicted when a new point dominates them.
    The final set is order-independent up to exact ties, which is what
    makes chunk-order merging of parallel scans identical to the
    serial scan.
    """

    __slots__ = ("_points",)

    def __init__(self):
        self._points = []  # insertion-ordered (vector, payload) pairs

    def __len__(self):
        return len(self._points)

    def add(self, vector, payload=None):
        """Offer one point; True when it entered the front."""
        vector = tuple(vector)
        for existing, _ in self._points:
            if existing == vector or dominates(existing, vector):
                return False
        self._points = [(existing, kept) for existing, kept
                        in self._points
                        if not dominates(vector, existing)]
        self._points.append((vector, payload))
        return True

    def merge(self, other):
        """Fold another front in (its insertion order); returns self."""
        for vector, payload in other.items():
            self.add(vector, payload)
        return self

    def items(self):
        """(vector, payload) pairs in insertion (scan) order."""
        return list(self._points)

    def points(self):
        """(vector, payload) pairs sorted descending by vector —
        the deterministic reporting order."""
        return sorted(self._points, key=lambda point: point[0],
                      reverse=True)

    def vectors(self):
        """The oriented vectors, in :meth:`points` order."""
        return [vector for vector, _ in self.points()]

    def reference_point(self):
        """The nadir-ish hypervolume reference: per-axis minimum over
        the front, pushed out by max(10% of the axis span, 1.0) so
        boundary points contribute non-zero volume."""
        vectors = self.vectors()
        if not vectors:
            return ()
        axes = len(vectors[0])
        reference = []
        for axis in range(axes):
            values = [vector[axis] for vector in vectors]
            low, high = min(values), max(values)
            reference.append(low - max(0.1 * (high - low), 1.0))
        return tuple(reference)

    def hypervolume(self, reference=None):
        """Volume dominated by the front above ``reference``.

        Oriented maximise-space hypervolume via recursive slicing on
        the leading axis.  With the default reference every front
        point strictly dominates it, so the metric is positive for any
        non-empty front and monotone under front improvement.
        """
        if not self._points:
            return 0.0
        if reference is None:
            reference = self.reference_point()
        return _hypervolume(self.vectors(), tuple(reference))

    def __repr__(self):
        return "ParetoFront(points=%d)" % len(self._points)


def _hypervolume(vectors, reference):
    """Recursive slab hypervolume of maximise-oriented ``vectors``."""
    points = sorted({tuple(vector) for vector in vectors
                     if all(value > floor for value, floor
                            in zip(vector, reference))},
                    reverse=True)
    if not points:
        return 0.0
    if len(reference) == 1:
        return points[0][0] - reference[0]
    volume = 0.0
    for index, point in enumerate(points):
        lower = points[index + 1][0] if index + 1 < len(points) \
            else reference[0]
        width = point[0] - lower
        if width <= 0:
            continue
        volume += width * _hypervolume(
            [other[1:] for other in points[:index + 1]], reference[1:])
    return volume


class ParetoObjective(Objective):
    """Collect the (speed-up, −area, −energy) non-dominated front.

    The single reported winner stays the :class:`SpeedupObjective`
    tournament's — the front is the *additional* product — so a Pareto
    search's ``best_allocation`` is bit-identical to the default
    search's.  No admissible per-node bound covers all three axes at
    once, so the objective is unbounded and pruned searches fall back
    to the brute scan.
    """

    name = "pareto"
    bounded = False
    #: Human names of the oriented vector's axes, in order.
    axes = ("speedup", "area", "energy")

    def key(self, evaluation, library):
        return (evaluation.speedup,
                -evaluation.allocation.area(library))

    def vector(self, evaluation, library):
        """The oriented dominance vector of one evaluation."""
        return (evaluation.speedup,
                -evaluation.allocation.area(library),
                -evaluation.energy)

    def new_front(self):
        return ParetoFront()


_OBJECTIVES = {
    "speedup": SpeedupObjective(),
    "area": AreaObjective(),
    "energy": EnergyObjective(),
    "pareto": ParetoObjective(),
}

#: The objective every surface defaults to — the paper's contract.
DEFAULT_OBJECTIVE = _OBJECTIVES["speedup"]


def get_objective(name):
    """The singleton objective registered under ``name``."""
    try:
        return _OBJECTIVES[name]
    except KeyError:
        raise ReproError("unknown objective %r (expected one of %s)"
                         % (name, ", ".join(OBJECTIVE_NAMES))) from None


def as_objective(objective):
    """Coerce a name / ``None`` / :class:`Objective` to an objective."""
    if objective is None:
        return DEFAULT_OBJECTIVE
    if isinstance(objective, Objective):
        return objective
    return get_objective(objective)
