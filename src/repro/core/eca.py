"""Estimated Controller Area (section 4.2, formula from [6]).

Moving a BSB to hardware costs its controller: registers holding the
state, plus decode logic.  The number of states ``N`` is estimated as
the ASAP schedule length — optimistic, because no allocation exists yet
to drive a list-based schedule ("the allocation is what we are looking
for").  Section 5.1 studies the consequences of that optimism; the
``states`` argument below lets callers plug in the list-schedule length
instead to compute the *actual* controller area of a moved BSB.

    ECA = A_R + A_AG + A_OG + log2(N) * A_R + (N - 1) * (A_IG + 2 * A_AG)
"""

import math

from repro.errors import AllocationError
from repro.hwlib.technology import DEFAULT_TECHNOLOGY
from repro.sched.asap import asap_schedule
from repro.sched.schedule import Schedule


def estimated_states(dfg, library=None):
    """Optimistic state count of a BSB: its ASAP schedule length."""
    return max(1, asap_schedule(dfg, library=library).length)


def min_latency_states(dfg, library=None):
    """Admissible floor on the state count under *any* allocation.

    The ASAP schedule with every operation at the minimum latency over
    all capable units (not just the designated one — module-selection
    mixes may bind an operation to a faster non-default unit) is a lower
    bound on every achievable schedule length: no allocation, however
    generous, finishes sooner than the dependency-only critical path at
    best-case latencies.  The branch-and-bound search uses this as the
    per-BSB optimistic hardware time; unlike :func:`estimated_states`
    it returns 0 for an empty DFG (matching ``hardware_steps``).
    """
    latencies = {}
    for op in dfg.operations():
        best = None
        if library is not None:
            for resource in library.candidates_for(op.optype):
                if best is None or resource.latency < best:
                    best = resource.latency
        latencies[op.uid] = best if best is not None else 1
    schedule = Schedule(dfg, latencies)
    for op in dfg.topological_order():
        earliest = 1
        for producer in dfg.predecessors(op):
            finish = schedule.finish(producer)
            if finish + 1 > earliest:
                earliest = finish + 1
        schedule.place(op, earliest)
    return schedule.length


def controller_area_for_states(states, technology=None):
    """Controller area for a state machine with ``states`` states."""
    if states < 1:
        raise AllocationError("controller needs >= 1 state, got %r"
                              % (states,))
    tech = technology if technology is not None else DEFAULT_TECHNOLOGY
    state_registers = math.ceil(math.log2(states)) if states > 1 else 0
    return (tech.register_area + tech.and_gate_area + tech.or_gate_area
            + state_registers * tech.register_area
            + (states - 1) * (tech.inverter_area + 2 * tech.and_gate_area))


def estimated_controller_area(dfg, library=None, technology=None):
    """The paper's ECA of a BSB: optimistic (ASAP-based) controller area."""
    return controller_area_for_states(estimated_states(dfg, library=library),
                                      technology=technology)


def actual_controller_area(dfg, allocation, library, technology=None):
    """Controller area using the real list schedule under ``allocation``.

    This is the quantity the optimistic ECA underestimates (section 5.1):
    the list schedule under a finite allocation is never shorter than the
    ASAP schedule, so this area is >= the ECA.
    """
    from repro.sched.list_scheduler import list_schedule

    states = max(1, list_schedule(dfg, allocation, library).length)
    return controller_area_for_states(states, technology=technology)
