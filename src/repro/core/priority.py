"""BSB prioritisation (Definition 4, section 4.1).

``B_k -> B_l`` (B_k has priority over B_l) iff
``max_o U(o, B_k) >= max_o U(o, B_l)``.  The sort is stable with a
deterministic tie-break on the BSB's position in the original array, so
equal-urgency BSBs keep program order — which also makes the allocator's
"restart from the front after every allocation change" loop reproducible.
"""


def bsb_priority_key(bsb, state, hw_uids, allocation, original_index=0):
    """Sort key: descending max urgency, then original array position."""
    value, _ = state.max_urgency(bsb, bsb.uid in hw_uids, allocation)
    return (-value, original_index)


def prioritize(bsbs, state, hw_uids, allocation):
    """Return the BSB array sorted by Definition 4's priority relation."""
    indexed = list(enumerate(bsbs))
    indexed.sort(key=lambda pair: bsb_priority_key(
        pair[1], state, hw_uids, allocation, original_index=pair[0]))
    return [bsb for _, bsb in indexed]
