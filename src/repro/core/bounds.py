"""Admissible bounds for the branch-and-bound exhaustive search.

A node of the allocation prefix tree fixes the counts of the first
``k`` resources; every leaf below it completes the remaining counts
with anything up to the restriction caps.  Pruning the node is sound
iff no completion can beat the incumbent, which needs two *admissible*
(never-underestimating-the-subtree) quantities:

* an **area lower bound** — the decided digits' data-path area; the
  undecided resources contribute at least zero, and adding units never
  shrinks the area, so a prefix already over the ASIC area kills its
  whole subtree (this generalises the brute scan's per-candidate
  ``check_area`` skip);
* a **speed-up upper bound** — a fractional-knapsack relaxation of
  PACE: each BSB contributes at most its best-case gain (software time
  minus profiled hardware time at an optimistic schedule-length floor)
  at no less than its best-case controller area, into no more than
  ``total_area - prefix_area`` of controller room, ignoring
  communication and the contiguous-sequence restriction.  Every
  relaxation step only *raises* the bound, so it can never prune a
  subtree containing the true winner.

The schedule-length floor is the part that needs care: list scheduling
is not monotone in resource counts (Graham's anomaly), so "schedule
under the caps" is *not* a valid floor.  The floor used here is the
maximum of two quantities that are:

* the dependency-only critical path at per-operation *minimum*
  latencies (:func:`~repro.core.eca.min_latency_states`), valid under
  any allocation;
* the load floor ``ceil(ops / count) * latency`` for resources that
  are the *only* capable unit of some operation type
  (:func:`~repro.core.restrictions.exclusive_type_load`) — those
  operations cannot migrate elsewhere, and both schedulers hold a unit
  for the full latency of the operation it executes.
"""

from repro.core.eca import controller_area_for_states, min_latency_states
from repro.core.restrictions import exclusive_type_load
from repro.partition.model import _capability, _software_time
from repro.partition.speedup import speedup_percent

#: Relative inflation applied to every speed-up bound.  The bound and
#: the evaluated speed-ups accumulate floating-point error in different
#: summation orders; a mathematically-tied case could otherwise land an
#: ulp *below* the true value and wrongly prune the brute winner.  The
#: inflation is ~1e2 larger than the worst accumulated rounding error
#: and ~1e7 smaller than any speed-up difference the tournament cares
#: about, so admissibility is restored at ~zero pruning-power cost.
_BOUND_RTOL = 1e-9


class BoundEngine:
    """Per-node speed-up upper bounds over one allocation space.

    Bound to one (BSB array, architecture, axis order) triple; the
    per-BSB schedule-length floors are memoised in the session
    :class:`~repro.engine.cache.EvalCache` (stage ``"bound"``), so the
    many nodes a search visits collapse onto the few distinct capped
    count vectors each BSB can see.
    """

    def __init__(self, bsbs, architecture, names, caps, cache):
        self._bsbs = bsbs
        self._architecture = architecture
        self._cache = cache
        self._energy_items = None  # built lazily by energy_floor()
        self._ratio = architecture.hw_cycle_ratio
        self._total_area = architecture.total_area
        self._technology = architecture.library.technology
        library = architecture.library
        self._library_pin = cache.pin(library)
        axis_index = {name: index for index, name in enumerate(names)}
        infos = []
        sw_all = 0.0
        for bsb in bsbs:
            sw_time = _software_time(bsb, architecture.processor,
                                     cache=cache)
            sw_all += sw_time
            infos.append(self._bsb_info(bsb, sw_time, library,
                                        axis_index, caps))
        self._infos = infos
        self._sw_all = sw_all

    def _bsb_info(self, bsb, sw_time, library, axis_index, caps):
        """Static per-BSB bound inputs, or ``None`` for a BSB that can
        never contribute gain anywhere in the space."""
        if not len(bsb.dfg):
            # An empty BSB runs in zero hardware steps under every
            # allocation: constant gain, one-state controller.
            return (bsb.uid, sw_time, bsb.profile_count, 0, (), (),
                    controller_area_for_states(1,
                                               technology=self._technology))
        requirements = []
        _, per_type = _capability(bsb, library, cache=self._cache)
        for optype in sorted(per_type, key=lambda optype: optype.value):
            axes = tuple(sorted(axis_index[name]
                                for name in per_type[optype]
                                if name in axis_index))
            if not axes:
                return None  # no searched resource executes this type
            if all(caps[axis] == 0 for axis in axes):
                return None  # zero-capped everywhere: never movable
            requirements.append(axes)
        loads = []
        for name, (op_count, latency) in sorted(
                exclusive_type_load(bsb.dfg, library).items()):
            axis = axis_index.get(name)
            if axis is None:
                return None
            loads.append((axis, op_count, latency))
        asap_lb = min_latency_states(bsb.dfg, library=library)
        return (bsb.uid, sw_time, bsb.profile_count, asap_lb,
                tuple(requirements), tuple(loads), None)

    def _steps_floor(self, uid, asap_lb, loads, effective):
        """Memoised admissible schedule-length floor of one BSB."""
        capped = tuple(min(effective[axis], op_count)
                       for axis, op_count, _ in loads)
        key = (uid, self._library_pin, capped)
        cache = self._cache
        entry = cache.bounds.get(key)
        if entry is not None:
            cache.stats.hit("bound")
            return entry
        cache.stats.miss("bound")
        steps = asap_lb
        for (axis, op_count, latency), count in zip(loads, capped):
            floor = -(-op_count // count) * latency
            if floor > steps:
                steps = floor
        entry = (steps, controller_area_for_states(
            max(1, steps), technology=self._technology))
        cache.bounds[key] = entry
        return entry

    def speedup_bound(self, effective, prefix_area):
        """Optimistic speed-up of any completion of the prefix.

        ``effective`` holds, per axis, the decided digit or (for
        undecided axes) the restriction cap — the most generous count
        any leaf of the subtree can reach.  ``prefix_area`` is the
        decided digits' data-path area, the subtree's area floor.
        Returns ``inf`` when the optimistic saving covers the whole
        software time (nothing can be concluded, never prune).
        """
        sw_all = self._sw_all
        if sw_all <= 0:
            return 0.0
        capacity = self._total_area - prefix_area
        if capacity <= 0:
            return 0.0
        ratio = self._ratio
        items = []
        for info in self._infos:
            if info is None:
                continue
            (uid, sw_time, profile, asap_lb, requirements, loads,
             fixed_area) = info
            if fixed_area is not None:  # empty DFG: constant bound
                if sw_time > 0:
                    items.append((sw_time, fixed_area))
                continue
            movable = True
            for axes in requirements:
                if not any(effective[axis] for axis in axes):
                    movable = False
                    break
            if not movable:
                continue
            steps, eca_floor = self._steps_floor(uid, asap_lb, loads,
                                                 effective)
            gain = sw_time - profile * steps * ratio
            if gain > 0:
                items.append((gain, eca_floor))
        if not items:
            return 0.0
        items.sort(key=lambda item: item[0] / item[1], reverse=True)
        saving = 0.0
        remaining = capacity
        for gain, weight in items:
            if weight <= remaining:
                saving += gain
                remaining -= weight
            else:
                saving += gain * (remaining / weight)
                break
        if saving <= 0:
            return 0.0
        hybrid_floor = sw_all - saving
        if hybrid_floor <= 0:
            return float("inf")
        # Mirror the evaluated expression exactly (monotone in the
        # saving even under floating point), then inflate.
        return speedup_percent(sw_all, hybrid_floor) * (1.0 + _BOUND_RTOL)

    def energy_floor(self, effective):
        """Admissible energy lower bound of any completion.

        Every completion of the prefix allocates, per axis, at most
        ``effective[axis]`` units, and hardware support only grows
        with counts — so a BSB unsupported under ``effective`` stays
        in software in *every* leaf of the subtree and contributes its
        software energy exactly, while a supported BSB contributes at
        least the cheaper of its two sides.  The per-BSB energies are
        the very pairs the evaluator sums
        (:func:`~repro.partition.model.bsb_energy_pairs`), summed in
        the same order, so no completion can land below the floor.
        """
        items = self._energy_items
        if items is None:
            from repro.partition.model import bsb_energy_pairs

            pairs = bsb_energy_pairs(self._bsbs, self._architecture,
                                     cache=self._cache)
            items = []
            for (sw_energy, hw_energy), info in zip(pairs, self._infos):
                # info is None for BSBs that can never move anywhere in
                # the space; requirements slot 4 holds the per-type
                # capable axes otherwise (empty tuple for an empty DFG,
                # which is movable under every allocation).
                if info is None or hw_energy is None:
                    items.append((sw_energy, None, ()))
                else:
                    items.append((sw_energy, hw_energy, info[4]))
            self._energy_items = items = tuple(items)
        floor = 0.0
        for sw_energy, hw_energy, requirements in items:
            if hw_energy is not None and hw_energy < sw_energy and all(
                    any(effective[axis] for axis in axes)
                    for axes in requirements):
                floor += hw_energy
            else:
                floor += sw_energy
        return floor
