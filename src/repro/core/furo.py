"""FURO and dynamic urgency (Definitions 2 and 3).

The Functional Unit Request Overlap estimates, per operation type ``o``
and BSB ``B_k`` with profile count ``p_k``:

    FURO(o, B_k) = p_k * sum over pairs i != j with T(i) = T(j) = o,
                   j not in Succ(i), i not in Succ(j),
                   of Ovl(i, j) / (M(i) * M(j))

where ``Ovl`` is the overlap of the ASAP–ALAP start intervals and ``M``
the mobility.  The sum in the paper ranges over *ordered* pairs, which
counts every unordered pair twice; we follow the formula literally so
unit tests can check hand-computed values.

Definition 3 then derives the dynamic urgency used for prioritisation:

    U(o, B_k) = FURO(o, B_k)                      if B_k in software
    U(o, B_k) = FURO(o, B_k) / (Alloc(o) + 1)     if B_k in hardware

where ``Alloc(o)`` counts allocated units able to execute ``o`` — so a
BSB already benefiting from hardware sinks in priority as units
accumulate (Example 2).
"""

import itertools

from repro.core.rmap import RMap
from repro.engine.cache import EvalCache
from repro.sched.mobility import (
    asap_alap_intervals,
    interval_overlap,
    mobility,
)


def furo(bsb, library=None, cache=None):
    """FURO values of one BSB: mapping op type -> FURO(o, B).

    The computation is the paper's one-time L*k^2 preprocessing step
    (section 4.4); callers should cache the result, which
    :class:`UrgencyState` does for whole BSB arrays and an engine
    :class:`~repro.engine.cache.EvalCache` does across them.
    """
    engine_cache = cache if isinstance(cache, EvalCache) else None
    if engine_cache is not None:
        key = (bsb.uid, engine_cache.pin(library))
        values = engine_cache.furo.get(key)
        if values is not None:
            engine_cache.stats.hit("furo")
            return values
        engine_cache.stats.miss("furo")
    dfg = bsb.dfg
    intervals = asap_alap_intervals(
        dfg, library=library,
        cache=None if engine_cache is None else engine_cache.intervals,
        cache_key=None if engine_cache is None
        else (bsb.uid, engine_cache.pin(library)))
    values = {}
    for optype in dfg.op_types():
        ops = dfg.operations_of_type(optype)
        if len(ops) < 2:
            values[optype] = 0.0
            continue
        total = 0.0
        for op_i, op_j in itertools.combinations(ops, 2):
            if op_j in dfg.transitive_successors(op_i):
                continue
            if op_i in dfg.transitive_successors(op_j):
                continue
            overlap = interval_overlap(intervals[op_i.uid],
                                       intervals[op_j.uid])
            if overlap:
                total += overlap / (mobility(intervals[op_i.uid])
                                    * mobility(intervals[op_j.uid]))
        # Definition 2 sums over ordered pairs; combinations() walked the
        # unordered ones, hence the factor two.
        values[optype] = bsb.profile_count * 2.0 * total
    if engine_cache is not None:
        engine_cache.furo[key] = values
    return values


def allocated_units_for(optype, allocation, library):
    """Alloc(o): allocated instances able to execute ``optype``."""
    allocation = RMap._coerce(allocation)
    return sum(count for name, count in allocation.items()
               if library.get(name).executes(optype))


class UrgencyState:
    """Cached FURO values plus the dynamic urgency of Definition 3.

    FURO values are computed once per BSB array (the expensive step);
    urgency queries then depend only on the current allocation and the
    current hardware/software placement, both supplied per call so the
    state object itself stays immutable.
    """

    def __init__(self, bsbs, library=None, cache=None):
        self.bsbs = list(bsbs)
        self.library = library
        self._furo = {bsb.uid: furo(bsb, library=library, cache=cache)
                      for bsb in self.bsbs}

    def furo_value(self, bsb, optype):
        """Static FURO(o, B); zero if the BSB lacks the type."""
        return self._furo[bsb.uid].get(optype, 0.0)

    def op_types(self, bsb):
        """Operation types with a FURO entry for ``bsb``."""
        return sorted(self._furo[bsb.uid], key=lambda ot: ot.value)

    def urgency(self, bsb, optype, in_hardware, allocation):
        """U(o, B) per Definition 3."""
        value = self.furo_value(bsb, optype)
        if not in_hardware:
            return value
        if self.library is None:
            raise ValueError("urgency of a hardware BSB requires a library "
                             "to resolve Alloc(o)")
        units = allocated_units_for(optype, allocation, self.library)
        return value / (units + 1)

    def max_urgency(self, bsb, in_hardware, allocation):
        """(max U(o, B), argmax op type); (0.0, None) for an empty BSB."""
        best_value, best_type = 0.0, None
        for optype in self.op_types(bsb):
            value = self.urgency(bsb, optype, in_hardware, allocation)
            if value > best_value:
                best_value, best_type = value, optype
        return best_value, best_type
