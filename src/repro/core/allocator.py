"""The hardware resource allocation algorithm (Algorithm 1).

The algorithm produces an allocation by building a *pseudo partition*:
all BSBs start in software; the prioritised array is scanned and

* a software BSB is moved to hardware when the remaining area can pay
  its Estimated Controller Area plus the area of the required resources
  not yet allocated (``GetReqResources(B) \\ Allocation``);
* a hardware BSB asks for one more unit of its most urgent operation
  type (``MostUrgentResource``), granted if the unit fits the remaining
  area and does not violate the ASAP-parallelism restrictions.

After any change to the allocation, urgencies are recomputed, the array
is re-prioritised and the scan restarts from the front; otherwise the
scan advances.  The algorithm stops when a full pass makes no change or
the remaining area reaches zero, and returns the allocation.
"""

import time
from dataclasses import dataclass, field

from repro.core.eca import estimated_controller_area
from repro.core.furo import UrgencyState
from repro.core.priority import prioritize
from repro.core.restrictions import asap_restrictions
from repro.core.rmap import RMap
from repro.engine.cache import EvalCache
from repro.errors import AllocationError


@dataclass
class AllocationEvent:
    """One allocation-changing step, for traces and the examples."""

    kind: str                 # "move" or "extra-unit"
    bsb_name: str
    resources: dict           # resource name -> count added
    cost: float
    remaining_area: float

    def __str__(self):
        added = ", ".join("%s x%d" % pair
                          for pair in sorted(self.resources.items()))
        return "%-10s %-14s +[%s] cost=%.1f remaining=%.1f" % (
            self.kind, self.bsb_name, added or "-",
            self.cost, self.remaining_area)


@dataclass
class AllocationResult:
    """Outcome of Algorithm 1.

    Attributes:
        allocation: The produced data-path allocation (an RMap).
        hw_bsb_names: Names of BSBs the *pseudo partition* moved to
            hardware.  This is a by-product guiding the allocation — the
            real partition is produced later by PACE.
        remaining_area: Hardware area left unspent.
        datapath_area: Area consumed by functional units.
        controller_area: Area consumed by (estimated) controllers.
        restrictions: The restriction RMap that was in force.
        runtime_seconds: Wall-clock time of the allocation run.
        events: Chronological trace of allocation changes.
    """

    allocation: RMap
    hw_bsb_names: list
    remaining_area: float
    datapath_area: float
    controller_area: float
    restrictions: RMap
    runtime_seconds: float
    events: list = field(default_factory=list)

    def trace_lines(self):
        return [str(event) for event in self.events]


def required_resources(bsb, library):
    """Minimal RMap executing every operation of ``bsb`` (one per unit).

    "The algorithm will, when a BSB is moved to hardware, allocate a
    minimum of resources (maximum one of each) so that all operations in
    the BSB can be executed" (section 4.2).
    """
    required = RMap()
    for optype in bsb.op_types():
        if not library.supports(optype):
            raise AllocationError(
                "BSB %r contains %s but library %r has no resource for it"
                % (bsb.name, optype, library.name))
        required[library.resource_for(optype).name] = 1
    return required


def most_urgent_resource(bsb, state, allocation, library):
    """The resource for the BSB's most urgent operation type, or None."""
    _, optype = state.max_urgency(bsb, True, allocation)
    if optype is None:
        return None
    return library.resource_for(optype)


def urgency_state(bsbs, library, cache=None):
    """The (immutable) :class:`UrgencyState` of a BSB array, memoised.

    The FURO preprocessing is the allocator's expensive one-time step;
    an :class:`~repro.engine.cache.EvalCache` reuses it across the many
    Algorithm 1 runs a design-space sweep performs.
    """
    if not isinstance(cache, EvalCache):
        return UrgencyState(bsbs, library=library, cache=cache)
    key = (tuple(bsb.uid for bsb in bsbs), cache.pin(library))
    state = cache.urgency.get(key)
    if state is None:
        cache.stats.miss("urgency")
        state = UrgencyState(bsbs, library=library, cache=cache)
        cache.urgency[key] = state
    else:
        cache.stats.hit("urgency")
    return state


def cached_restrictions(bsbs, library, cache=None):
    """Memoised :func:`asap_restrictions` of a BSB array."""
    if not isinstance(cache, EvalCache):
        return asap_restrictions(bsbs, library)
    key = (tuple(bsb.uid for bsb in bsbs), cache.pin(library))
    restrictions = cache.restrictions.get(key)
    if restrictions is None:
        cache.stats.miss("restrictions")
        restrictions = asap_restrictions(bsbs, library)
        cache.restrictions[key] = restrictions
    else:
        cache.stats.hit("restrictions")
    return restrictions


def _estimated_eca(bsb, library, technology, cache=None):
    """Memoised optimistic controller-area estimate of one BSB."""
    if not isinstance(cache, EvalCache):
        return estimated_controller_area(bsb.dfg, library=library,
                                         technology=technology)
    key = (bsb.uid, cache.pin(library), cache.pin(technology))
    if key not in cache.eca:
        cache.eca[key] = estimated_controller_area(
            bsb.dfg, library=library, technology=technology)
    return cache.eca[key]


def allocate(bsbs, library, area, restrictions=None, technology=None,
             keep_trace=False, cache=None):
    """Run Algorithm 1 and return an :class:`AllocationResult`.

    Args:
        bsbs: The application's leaf-BSB array.
        library: The hardware resource library.
        area: Total hardware area available (data-path + controllers).
        restrictions: Optional RMap of per-resource caps; defaults to
            the ASAP-parallelism restrictions of section 4.3.
        technology: Gate areas for the ECA; defaults to the library's.
        keep_trace: Record an :class:`AllocationEvent` per change.
        cache: Optional :class:`~repro.engine.cache.EvalCache` reusing
            FURO urgencies, ECA estimates and restrictions across runs.
    """
    bsbs = list(bsbs)
    if area < 0:
        raise AllocationError("hardware area must be >= 0, got %r" % (area,))
    if technology is None:
        technology = library.technology
    if restrictions is None:
        restrictions = cached_restrictions(bsbs, library, cache=cache)
    else:
        restrictions = RMap._coerce(restrictions)

    started = time.perf_counter()
    state = urgency_state(bsbs, library, cache=cache)
    eca_of = {bsb.uid: _estimated_eca(bsb, library, technology, cache=cache)
              for bsb in bsbs}

    allocation = RMap()
    remaining = float(area)
    hw_uids = set()
    hw_names = []
    datapath_area = 0.0
    controller_area = 0.0
    events = []

    order = prioritize(bsbs, state, hw_uids, allocation)
    index = 0
    while index < len(order) and remaining > 0:
        changed = False
        bsb = order[index]
        if bsb.uid in hw_uids:
            resource = most_urgent_resource(bsb, state, allocation, library)
            if (resource is not None
                    and resource.area <= remaining
                    and allocation[resource.name] + 1
                    <= restrictions[resource.name]):
                allocation = allocation.incremented(resource.name)
                remaining -= resource.area
                datapath_area += resource.area
                changed = True
                if keep_trace:
                    events.append(AllocationEvent(
                        "extra-unit", bsb.name, {resource.name: 1},
                        resource.area, remaining))
        else:
            needed = required_resources(bsb, library) - allocation
            cost = eca_of[bsb.uid] + needed.area(library)
            if cost <= remaining:
                allocation = allocation | needed
                remaining -= cost
                datapath_area += needed.area(library)
                controller_area += eca_of[bsb.uid]
                hw_uids.add(bsb.uid)
                hw_names.append(bsb.name)
                # Algorithm 1: the move only counts as an allocation
                # change when it added resources; a controller-only move
                # does not trigger re-prioritisation.
                changed = not needed.is_empty()
                if keep_trace:
                    events.append(AllocationEvent(
                        "move", bsb.name, needed.as_dict(), cost, remaining))
        if changed:
            order = prioritize(bsbs, state, hw_uids, allocation)
            index = 0
        else:
            index += 1

    return AllocationResult(
        allocation=allocation,
        hw_bsb_names=hw_names,
        remaining_area=remaining,
        datapath_area=datapath_area,
        controller_area=controller_area,
        restrictions=restrictions,
        runtime_seconds=time.perf_counter() - started,
        events=events,
    )
