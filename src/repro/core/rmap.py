"""The RMap (Resource Map) algebra of Definition 1.

An RMap maps resources to non-negative integer counts.  Two operators
are defined (Example 1 of the paper):

* union ``A | B`` adds counts pointwise:
  ``{Adder:2, Mult:1} | {Sub:1, Mult:2} == {Adder:2, Mult:3, Sub:1}``;
* difference ``A - B`` subtracts pointwise, saturating at zero and
  dropping empty entries:
  ``{Adder:2, Mult:1} - {Sub:1, Mult:2} == {Adder:2}``.

Resources are identified by their library name (a string), which keeps
RMaps hashable-friendly, serialisable and independent of resource-object
identity.
"""

from repro.errors import AllocationError


class RMap:
    """A mapping from resource names to positive instance counts.

    The map never stores zero or negative counts: assigning zero removes
    the entry, mirroring the paper's set-like treatment of allocations.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts=None):
        self._counts = {}
        if counts:
            for name, count in dict(counts).items():
                self[name] = count

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name):
        """Count for ``name``; zero when absent (total map into integers)."""
        return self._counts.get(name, 0)

    def get(self, name, default=0):
        return self._counts.get(name, default)

    def __setitem__(self, name, count):
        if not isinstance(name, str):
            raise AllocationError("RMap keys are resource names (str), "
                                  "got %r" % (name,))
        if not isinstance(count, int):
            raise AllocationError("RMap counts are integers, got %r"
                                  % (count,))
        if count < 0:
            raise AllocationError("RMap counts must be >= 0, got %s -> %d"
                                  % (name, count))
        if count == 0:
            self._counts.pop(name, None)
        else:
            self._counts[name] = count

    def __contains__(self, name):
        return name in self._counts

    def __iter__(self):
        return iter(sorted(self._counts))

    def __len__(self):
        return len(self._counts)

    def items(self):
        """(name, count) pairs in deterministic (name) order."""
        return [(name, self._counts[name]) for name in sorted(self._counts)]

    def names(self):
        """Resource names with a positive count."""
        return sorted(self._counts)

    def total_units(self):
        """Total number of allocated instances across all resources."""
        return sum(self._counts.values())

    # ------------------------------------------------------------------
    # Definition 1 operators
    # ------------------------------------------------------------------
    def union(self, other):
        """Pointwise sum (the paper's ∪, see Example 1)."""
        result = RMap(self._counts)
        for name, count in RMap._coerce(other).items():
            result[name] = result[name] + count
        return result

    def difference(self, other):
        """Pointwise saturating subtraction (the paper's \\)."""
        result = RMap(self._counts)
        for name, count in RMap._coerce(other).items():
            result[name] = max(0, result[name] - count)
        return result

    def __or__(self, other):
        return self.union(other)

    def __sub__(self, other):
        return self.difference(other)

    def incremented(self, name, delta=1):
        """A copy with ``name``'s count changed by ``delta``."""
        result = RMap(self._counts)
        result[name] = result[name] + delta
        return result

    # ------------------------------------------------------------------
    # Comparisons and helpers
    # ------------------------------------------------------------------
    def covers(self, other):
        """True if every count in ``other`` is <= the count here."""
        return all(self[name] >= count
                   for name, count in RMap._coerce(other).items())

    def is_empty(self):
        return not self._counts

    def area(self, library):
        """Total data-path area of this allocation under ``library``."""
        return sum(library.area_of(name) * count
                   for name, count in self._counts.items())

    def area_from(self, unit_areas):
        """Total area using a precomputed {name: unit area} mapping.

        Sums in the same (insertion) order as :meth:`area`, so callers
        iterating a search space get bit-identical totals without the
        per-name library dispatch.
        """
        return sum(unit_areas[name] * count
                   for name, count in self._counts.items())

    @classmethod
    def _unchecked(cls, counts):
        """Wrap a trusted {name: positive int} dict without validation.

        Internal fast path for enumerators that construct millions of
        maps from already-validated names and counts; the dict is
        adopted, not copied.
        """
        rmap = cls.__new__(cls)
        rmap._counts = counts
        return rmap

    def copy(self):
        return RMap(self._counts)

    def as_dict(self):
        """Plain-dict snapshot (name -> count)."""
        return dict(self._counts)

    @staticmethod
    def _coerce(value):
        if isinstance(value, RMap):
            return value
        return RMap(value)

    # ------------------------------------------------------------------
    # Equality / representation
    # ------------------------------------------------------------------
    def __eq__(self, other):
        if isinstance(other, RMap):
            return self._counts == other._counts
        if isinstance(other, dict):
            return self._counts == {k: v for k, v in other.items() if v}
        return NotImplemented

    def __hash__(self):
        return hash(frozenset(self._counts.items()))

    def __repr__(self):
        body = ", ".join("%s: %d" % pair for pair in self.items())
        return "RMap({%s})" % body
