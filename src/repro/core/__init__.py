"""The paper's primary contribution: the hardware allocation algorithm.

This package implements sections 4–4.4 of the paper:

* :mod:`repro.core.rmap` — the RMap resource-map algebra (Definition 1);
* :mod:`repro.core.furo` — the Functional Unit Request Overlap metric and
  the dynamic urgency values U(o, B) (Definitions 2 and 3);
* :mod:`repro.core.priority` — BSB prioritisation (Definition 4);
* :mod:`repro.core.eca` — the Estimated Controller Area (section 4.2);
* :mod:`repro.core.restrictions` — ASAP-parallelism caps (section 4.3);
* :mod:`repro.core.allocator` — Algorithm 1 itself;
* :mod:`repro.core.exhaustive` — the exhaustive allocation search used as
  the evaluation baseline (section 5);
* :mod:`repro.core.iteration` — the single-design-iteration refinement
  the paper applies to ``man`` and ``eigen`` (sections 5 and 5.1).
"""

from repro.core.rmap import RMap
from repro.core.eca import estimated_controller_area, estimated_states
from repro.core.furo import furo, allocated_units_for, UrgencyState
from repro.core.priority import prioritize, bsb_priority_key
from repro.core.restrictions import asap_restrictions
from repro.core.allocator import allocate, AllocationResult
from repro.core.exhaustive import (
    enumerate_allocations,
    exhaustive_best_allocation,
    ExhaustiveResult,
)
from repro.core.iteration import design_iteration, IterationResult

__all__ = [
    "RMap",
    "estimated_controller_area",
    "estimated_states",
    "furo",
    "allocated_units_for",
    "UrgencyState",
    "prioritize",
    "bsb_priority_key",
    "asap_restrictions",
    "allocate",
    "AllocationResult",
    "enumerate_allocations",
    "exhaustive_best_allocation",
    "ExhaustiveResult",
    "design_iteration",
    "IterationResult",
]
