"""Exhaustive allocation search (the paper's evaluation baseline).

Section 5: "the PACE algorithm is used to generate a partition of the
application for all possible allocations.  Through this exhaustive
search, the allocation that gives the best partitioning result in terms
of speed-up is marked as the best allocation."

The search space is the cross product of per-resource counts from zero
up to the ASAP-parallelism restriction caps.  The paper's footnote notes
the eigen benchmark has about a million allocations and could not be
exhausted; :func:`exhaustive_best_allocation` therefore accepts a
``max_evaluations`` budget and switches to seeded random sampling for
such spaces.  With ``workers`` > 1 the candidate stream fans out over
worker processes in contiguous chunks; each worker scans its chunk
exactly the way the serial loop would, and the parent reduces the
chunk winners with the same deterministic :func:`_better` tournament —
so the parallel result is bit-identical to the serial one.

``search="pruned"`` walks the same space as a mixed-radix prefix tree
instead of a flat product stream: each partial allocation carries an
admissible area lower bound and speed-up upper bound (see
:mod:`repro.core.bounds`), so subtrees provably unable to beat the
incumbent are skipped wholesale, and the surviving leaves are
evaluated through the neighbour-aware
:class:`~repro.partition.evaluate.EvaluationScan` delta path.  The
winner is bit-identical to the brute scan's — pruning only ever
discards candidates the `_better` tournament would have discarded —
while the number of candidate evaluations can drop by orders of
magnitude on spaces with a dominant incumbent.
"""

import itertools
import multiprocessing
import random
from dataclasses import dataclass, field

from repro.core.allocator import required_resources
from repro.core.bounds import BoundEngine
from repro.core.objective import as_objective
from repro.core.restrictions import asap_restrictions
from repro.core.rmap import RMap
from repro.errors import AllocationError, ReproError
from repro.partition.evaluate import EvaluationScan, evaluate_allocation

#: Valid ``search=`` modes of :func:`exhaustive_best_allocation`.
SEARCH_MODES = ("brute", "pruned")


def allocation_space(bsbs, library, restrictions=None):
    """(resource names, per-resource count ranges) of the search space.

    Only resources some BSB actually needs are enumerated; counts range
    from 0 to the restriction cap of each resource — a resource capped
    at 0 contributes only the count 0, so the search never visits
    allocations that violate the ASAP restriction caps.
    """
    if restrictions is None:
        restrictions = asap_restrictions(bsbs, library)
    needed = RMap()
    for bsb in bsbs:
        needed = needed | required_resources(bsb, library)
    names = needed.names()
    ranges = [range(0, restrictions[name] + 1) for name in names]
    return names, ranges


def space_size(bsbs, library, restrictions=None):
    """Number of allocations the exhaustive search would visit."""
    _, ranges = allocation_space(bsbs, library, restrictions=restrictions)
    size = 1
    for counts in ranges:
        size *= len(counts)
    return size


def enumerate_allocations(bsbs, library, restrictions=None, stride=1):
    """Yield every allocation in the search space (RMap instances).

    ``stride`` > 1 yields every stride-th allocation in lexicographic
    order (kept for deterministic partial scans; for *searching* large
    spaces prefer :func:`sample_allocations`, which is unbiased).
    """
    if stride < 1:
        raise AllocationError("stride must be >= 1, got %r" % (stride,))
    names, ranges = allocation_space(bsbs, library,
                                     restrictions=restrictions)
    for index, counts in enumerate(itertools.product(*ranges)):
        if index % stride:
            continue
        yield RMap._unchecked({name: count
                               for name, count in zip(names, counts)
                               if count})


def _random_allocation_stream(names, ranges, seed):
    """The unbounded seeded draw stream both sampling paths consume.

    One definition keeps :func:`sample_allocations` and
    :func:`_draw_feasible_samples` on the *same* sequence of draws —
    their documented correspondence is load-bearing for reproducible
    sampled results, so neither re-implements the expression.
    """
    generator = random.Random(seed)
    while True:
        yield RMap._unchecked({name: value for name, value in
                               ((name, generator.randrange(len(counts)))
                                for name, counts in zip(names, ranges))
                               if value})


def sample_allocations(bsbs, library, count, restrictions=None, seed=1998):
    """Yield ``count`` pseudo-random allocations from the space.

    Sampling is uniform and reproducible (fixed seed); duplicates are
    possible for tiny spaces but the caller only cares about the best
    evaluation found.  Used when the space is too large to exhaust —
    the situation the paper's eigen footnote describes.  (The budgeted
    search itself draws through :func:`_draw_feasible_samples`, which
    adds dedup and area-feasibility filtering on top of this same
    stream.)
    """
    names, ranges = allocation_space(bsbs, library,
                                     restrictions=restrictions)
    yield from itertools.islice(
        _random_allocation_stream(names, ranges, seed), count)


def _enumerate_slice(names, ranges, start, stop):
    """Allocations ``start <= index < stop`` of the lexicographic space.

    Identical to ``islice(enumerate_allocations(...), start, stop)``
    but O(1) to position: the start index is decoded into per-resource
    counts (mixed radix, last resource fastest — the
    ``itertools.product`` convention) and an odometer increments from
    there, so a worker chunk deep in a ~10^6-allocation space does not
    build and discard a prefix of RMaps just to reach its slice.
    """
    caps = [len(counts) - 1 for counts in ranges]
    digits = []
    remainder = start
    for cap in reversed(caps):
        remainder, digit = divmod(remainder, cap + 1)
        digits.append(digit)
    digits.reverse()
    for _ in range(stop - start):
        yield RMap._unchecked({name: digit for name, digit
                               in zip(names, digits) if digit})
        for axis in range(len(digits) - 1, -1, -1):
            if digits[axis] < caps[axis]:
                digits[axis] += 1
                break
            digits[axis] = 0


#: Draw-attempt budget multiplier for the sampled search: with heavy
#: area infeasibility or a small distinct-feasible population the draw
#: loop must terminate even though the evaluation budget cannot be met.
_SAMPLE_ATTEMPT_FACTOR = 50


def _draw_feasible_samples(names, ranges, budget, unit_areas, total_area,
                           space, seed=1998):
    """``budget`` distinct, area-feasible random allocations.

    Infeasible draws are *replaced* (drawing continues until the budget
    is met), duplicates are redrawn without being counted, and the loop
    gives up once every distinct allocation has been seen or an attempt
    cap is hit — whichever comes first.  Returns ``(candidates,
    skipped_infeasible)`` where the second element counts the distinct
    infeasible allocations that were discarded along the way.
    """
    stream = _random_allocation_stream(names, ranges, seed)
    seen = set()
    candidates = []
    skipped_infeasible = 0
    attempts = 0
    limit = max(budget * _SAMPLE_ATTEMPT_FACTOR, budget + 1000)
    while len(candidates) < budget and attempts < limit \
            and len(seen) < space:
        attempts += 1
        allocation = next(stream)
        if allocation in seen:
            continue
        seen.add(allocation)
        if allocation.area_from(unit_areas) > total_area:
            skipped_infeasible += 1
            continue
        candidates.append(allocation)
    return candidates, skipped_infeasible


@dataclass
class ExhaustiveResult:
    """Outcome of the exhaustive (or sampled) allocation search.

    Attributes:
        best_allocation: Allocation with the highest PACE speed-up.
        best_evaluation: Its full :class:`AllocationEvaluation`.
        evaluations: Number of allocations actually evaluated.
        space: Total size of the allocation space.
        sampled: True when the space exceeded the evaluation budget and
            seeded pseudo-random sampling (not full enumeration, and
            not stride sampling) supplied the candidates.
        skipped_infeasible: Distinct candidates discarded without
            evaluation because their data-path area alone exceeded the
            ASIC area.  On the sampled path these were redrawn, so
            ``evaluations`` still meets the budget whenever enough
            feasible allocations exist.
        history: Optional list of (allocation, speedup) pairs for the
            candidates actually evaluated, in ``history_order`` order.
        search: The search that actually ran: ``"brute"``,
            ``"pruned"``, or ``"sampled"`` when the evaluation budget
            forced sampling regardless of the requested mode.
        history_order: ``"scan"`` when the history follows the
            lexicographic scan order of the enumerated space (brute and
            pruned searches — a pruned history is the scan-order
            subsequence that survived the bounds); ``"sampled"`` when
            it follows the seeded draw order of the sampled search,
            which is *not* lexicographic.
        subtrees_pruned: Prefix-tree subtrees the branch-and-bound
            speed-up bound discarded (0 for other searches).
        bound_evaluations: Bound computations spent finding them (the
            warm-start evaluation seeding the prune threshold, when one
            ran, is accounted here rather than in ``evaluations``).
        pruned_leaves: Candidate allocations inside those subtrees;
            ``evaluations + skipped_infeasible + pruned_leaves ==
            space`` holds for every enumerated search.
        objective: Name of the objective the tournament ranked
            candidates under (``"speedup"`` unless overridden).
        front: The :class:`~repro.core.objective.ParetoFront` collected
            over every evaluated candidate when the objective was
            ``"pareto"``; ``None`` otherwise.
    """

    best_allocation: RMap
    best_evaluation: object
    evaluations: int
    space: int
    sampled: bool
    skipped_infeasible: int = 0
    history: list = field(default_factory=list)
    search: str = "brute"
    history_order: str = "scan"
    subtrees_pruned: int = 0
    bound_evaluations: int = 0
    pruned_leaves: int = 0
    objective: str = "speedup"
    front: object = None


def _scan_candidates(candidates, bsbs, architecture, area_quanta,
                     keep_history, session, unit_areas, check_area,
                     objective):
    """The inner evaluation loop, shared by the serial path and every
    parallel worker so both scan a candidate stream identically.

    Candidates are ranked by ``objective`` (the default objective's
    tournament is bit-identical to the historical :func:`_better`);
    a Pareto-style objective additionally accumulates its dominance
    front over every evaluated candidate.  Returns (best allocation,
    best evaluation, evaluations, skipped_infeasible, history, front).
    """
    library = architecture.library
    # remember="partitions": each candidate is visited exactly once, so
    # storing one whole evaluation per candidate would grow the session
    # cache linearly for ~zero in-process hits; schedules, cost arrays
    # and sequence tables still collapse across candidates.  PACE DP
    # results *are* remembered when a persistent store backs the
    # session — a warm restart replays them from disk — and dropped
    # otherwise.
    remember = "partitions" if (session.store is not None) else False
    front = objective.new_front() if hasattr(objective, "new_front") \
        else None
    best_eval = None
    best_allocation = None
    evaluations = 0
    skipped_infeasible = 0
    history = []
    for allocation in candidates:
        if check_area and \
                allocation.area_from(unit_areas) > architecture.total_area:
            skipped_infeasible += 1
            continue
        evaluation = evaluate_allocation(bsbs, allocation, architecture,
                                         area_quanta=area_quanta,
                                         cache=session.cache,
                                         remember=remember)
        evaluations += 1
        if keep_history:
            history.append((allocation, evaluation.speedup))
        if front is not None:
            front.add(objective.vector(evaluation, library), evaluation)
        if best_eval is None or objective.better(evaluation, best_eval,
                                                 library):
            best_eval = evaluation
            best_allocation = allocation
    return (best_allocation, best_eval, evaluations, skipped_infeasible,
            history, front)


def _empty_prune_stats():
    """Zeroed pruning counters (shape shared by every search mode)."""
    return {"subtrees_pruned": 0, "bound_evaluations": 0,
            "pruned_leaves": 0}


def _warm_threshold(bsbs, architecture, restrictions, area_quanta,
                    session, names, ranges, unit_areas, remember):
    """Speed-up of Algorithm 1's allocation, as a strict prune threshold.

    The greedy allocator lands on (or near) the best allocation long
    before the lexicographic scan does, so its evaluated speed-up makes
    a strong bound from the very first node.  Soundness: the threshold
    only ever prunes subtrees whose bound is *strictly* below it, and
    it is the speed-up of a member of the search space — so no
    candidate tying the eventual winner can be discarded and the
    scan-order tie-breaking (hence the winner) stays bit-identical to
    the brute scan.  Returns ``None`` when the allocator fails or its
    allocation falls outside the space (custom restrictions can do
    that), where that guarantee would not hold.
    """
    try:
        allocation = session.allocate(
            bsbs, architecture.total_area,
            restrictions=restrictions).allocation
    except ReproError:
        return None
    caps = {name: len(counts) - 1
            for name, counts in zip(names, ranges)}
    for name, count in allocation.items():
        if count > caps.get(name, 0):
            return None
    if allocation.area_from(unit_areas) > architecture.total_area:
        return None
    evaluation = evaluate_allocation(bsbs, allocation, architecture,
                                     area_quanta=area_quanta,
                                     cache=session.cache,
                                     remember=remember)
    return evaluation.speedup


def _scan_pruned(bsbs, architecture, restrictions, area_quanta,
                 keep_history, session, names, ranges, unit_areas,
                 total, workers, objective):
    """Drive the branch-and-bound search: prime, then split or recurse.

    Candidate 0 — the empty allocation, always area-feasible, hence a
    member of the space under any objective — is evaluated up front and
    seeds every range scan's incumbent, and (under the default
    objective) the greedy allocator's speed-up seeds a strict prune
    threshold, so even parallel chunks prune against shared bounds from
    their first node instead of each rediscovering them.  A parallel
    run additionally shares the best-known primary value through a
    ``multiprocessing.Value``, so a chunk that finds a strong incumbent
    tightens every other chunk's threshold mid-flight; the sharing is
    read-only tightening below *achieved* values, so the winner stays
    bit-identical to the serial walk's (only the prune counters become
    timing-dependent).  Returns the common scan 7-tuple (best
    allocation, best evaluation, evaluations, skipped_infeasible,
    history, front, prune stats).
    """
    remember = "partitions" if (session.store is not None) else False
    library = architecture.library
    alloc0 = RMap()
    eval0 = evaluate_allocation(bsbs, alloc0, architecture,
                                area_quanta=area_quanta,
                                cache=session.cache, remember=remember)
    # The warm allocator threshold is a *speed-up* achieved inside the
    # space; under any other objective it bounds nothing.
    warm_su = None
    if objective.name == "speedup":
        warm_su = _warm_threshold(bsbs, architecture, restrictions,
                                  area_quanta, session, names, ranges,
                                  unit_areas, remember)
    best_allocation, best_eval = alloc0, eval0
    evaluations = 1
    skipped_infeasible = 0
    history = [(alloc0, eval0.speedup)] if keep_history else []
    prune = _empty_prune_stats()
    if warm_su is not None:
        # The warm-start evaluation exists only to seed the threshold:
        # account it as bound work, not as a scanned candidate.
        prune["bound_evaluations"] += 1
    primed = (alloc0, eval0, warm_su)
    if total > 1:
        if workers > 1 and total > 2:
            initial = objective.primary(eval0, library)
            if warm_su is not None and warm_su > initial:
                initial = warm_su
            shared = multiprocessing.Value("d", initial)
            outcome = _parallel_scan(
                bsbs, architecture, restrictions, area_quanta,
                keep_history, session, unit_areas, False, None,
                total - 1, min(workers, total - 1), search="pruned",
                primed=primed, offset=1, objective=objective,
                shared=shared)
        else:
            outcome = _scan_pruned_range(
                bsbs, architecture, area_quanta, keep_history, session,
                names, ranges, unit_areas, 1, total, primed, objective)
        (range_allocation, range_eval, range_evaluations, range_skipped,
         range_history, _, range_prune) = outcome
        evaluations += range_evaluations
        skipped_infeasible += range_skipped
        history.extend(range_history)
        for stage, count in range_prune.items():
            prune[stage] += count
        if range_eval is not None:
            best_allocation, best_eval = range_allocation, range_eval
    return (best_allocation, best_eval, evaluations, skipped_infeasible,
            history, None, prune)


def _scan_pruned_range(bsbs, architecture, area_quanta, keep_history,
                       session, names, ranges, unit_areas, start, stop,
                       incumbent, objective, shared=None):
    """Branch-and-bound over lexicographic indices ``[start, stop)``.

    The index range is walked as a mixed-radix prefix tree (first
    resource outermost, matching ``itertools.product``).  A node whose
    decided digits already exceed the ASIC area accounts its whole
    subtree as ``skipped_infeasible`` — and, since a digit only ever
    adds area, so do all of its later siblings at once.  A feasible
    node whose admissible bound on the objective's primary axis cannot
    beat the incumbent under the objective's tournament accounts its
    subtree as pruned: the default objective keeps the historical
    speed-up bound with its exact-tie area rule, area prunes on the
    negated prefix area (a digit only adds area), and energy prunes on
    the negated :meth:`~repro.core.bounds.BoundEngine.energy_floor`.
    Surviving leaves are evaluated in scan order through the
    :class:`EvaluationScan` delta path, so evaluated neighbours reuse
    each other's unchanged cost groups.

    ``incumbent`` is the primed (allocation, evaluation, warm
    threshold) triple; the returned winner is ``(None, None, ...)``
    unless some leaf in the range strictly improved on the primed
    evaluation, which keeps the parallel reduction identical to the
    serial tournament.  ``shared``, when given, is a
    ``multiprocessing.Value`` holding the best primary value any
    parallel chunk has *achieved*; it is read as an extra strict-only
    prune threshold and advanced monotonically on every improvement,
    which cannot change the winner (a candidate tying the global
    optimum always bounds at or above any achieved value) but lets
    sibling chunks prune harder.
    """
    library = architecture.library
    remember = "partitions" if (session.store is not None) else False
    scan = EvaluationScan(bsbs, architecture, area_quanta=area_quanta,
                          cache=session.cache, remember=remember)
    caps = [len(counts) - 1 for counts in ranges]
    engine = BoundEngine(bsbs, architecture, names, caps, session.cache)
    axes = len(caps)
    # suffix[depth] = number of leaves below one node at that depth.
    suffix = [1] * (axes + 1)
    for axis in range(axes - 1, -1, -1):
        suffix[axis] = suffix[axis + 1] * (caps[axis] + 1)
    unit = [unit_areas[name] for name in names]
    total_area = architecture.total_area

    speedup_mode = objective.name == "speedup"
    energy_mode = objective.name == "energy"
    inc_allocation, inc_eval, warm_su = incumbent
    inc_su = inc_eval.speedup
    inc_area = inc_allocation.area(library)
    inc_primary = objective.primary(inc_eval, library)
    state = {"improved": False, "evaluations": 0,
             "skipped_infeasible": 0, "subtrees_pruned": 0,
             "bound_evaluations": 0, "pruned_leaves": 0}
    history = []
    digits = [0] * axes
    effective = list(caps)

    def descend(depth, node_lo, prefix_area):
        nonlocal inc_allocation, inc_eval, inc_su, inc_area, inc_primary
        if depth == axes:
            allocation = RMap._unchecked(
                {name: digit for name, digit in zip(names, digits)
                 if digit})
            evaluation = scan.evaluate(allocation)
            state["evaluations"] += 1
            if keep_history:
                history.append((allocation, evaluation.speedup))
            if objective.better(evaluation, inc_eval, library):
                inc_allocation, inc_eval = allocation, evaluation
                inc_su = evaluation.speedup
                inc_area = allocation.area(library)
                inc_primary = objective.primary(evaluation, library)
                state["improved"] = True
                if shared is not None:
                    with shared.get_lock():
                        if inc_primary > shared.value:
                            shared.value = inc_primary
            return
        span = suffix[depth + 1]
        for digit in range(caps[depth] + 1):
            child_lo = node_lo + digit * span
            if child_lo >= stop:
                break
            overlap = min(child_lo + span, stop) - max(child_lo, start)
            if overlap <= 0:
                continue
            area = prefix_area + digit * unit[depth]
            if area > total_area:
                # A digit only adds area, so every later sibling's
                # subtree is infeasible too: account them all and stop.
                state["skipped_infeasible"] += \
                    min(node_lo + suffix[depth], stop) \
                    - max(child_lo, start)
                break
            digits[depth] = digit
            effective[depth] = digit
            state["bound_evaluations"] += 1
            if speedup_mode:
                bound = engine.speedup_bound(effective, area)
                prunable = (warm_su is not None and bound < warm_su) \
                    or bound < inc_su \
                    or (bound == inc_su and area >= inc_area) \
                    or (shared is not None and bound < shared.value)
                # No completion can win the `_better` tournament: the
                # speed-up bound is admissible, the warm threshold (and
                # the shared best-known value) is achieved inside the
                # space and only prunes *strictly* worse subtrees, and
                # on an exact incumbent tie the area can only grow from
                # the prefix's.
            else:
                # Generic admissible upper bound on the primary axis:
                # higher-is-better, so area negates the prefix floor
                # and energy negates the completion energy floor.  The
                # comparisons are strict, so an exact tie with the
                # incumbent (or with a shared achieved value) is never
                # pruned and the scan-order tie-break survives.
                if energy_mode:
                    bound = -engine.energy_floor(effective)
                else:
                    bound = -area
                prunable = bound < inc_primary \
                    or (shared is not None and bound < shared.value)
            if prunable:
                state["subtrees_pruned"] += 1
                state["pruned_leaves"] += overlap
            else:
                descend(depth + 1, child_lo, area)
        digits[depth] = 0
        effective[depth] = caps[depth]

    descend(0, 0, 0)
    prune = {"subtrees_pruned": state["subtrees_pruned"],
             "bound_evaluations": state["bound_evaluations"],
             "pruned_leaves": state["pruned_leaves"]}
    if not state["improved"]:
        inc_allocation, inc_eval = None, None
    return (inc_allocation, inc_eval, state["evaluations"],
            state["skipped_infeasible"], history, None, prune)


def exhaustive_best_allocation(bsbs, architecture, restrictions=None,
                               max_evaluations=None, area_quanta=200,
                               keep_history=False, session=None,
                               workers=1, search="brute",
                               objective="speedup"):
    """Search the allocation space for the objective's best allocation.

    ``objective`` names the tournament ranking candidates (an
    :class:`~repro.core.objective.Objective` instance is accepted
    too).  The default ``"speedup"`` objective reproduces the paper's
    contract — highest speed-up, ties to the smaller data-path — bit
    for bit; ``"area"`` and ``"energy"`` minimise their axis with
    speed-up as tie-break; ``"pareto"`` keeps the default tournament
    for the single reported winner while additionally collecting the
    (speed-up, area, energy) dominance front over every evaluated
    candidate into the result's ``front``.  An objective without an
    admissible bound (``pareto`` needs every non-dominated point, so
    nothing may be pruned) silently downgrades ``search="pruned"`` to
    the brute scan; the result's ``search`` field reports what ran.

    When the space exceeds ``max_evaluations``, distinct feasible
    allocations are drawn pseudo-randomly (seeded, reproducible) until
    the budget is met — the result is then marked ``sampled``, matching
    the paper's treatment of eigen, where the "best" allocation came
    from numerous experiments rather than full enumeration.

    ``search`` selects how an *enumerated* space is walked.  ``"brute"``
    scans every candidate; ``"pruned"`` runs the branch-and-bound walk
    (admissible bounds over the allocation prefix tree plus delta
    evaluation of neighbouring survivors) whose winner — speed-up,
    allocation and tie-breaks included — is bit-identical to the brute
    scan's, typically after far fewer candidate evaluations.  The mode
    is ignored when the budget forces sampling; the result's ``search``
    field records what actually ran.

    Every candidate is evaluated through an engine
    :class:`~repro.engine.session.Session` (a private one when none is
    passed), whose cache collapses the thousands of candidate
    allocations onto the few distinct schedules, cost arrays and PACE
    sequence tables they actually induce.  A shared session lets the
    search reuse work done by earlier evaluations of the same BSBs —
    and vice versa; a session opened with ``cache_dir`` additionally
    persists that work across process restarts.

    ``workers`` > 1 splits the candidate stream into contiguous chunks
    scanned by worker processes (each holding a session of its own,
    sharing the parent's persistent store when there is one).  The
    chunk winners are reduced with the deterministic :func:`_better`
    tournament in chunk order and the per-worker cache accounting is
    merged into the parent session's stats, so the parallel search is
    bit-identical to — just faster than — the serial one.
    """
    if session is None:
        from repro.engine.session import Session

        session = Session(library=architecture.library)
    if workers < 1:
        raise AllocationError("workers must be >= 1, got %r" % (workers,))
    if search not in SEARCH_MODES:
        raise AllocationError("search must be one of %r, got %r"
                              % (SEARCH_MODES, search))
    objective = as_objective(objective)
    if search == "pruned" and not objective.bounded:
        search = "brute"
    library = architecture.library
    # Register the BSBs with the session's persistent store (and
    # hydrate their entries) no matter how the search was entered —
    # with explicit restrictions the session.restrictions() path below
    # is skipped, and without this the store would sit inert.
    session._adopt(bsbs, library=library)
    if restrictions is None:
        restrictions = session.restrictions(bsbs, library=library)
    names, ranges = allocation_space(bsbs, library,
                                     restrictions=restrictions)
    total = 1
    for counts in ranges:
        total *= len(counts)
    unit_areas = {name: library.area_of(name) for name in names}
    sampled = (max_evaluations is not None and total > max_evaluations)

    skipped_infeasible = 0
    if sampled:
        candidates, skipped_infeasible = _draw_feasible_samples(
            names, ranges, max_evaluations, unit_areas,
            architecture.total_area, total)
        workload = len(candidates)
    elif search == "pruned":
        candidates = None  # the prefix-tree walk enumerates itself
        workload = total
    else:
        candidates = enumerate_allocations(bsbs, library,
                                           restrictions=restrictions)
        workload = total

    if not sampled and search == "pruned":
        outcome = _scan_pruned(bsbs, architecture, restrictions,
                               area_quanta, keep_history, session,
                               names, ranges, unit_areas, total, workers,
                               objective)
    elif workers > 1 and workload > 1:
        outcome = _parallel_scan(
            bsbs, architecture, restrictions, area_quanta, keep_history,
            session, unit_areas, sampled, candidates, workload,
            min(workers, workload), objective=objective)
    else:
        outcome = _scan_candidates(candidates, bsbs, architecture,
                                   area_quanta, keep_history, session,
                                   unit_areas,
                                   check_area=not sampled,
                                   objective=objective) \
            + (_empty_prune_stats(),)
    (best_allocation, best_eval, evaluations, skipped_scanning,
     history, front, prune) = outcome
    skipped_infeasible += skipped_scanning
    # Persist what this search learned (worker deltas included) right
    # away — searches are long and a crash should not lose them.  For a
    # fully warm search the flush skips itself; callers batching many
    # searches on one session pay one shard rewrite per search that
    # actually computed something new.
    session.save_store()

    if best_eval is None:
        raise AllocationError("no feasible allocation fits the ASIC area")
    return ExhaustiveResult(
        best_allocation=best_allocation,
        best_evaluation=best_eval,
        evaluations=evaluations,
        space=total,
        sampled=sampled,
        skipped_infeasible=skipped_infeasible,
        history=history,
        search="sampled" if sampled else search,
        history_order="sampled" if sampled else "scan",
        subtrees_pruned=prune["subtrees_pruned"],
        bound_evaluations=prune["bound_evaluations"],
        pruned_leaves=prune["pruned_leaves"],
        objective=objective.name,
        front=front,
    )


def _better(candidate, incumbent, library):
    """Higher speed-up wins; ties go to the smaller data-path."""
    if candidate.speedup != incumbent.speedup:
        return candidate.speedup > incumbent.speedup
    return (candidate.allocation.area(library)
            < incumbent.allocation.area(library))


# ----------------------------------------------------------------------
# Worker-process plumbing for the parallel candidate scan
# ----------------------------------------------------------------------
#: Chunks handed out per worker: more than one so a lucky worker that
#: finishes early picks up another slice instead of idling, while the
#: chunks stay contiguous (the reduction depends on chunk order, not on
#: completion order, so load balancing never affects the result).
_CHUNKS_PER_WORKER = 4

_WORKER_SCAN_CONTEXT = None


def _parallel_scan(bsbs, architecture, restrictions, area_quanta,
                   keep_history, session, unit_areas, sampled,
                   candidates, workload, workers, search="brute",
                   primed=None, offset=0, objective=None, shared=None):
    """Fan the candidate stream out over a pool; reduce chunk winners.

    Chunks are contiguous slices of the exact stream the serial loop
    would scan — index ranges re-enumerated inside each worker for the
    enumerated searches (shipping ~10^6 RMaps would swamp the pipes),
    the pre-drawn candidate slices themselves for the sampled search.
    A pruned search chunks the index range ``[offset, offset +
    workload)`` and hands every worker the ``primed`` incumbent (plus
    the ``shared`` best-known primary value, tightened mid-flight), so
    the chunks prune independently against a common initial bound; each
    returns a winner only where it *improved* on that incumbent, which
    keeps the chunk-order reduction identical to the serial tournament.
    A Pareto objective's chunk fronts are merged in chunk order —
    dominance is order-independent and an exact vector tie keeps the
    first point in scan order either way, so the merged front equals
    the serial scan's.
    """
    objective = as_objective(objective)
    chunk_count = min(workload, workers * _CHUNKS_PER_WORKER)
    bounds = [offset + (index * workload) // chunk_count
              for index in range(chunk_count + 1)]
    if sampled:
        specs = [("list", candidates[start:stop])
                 for start, stop in zip(bounds, bounds[1:])
                 if stop > start]
    else:
        kind = "prange" if search == "pruned" else "range"
        specs = [(kind, (start, stop))
                 for start, stop in zip(bounds, bounds[1:])
                 if stop > start]
    cache_dir = None if session.store is None else session.store.root
    # Spill the parent's cache first: work the session already did
    # (allocations, evaluations, earlier searches) reaches the workers
    # through their hydration instead of being recomputed per worker.
    session.save_store()
    with multiprocessing.Pool(
            processes=workers,
            initializer=_scan_worker_init,
            initargs=(bsbs, architecture, restrictions, area_quanta,
                      keep_history, cache_dir, primed, objective.name,
                      shared)) as pool:
        results = pool.map(_scan_worker_chunk, specs, chunksize=1)

    best_eval = None
    best_allocation = None
    evaluations = 0
    skipped_infeasible = 0
    history = []
    front = objective.new_front() if hasattr(objective, "new_front") \
        else None
    prune = _empty_prune_stats()
    library = architecture.library
    for (chunk_allocation, chunk_eval, chunk_evaluations, chunk_skipped,
         chunk_history, chunk_front, chunk_prune, stats_delta,
         store_delta) in results:
        session.stats.merge(stats_delta)
        if session.store is not None and store_delta:
            session.store.absorb_delta(store_delta)
        evaluations += chunk_evaluations
        skipped_infeasible += chunk_skipped
        history.extend(chunk_history)
        if front is not None and chunk_front is not None:
            front.merge(chunk_front)
        if chunk_prune is not None:
            for stage, count in chunk_prune.items():
                prune[stage] += count
        if chunk_eval is None:
            continue
        if best_eval is None or objective.better(chunk_eval, best_eval,
                                                 library):
            best_eval = chunk_eval
            best_allocation = chunk_allocation
    return (best_allocation, best_eval, evaluations, skipped_infeasible,
            history, front, prune)


def _scan_worker_init(bsbs, architecture, restrictions, area_quanta,
                      keep_history, cache_dir, primed=None,
                      objective_name=None, shared=None):
    global _WORKER_SCAN_CONTEXT
    from repro.engine.session import Session

    session = Session(library=architecture.library, cache_dir=cache_dir)
    session._adopt(bsbs)
    names, ranges = allocation_space(bsbs, architecture.library,
                                     restrictions=restrictions)
    unit_areas = {name: architecture.library.area_of(name)
                  for name in names}
    # Objectives are stateless singletons: the *name* crosses the
    # process boundary and resolves to this process's instance.
    objective = as_objective(objective_name)
    _WORKER_SCAN_CONTEXT = (bsbs, architecture, area_quanta,
                            keep_history, session, unit_areas,
                            names, ranges, primed, objective, shared)


def _scan_worker_chunk(spec):
    """Scan one contiguous chunk; ship the winner and accounting back."""
    (bsbs, architecture, area_quanta, keep_history, session, unit_areas,
     names, ranges, primed, objective, shared) = _WORKER_SCAN_CONTEXT
    kind, payload = spec
    before = session.stats.snapshot()
    if kind == "prange":
        start, stop = payload
        outcome = _scan_pruned_range(bsbs, architecture, area_quanta,
                                     keep_history, session, names,
                                     ranges, unit_areas, start, stop,
                                     primed, objective, shared=shared)
    else:
        if kind == "range":
            start, stop = payload
            candidates = _enumerate_slice(names, ranges, start, stop)
            check_area = True
        else:
            candidates = payload
            check_area = False
        outcome = _scan_candidates(candidates, bsbs, architecture,
                                   area_quanta, keep_history, session,
                                   unit_areas, check_area=check_area,
                                   objective=objective) \
            + (None,)
    # New cache entries ship back stable-encoded; the parent session —
    # the store's one writer — spills them in its final flush.
    store_delta = None if session.store is None \
        else session.store.export_delta(session.cache)
    from repro.engine.cache import CacheStats

    return outcome + (CacheStats.delta(before,
                                       session.stats.snapshot()),
                      store_delta)
