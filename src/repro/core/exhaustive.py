"""Exhaustive allocation search (the paper's evaluation baseline).

Section 5: "the PACE algorithm is used to generate a partition of the
application for all possible allocations.  Through this exhaustive
search, the allocation that gives the best partitioning result in terms
of speed-up is marked as the best allocation."

The search space is the cross product of per-resource counts from zero
up to the ASAP-parallelism restriction caps.  The paper's footnote notes
the eigen benchmark has about a million allocations and could not be
exhausted; :func:`exhaustive_best_allocation` therefore accepts a
``max_evaluations`` budget and an even-stride sampling mode for such
spaces.
"""

import itertools
import random
from dataclasses import dataclass, field

from repro.core.allocator import required_resources
from repro.core.restrictions import asap_restrictions
from repro.core.rmap import RMap
from repro.errors import AllocationError
from repro.partition.evaluate import evaluate_allocation


def allocation_space(bsbs, library, restrictions=None):
    """(resource names, per-resource count ranges) of the search space.

    Only resources some BSB actually needs are enumerated; counts range
    from 0 to the restriction cap of each resource.
    """
    if restrictions is None:
        restrictions = asap_restrictions(bsbs, library)
    needed = RMap()
    for bsb in bsbs:
        needed = needed | required_resources(bsb, library)
    names = needed.names()
    ranges = [range(0, max(1, restrictions[name]) + 1) for name in names]
    return names, ranges


def space_size(bsbs, library, restrictions=None):
    """Number of allocations the exhaustive search would visit."""
    _, ranges = allocation_space(bsbs, library, restrictions=restrictions)
    size = 1
    for counts in ranges:
        size *= len(counts)
    return size


def enumerate_allocations(bsbs, library, restrictions=None, stride=1):
    """Yield every allocation in the search space (RMap instances).

    ``stride`` > 1 yields every stride-th allocation in lexicographic
    order (kept for deterministic partial scans; for *searching* large
    spaces prefer :func:`sample_allocations`, which is unbiased).
    """
    if stride < 1:
        raise AllocationError("stride must be >= 1, got %r" % (stride,))
    names, ranges = allocation_space(bsbs, library,
                                     restrictions=restrictions)
    for index, counts in enumerate(itertools.product(*ranges)):
        if index % stride:
            continue
        yield RMap._unchecked({name: count
                               for name, count in zip(names, counts)
                               if count})


def sample_allocations(bsbs, library, count, restrictions=None, seed=1998):
    """Yield ``count`` pseudo-random allocations from the space.

    Sampling is uniform and reproducible (fixed seed); duplicates are
    possible for tiny spaces but the caller only cares about the best
    evaluation found.  Used when the space is too large to exhaust —
    the situation the paper's eigen footnote describes.
    """
    names, ranges = allocation_space(bsbs, library,
                                     restrictions=restrictions)
    generator = random.Random(seed)
    for _ in range(count):
        yield RMap._unchecked({name: value for name, value in
                               ((name, generator.randrange(len(counts)))
                                for name, counts in zip(names, ranges))
                               if value})


@dataclass
class ExhaustiveResult:
    """Outcome of the exhaustive (or sampled) allocation search.

    Attributes:
        best_allocation: Allocation with the highest PACE speed-up.
        best_evaluation: Its full :class:`AllocationEvaluation`.
        evaluations: Number of allocations evaluated.
        space: Total size of the allocation space.
        sampled: True when stride sampling was used.
        history: Optional list of (allocation, speedup) pairs.
    """

    best_allocation: RMap
    best_evaluation: object
    evaluations: int
    space: int
    sampled: bool
    history: list = field(default_factory=list)


def exhaustive_best_allocation(bsbs, architecture, restrictions=None,
                               max_evaluations=None, area_quanta=200,
                               keep_history=False, session=None):
    """Search the allocation space for the best-speed-up allocation.

    When the space exceeds ``max_evaluations``, that many pseudo-random
    allocations are evaluated instead (the result is then marked
    ``sampled`` — matching the paper's treatment of eigen, where the
    "best" allocation came from numerous experiments rather than full
    enumeration).

    Every candidate is evaluated through an engine
    :class:`~repro.engine.session.Session` (a private one when none is
    passed), whose cache collapses the thousands of candidate
    allocations onto the few distinct schedules, cost arrays and PACE
    sequence tables they actually induce.  A shared session lets the
    search reuse work done by earlier evaluations of the same BSBs —
    and vice versa.
    """
    if session is None:
        from repro.engine.session import Session

        session = Session(library=architecture.library)
    library = architecture.library
    if restrictions is None:
        restrictions = session.restrictions(bsbs, library=library)
    total = space_size(bsbs, library, restrictions=restrictions)
    sampled = (max_evaluations is not None and total > max_evaluations)
    if sampled:
        candidates = sample_allocations(bsbs, library, max_evaluations,
                                        restrictions=restrictions)
    else:
        candidates = enumerate_allocations(bsbs, library,
                                           restrictions=restrictions)

    space_names, _ = allocation_space(bsbs, library,
                                      restrictions=restrictions)
    unit_areas = {name: library.area_of(name) for name in space_names}
    best_eval = None
    best_allocation = None
    evaluations = 0
    history = []
    for allocation in candidates:
        if allocation.area_from(unit_areas) > architecture.total_area:
            continue
        # remember=False: each candidate is visited exactly once, so
        # storing one whole evaluation per candidate would grow the
        # session cache linearly for ~zero hits; schedules, cost arrays
        # and sequence tables still collapse across candidates.
        evaluation = evaluate_allocation(bsbs, allocation, architecture,
                                         area_quanta=area_quanta,
                                         cache=session.cache,
                                         remember=False)
        evaluations += 1
        if keep_history:
            history.append((allocation, evaluation.speedup))
        if best_eval is None or _better(evaluation, best_eval, library):
            best_eval = evaluation
            best_allocation = allocation

    if best_eval is None:
        raise AllocationError("no feasible allocation fits the ASIC area")
    return ExhaustiveResult(
        best_allocation=best_allocation,
        best_evaluation=best_eval,
        evaluations=evaluations,
        space=total,
        sampled=sampled,
        history=history,
    )


def _better(candidate, incumbent, library):
    """Higher speed-up wins; ties go to the smaller data-path."""
    if candidate.speedup != incumbent.speedup:
        return candidate.speedup > incumbent.speedup
    return (candidate.allocation.area(library)
            < incumbent.allocation.area(library))
