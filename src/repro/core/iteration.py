"""Design iteration: reduce over-allocated resources (sections 5, 5.1).

The optimistic ASAP-based controller estimate makes the allocator
"allocate a few too many resources ... than actually affordable.
However, knowing this, the designer can always reduce the number of
allocated resources slightly in order to obtain the best possible
partitions.  It is never necessary to increase the number of allocated
resources."

This module automates that designer step: starting from an allocation,
greedily try decrementing each resource's count by one, keep the
decrement that improves the PACE speed-up the most, and repeat until no
single decrement helps.  The paper's two fixes are single steps of this
loop (man: constant generators -> 1; eigen: dividers - 1).
"""

from dataclasses import dataclass, field

from repro.core.objective import as_objective
from repro.core.rmap import RMap
from repro.partition.evaluate import evaluate_allocation


@dataclass
class IterationStep:
    """One accepted design-iteration step."""

    resource: str
    new_count: int
    speedup_before: float
    speedup_after: float

    def __str__(self):
        return "%s -> %d  (SU %.0f%% -> %.0f%%)" % (
            self.resource, self.new_count,
            self.speedup_before, self.speedup_after)


@dataclass
class IterationResult:
    """Outcome of the design-iteration loop.

    Attributes:
        initial_evaluation: Evaluation of the starting allocation.
        final_allocation: Allocation after all accepted decrements.
        final_evaluation: Its evaluation.
        steps: Accepted :class:`IterationStep` entries, in order.
    """

    initial_evaluation: object
    final_allocation: RMap
    final_evaluation: object
    steps: list = field(default_factory=list)

    @property
    def improved(self):
        return bool(self.steps)


def design_iteration(bsbs, allocation, architecture, max_steps=None,
                     area_quanta=400, session=None, overhead_model=None,
                     objective=None):
    """Run the reduce-only design-iteration loop.

    Args:
        bsbs: The application's leaf-BSB array.
        allocation: Starting allocation (typically Algorithm 1's output).
        architecture: Target architecture.
        max_steps: Optional cap on accepted decrements (the paper used a
            *single* design iteration; pass 1 to reproduce that).
        area_quanta: PACE area resolution.
        session: Optional engine
            :class:`~repro.engine.session.Session` whose cache carries
            schedules, cost arrays and whole evaluations across calls (a
            private one is created otherwise).  The loop re-examines
            each candidate decrement every round, so the evaluation memo
            makes all rounds after the first nearly free.
        overhead_model: Optional interconnect/storage model, charged by
            every evaluation (the future-work extension's ablation).
        objective: Optional objective (name or instance, see
            :mod:`repro.core.objective`) deciding what "improves" means;
            a decrement is accepted only when it strictly improves the
            objective's primary axis.  The default is the paper's
            speed-up — under it this loop is unchanged step for step.
    """
    if session is None:
        from repro.engine.session import Session

        session = Session(library=architecture.library)
    objective = as_objective(objective)
    library = architecture.library
    cache = session.cache
    allocation = RMap._coerce(allocation)
    current_eval = evaluate_allocation(bsbs, allocation, architecture,
                                       area_quanta=area_quanta, cache=cache,
                                       overhead_model=overhead_model)
    initial_eval = current_eval
    steps = []

    while max_steps is None or len(steps) < max_steps:
        best_step = None
        best_eval = None
        for name in allocation.names():
            candidate = allocation.incremented(name, -1)
            evaluation = evaluate_allocation(bsbs, candidate, architecture,
                                             area_quanta=area_quanta,
                                             cache=cache,
                                             overhead_model=overhead_model)
            if not objective.improves(evaluation, current_eval, library):
                continue
            if best_eval is None or \
                    objective.improves(evaluation, best_eval, library):
                best_eval = evaluation
                best_step = IterationStep(
                    resource=name,
                    new_count=candidate[name],
                    speedup_before=current_eval.speedup,
                    speedup_after=evaluation.speedup,
                )
        if best_step is None:
            break
        allocation = allocation.incremented(best_step.resource, -1)
        current_eval = best_eval
        steps.append(best_step)

    return IterationResult(
        initial_evaluation=initial_eval,
        final_allocation=allocation,
        final_evaluation=current_eval,
        steps=steps,
    )
