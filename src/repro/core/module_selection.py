"""Module selection: choosing *which* unit executes an operation type.

The paper's first future-work item: "extending the algorithm to be
able to deal with selection between several resources that can execute
the same type of operation."  This module implements that extension as
a drop-in variant of Algorithm 1:

* when a BSB moves to hardware, each uncovered operation type is
  assigned a unit chosen by a :class:`SelectionPolicy` from the
  library's candidate list (instead of the single designated unit);
* when a hardware BSB requests one more unit for its most urgent
  operation type, the policy chooses again — so the mix may combine a
  fast unit for the critical path with cheap units for bulk
  parallelism;
* per-type restrictions cap the *total* number of units able to
  execute the type, regardless of which modules provide them.

Hardware times under mixed allocations come from
:func:`repro.sched.hetero_scheduler.hetero_list_schedule`.
"""

import time
from dataclasses import dataclass

from repro.core.allocator import (
    AllocationEvent,
    AllocationResult,
    _estimated_eca,
    urgency_state,
)
from repro.core.furo import allocated_units_for
from repro.core.priority import prioritize
from repro.core.restrictions import asap_type_parallelism
from repro.core.rmap import RMap
from repro.errors import AllocationError


class SelectionPolicy:
    """Strategy choosing among candidate resources for one type.

    Subclasses override :meth:`choose`.  ``urgency`` is the requesting
    BSB's current U(o, B) — policies may buy speed for urgent types and
    area for cold ones.
    """

    name = "policy"

    def choose(self, optype, candidates, remaining_area, urgency):
        raise NotImplementedError

    def _affordable(self, candidates, remaining_area):
        return [resource for resource in candidates
                if resource.area <= remaining_area]


class FastestPolicy(SelectionPolicy):
    """Always the lowest-latency candidate that fits."""

    name = "fastest"

    def choose(self, optype, candidates, remaining_area, urgency):
        affordable = self._affordable(candidates, remaining_area)
        if not affordable:
            return None
        return min(affordable,
                   key=lambda resource: (resource.latency, resource.area,
                                         resource.name))


class CheapestPolicy(SelectionPolicy):
    """Always the smallest candidate that fits."""

    name = "cheapest"

    def choose(self, optype, candidates, remaining_area, urgency):
        affordable = self._affordable(candidates, remaining_area)
        if not affordable:
            return None
        return min(affordable,
                   key=lambda resource: (resource.area, resource.latency,
                                         resource.name))


class BalancedPolicy(SelectionPolicy):
    """Minimise the area-delay product (a classic HLS selection rule)."""

    name = "balanced"

    def choose(self, optype, candidates, remaining_area, urgency):
        affordable = self._affordable(candidates, remaining_area)
        if not affordable:
            return None
        return min(affordable,
                   key=lambda resource: (resource.area * resource.latency,
                                         resource.name))


@dataclass
class SelectionResult:
    """An :class:`AllocationResult` plus the policy that produced it."""

    result: AllocationResult
    policy_name: str

    @property
    def allocation(self):
        return self.result.allocation


def selection_restrictions(bsbs, library):
    """Per-type caps for module selection.

    The homogeneous restrictions cap each *resource*; with selection the
    cap must bound the total capable units per *type*, so it is returned
    as a mapping OpType -> max units.
    """
    return asap_type_parallelism(bsbs, library=library)


def _required_with_selection(bsb, allocation, library, policy,
                             remaining_area):
    """Units (RMap) still needed to cover the BSB's types, policy-chosen.

    Returns ``None`` when some type has no affordable candidate.
    """
    needed = RMap()
    budget = remaining_area
    for optype in sorted(bsb.op_types(), key=lambda ot: ot.value):
        covered = allocated_units_for(optype, allocation | needed, library)
        if covered > 0:
            continue
        candidates = library.candidates_for(optype)
        if not candidates:
            raise AllocationError(
                "BSB %r contains %s but library %r has no resource "
                "for it" % (bsb.name, optype, library.name))
        chosen = policy.choose(optype, candidates, budget, 0.0)
        if chosen is None:
            return None
        needed[chosen.name] = needed[chosen.name] + 1
        budget -= chosen.area
    return needed


def allocate_with_selection(bsbs, library, area, policy=None,
                            restrictions=None, technology=None,
                            keep_trace=False, cache=None):
    """Algorithm 1 with module selection (the future-work extension).

    Same control structure as :func:`repro.core.allocator.allocate`;
    the differences are confined to how resources are picked (the
    ``policy``) and how restrictions are checked (per operation type).
    ``cache`` is an optional :class:`~repro.engine.cache.EvalCache`
    reusing FURO urgencies and ECA estimates across runs.
    """
    bsbs = list(bsbs)
    if area < 0:
        raise AllocationError("hardware area must be >= 0, got %r" % (area,))
    policy = policy or BalancedPolicy()
    if technology is None:
        technology = library.technology
    if restrictions is None:
        restrictions = selection_restrictions(bsbs, library)

    started = time.perf_counter()
    state = urgency_state(bsbs, library, cache=cache)
    eca_of = {bsb.uid: _estimated_eca(bsb, library, technology, cache=cache)
              for bsb in bsbs}

    allocation = RMap()
    remaining = float(area)
    hw_uids = set()
    hw_names = []
    datapath_area = 0.0
    controller_area = 0.0
    events = []

    order = prioritize(bsbs, state, hw_uids, allocation)
    index = 0
    while index < len(order) and remaining > 0:
        changed = False
        bsb = order[index]
        if bsb.uid in hw_uids:
            urgency, optype = state.max_urgency(bsb, True, allocation)
            if optype is not None:
                cap = restrictions.get(optype, 0)
                units = allocated_units_for(optype, allocation, library)
                if units + 1 <= cap:
                    chosen = policy.choose(
                        optype, library.candidates_for(optype),
                        remaining, urgency)
                    if chosen is not None:
                        allocation = allocation.incremented(chosen.name)
                        remaining -= chosen.area
                        datapath_area += chosen.area
                        changed = True
                        if keep_trace:
                            events.append(AllocationEvent(
                                "extra-unit", bsb.name,
                                {chosen.name: 1}, chosen.area, remaining))
        else:
            needed = _required_with_selection(
                bsb, allocation, library, policy,
                remaining - eca_of[bsb.uid])
            if needed is not None:
                cost = eca_of[bsb.uid] + needed.area(library)
                if cost <= remaining:
                    allocation = allocation | needed
                    remaining -= cost
                    datapath_area += needed.area(library)
                    controller_area += eca_of[bsb.uid]
                    hw_uids.add(bsb.uid)
                    hw_names.append(bsb.name)
                    changed = not needed.is_empty()
                    if keep_trace:
                        events.append(AllocationEvent(
                            "move", bsb.name, needed.as_dict(),
                            cost, remaining))
        if changed:
            order = prioritize(bsbs, state, hw_uids, allocation)
            index = 0
        else:
            index += 1

    result = AllocationResult(
        allocation=allocation,
        hw_bsb_names=hw_names,
        remaining_area=remaining,
        datapath_area=datapath_area,
        controller_area=controller_area,
        restrictions=RMap(),  # type-level caps do not fit an RMap
        runtime_seconds=time.perf_counter() - started,
        events=events,
    )
    return SelectionResult(result=result, policy_name=policy.name)
