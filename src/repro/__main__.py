"""``python -m repro`` entry point."""

import sys

from repro.cli import main

# The guard matters: on spawn-start-method platforms every
# multiprocessing worker (Session.explore / `sweep --workers N`)
# re-imports the parent's main module, and an unguarded call would
# re-run the CLI inside each worker.
if __name__ == "__main__":
    sys.exit(main())
