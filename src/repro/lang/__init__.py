"""Mini-C frontend: the "input description" of the LYCOS flow.

The paper obtains the application CDFG "from an input description in
VHDL or C".  This package provides a small C-like language sufficient
for the paper's benchmarks: integer scalars and one-dimensional arrays,
assignments with full arithmetic/logic/comparison expressions, ``if``/
``else``, ``while`` and ``for`` statements, plus ``input``/``output``
declarations that name the values supplied at profiling time.
"""

from repro.lang.tokens import Token, TokenType
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang import ast_nodes as ast

__all__ = ["Token", "TokenType", "tokenize", "parse", "ast"]
