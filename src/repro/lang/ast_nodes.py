"""Abstract syntax tree of the mini-C frontend.

Nodes carry their source line so errors and profiling traces can point
back at the input; the CDFG builder records which statements each leaf
BSB covers via these nodes.
"""

from dataclasses import dataclass, field
from typing import Optional


class Node:
    """Base class for all AST nodes."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr(Node):
    line: int = 0


@dataclass
class NumberLiteral(Expr):
    value: int = 0

    def __str__(self):
        return str(self.value)


@dataclass
class VarRef(Expr):
    name: str = ""

    def __str__(self):
        return self.name


@dataclass
class ArrayRef(Expr):
    name: str = ""
    index: Optional[Expr] = None

    def __str__(self):
        return "%s[%s]" % (self.name, self.index)


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Optional[Expr] = None

    def __str__(self):
        return "(%s%s)" % (self.op, self.operand)


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None

    def __str__(self):
        return "(%s %s %s)" % (self.left, self.op, self.right)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt(Node):
    line: int = 0


@dataclass
class Assign(Stmt):
    """``target = expr;`` — target is a VarRef or ArrayRef."""

    target: Optional[Expr] = None
    expr: Optional[Expr] = None

    def __str__(self):
        return "%s = %s;" % (self.target, self.expr)


@dataclass
class VarDecl(Stmt):
    """``int name;`` or ``int name[size];`` (size given => array)."""

    name: str = ""
    size: Optional[int] = None

    def __str__(self):
        if self.size is None:
            return "int %s;" % self.name
        return "int %s[%d];" % (self.name, self.size)


@dataclass
class InputDecl(Stmt):
    """``input a, b;`` — values supplied at profiling time."""

    names: list = field(default_factory=list)

    def __str__(self):
        return "input %s;" % ", ".join(self.names)


@dataclass
class OutputDecl(Stmt):
    """``output y;`` — results reported by the profiler."""

    names: list = field(default_factory=list)

    def __str__(self):
        return "output %s;" % ", ".join(self.names)


@dataclass
class Block(Stmt):
    statements: list = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: Optional[Block] = None
    else_body: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Block] = None


@dataclass
class For(Stmt):
    """``for (init; cond; update) body`` — init/update are assignments."""

    init: Optional[Assign] = None
    cond: Optional[Expr] = None
    update: Optional[Assign] = None
    body: Optional[Block] = None


@dataclass
class Wait(Stmt):
    """``wait(n);`` — a wait statement (CDFG wait node, Figure 4)."""

    cycles: int = 1


@dataclass
class Program(Node):
    statements: list = field(default_factory=list)
    inputs: list = field(default_factory=list)
    outputs: list = field(default_factory=list)
    arrays: dict = field(default_factory=dict)  # name -> size


def walk_expr(expr):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    yield expr
    if isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, ArrayRef):
        yield from walk_expr(expr.index)


def expr_variables(expr):
    """Names of scalar variables read by ``expr`` (arrays excluded)."""
    names = set()
    for node in walk_expr(expr):
        if isinstance(node, VarRef):
            names.add(node.name)
    return names


def expr_arrays(expr):
    """Names of arrays read by ``expr``."""
    names = set()
    for node in walk_expr(expr):
        if isinstance(node, ArrayRef):
            names.add(node.name)
    return names
