"""Recursive-descent parser for the mini-C frontend.

Grammar (EBNF; ``{}`` repetition, ``[]`` optional)::

    program     = { statement } ;
    statement   = var_decl | input_decl | output_decl | assign_stmt
                | if_stmt | while_stmt | for_stmt | wait_stmt | block ;
    var_decl    = "int" IDENT [ "[" NUMBER "]" ] { "," IDENT [...] } ";" ;
    input_decl  = "input" IDENT { "," IDENT } ";" ;
    output_decl = "output" IDENT { "," IDENT } ";" ;
    assign_stmt = lvalue "=" expr ";" ;
    lvalue      = IDENT [ "[" expr "]" ] ;
    if_stmt     = "if" "(" expr ")" block [ "else" (block | if_stmt) ] ;
    while_stmt  = "while" "(" expr ")" block ;
    for_stmt    = "for" "(" assign ";" expr ";" assign ")" block ;
    wait_stmt   = "wait" "(" NUMBER ")" ";" ;
    block       = "{" { statement } "}" ;

Expressions use C precedence: ``|`` < ``^`` < ``&`` < equality <
relational < shifts < additive < multiplicative < unary.
"""

from repro.errors import ParseError, SemanticError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


class Parser:
    """Token-stream parser producing a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.position]

    def check(self, token_type):
        return self.current.type is token_type

    def accept(self, token_type):
        if self.check(token_type):
            token = self.current
            self.position += 1
            return token
        return None

    def expect(self, token_type, what=None):
        token = self.accept(token_type)
        if token is None:
            raise ParseError(
                "expected %s but found %r"
                % (what or token_type.value, self.current.text or "<eof>"),
                line=self.current.line, column=self.current.column)
        return token

    # ------------------------------------------------------------------
    # Program / statements
    # ------------------------------------------------------------------
    def parse_program(self):
        program = ast.Program()
        while not self.check(TokenType.EOF):
            statement = self.parse_statement()
            self._register(statement, program)
            program.statements.append(statement)
        return program

    def _register(self, statement, program):
        if isinstance(statement, ast.InputDecl):
            program.inputs.extend(statement.names)
        elif isinstance(statement, ast.OutputDecl):
            program.outputs.extend(statement.names)
        elif isinstance(statement, ast.VarDecl) and statement.size is not None:
            if statement.name in program.arrays:
                raise SemanticError("array %r declared twice"
                                    % statement.name)
            program.arrays[statement.name] = statement.size

    def parse_statement(self):
        if self.check(TokenType.INT):
            return self.parse_var_decl()
        if self.check(TokenType.INPUT):
            return self.parse_io_decl(TokenType.INPUT, ast.InputDecl)
        if self.check(TokenType.OUTPUT):
            return self.parse_io_decl(TokenType.OUTPUT, ast.OutputDecl)
        if self.check(TokenType.IF):
            return self.parse_if()
        if self.check(TokenType.WHILE):
            return self.parse_while()
        if self.check(TokenType.FOR):
            return self.parse_for()
        if self.check(TokenType.WAIT):
            return self.parse_wait()
        if self.check(TokenType.LBRACE):
            return self.parse_block()
        if self.check(TokenType.IDENT):
            statement = self.parse_assign()
            self.expect(TokenType.SEMI, "';'")
            return statement
        raise ParseError("unexpected token %r" % (self.current.text or "<eof>"),
                         line=self.current.line, column=self.current.column)

    def parse_var_decl(self):
        token = self.expect(TokenType.INT)
        declarations = []
        while True:
            name = self.expect(TokenType.IDENT, "variable name").text
            size = None
            if self.accept(TokenType.LBRACKET):
                size_token = self.expect(TokenType.NUMBER, "array size")
                size = _parse_int(size_token)
                if size < 1:
                    raise SemanticError("array %r has size %d < 1"
                                        % (name, size))
                self.expect(TokenType.RBRACKET, "']'")
            declarations.append(ast.VarDecl(line=token.line, name=name,
                                            size=size))
            if not self.accept(TokenType.COMMA):
                break
        self.expect(TokenType.SEMI, "';'")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(line=token.line, statements=declarations)

    def parse_io_decl(self, token_type, node_class):
        token = self.expect(token_type)
        names = [self.expect(TokenType.IDENT, "name").text]
        while self.accept(TokenType.COMMA):
            names.append(self.expect(TokenType.IDENT, "name").text)
        self.expect(TokenType.SEMI, "';'")
        return node_class(line=token.line, names=names)

    def parse_assign(self):
        name_token = self.expect(TokenType.IDENT, "variable name")
        if self.accept(TokenType.LBRACKET):
            index = self.parse_expr()
            self.expect(TokenType.RBRACKET, "']'")
            target = ast.ArrayRef(line=name_token.line,
                                  name=name_token.text, index=index)
        else:
            target = ast.VarRef(line=name_token.line, name=name_token.text)
        self.expect(TokenType.ASSIGN, "'='")
        expr = self.parse_expr()
        return ast.Assign(line=name_token.line, target=target, expr=expr)

    def parse_if(self):
        token = self.expect(TokenType.IF)
        self.expect(TokenType.LPAREN, "'('")
        cond = self.parse_expr()
        self.expect(TokenType.RPAREN, "')'")
        then_body = self.parse_block()
        else_body = None
        if self.accept(TokenType.ELSE):
            if self.check(TokenType.IF):
                nested = self.parse_if()
                else_body = ast.Block(line=nested.line, statements=[nested])
            else:
                else_body = self.parse_block()
        return ast.If(line=token.line, cond=cond,
                      then_body=then_body, else_body=else_body)

    def parse_while(self):
        token = self.expect(TokenType.WHILE)
        self.expect(TokenType.LPAREN, "'('")
        cond = self.parse_expr()
        self.expect(TokenType.RPAREN, "')'")
        body = self.parse_block()
        return ast.While(line=token.line, cond=cond, body=body)

    def parse_for(self):
        token = self.expect(TokenType.FOR)
        self.expect(TokenType.LPAREN, "'('")
        init = self.parse_assign()
        self.expect(TokenType.SEMI, "';'")
        cond = self.parse_expr()
        self.expect(TokenType.SEMI, "';'")
        update = self.parse_assign()
        self.expect(TokenType.RPAREN, "')'")
        body = self.parse_block()
        return ast.For(line=token.line, init=init, cond=cond,
                       update=update, body=body)

    def parse_wait(self):
        token = self.expect(TokenType.WAIT)
        self.expect(TokenType.LPAREN, "'('")
        cycles_token = self.expect(TokenType.NUMBER, "cycle count")
        self.expect(TokenType.RPAREN, "')'")
        self.expect(TokenType.SEMI, "';'")
        cycles = _parse_int(cycles_token)
        if cycles < 1:
            raise SemanticError("wait cycles must be >= 1, got %d" % cycles)
        return ast.Wait(line=token.line, cycles=cycles)

    def parse_block(self):
        token = self.expect(TokenType.LBRACE, "'{'")
        statements = []
        while not self.check(TokenType.RBRACE):
            if self.check(TokenType.EOF):
                raise ParseError("unterminated block",
                                 line=token.line, column=token.column)
            statements.append(self.parse_statement())
        self.expect(TokenType.RBRACE)
        return ast.Block(line=token.line, statements=statements)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    _BINARY_LEVELS = [
        [TokenType.PIPE],
        [TokenType.CARET],
        [TokenType.AMP],
        [TokenType.EQ, TokenType.NE],
        [TokenType.LT, TokenType.LE, TokenType.GT, TokenType.GE],
        [TokenType.LSHIFT, TokenType.RSHIFT],
        [TokenType.PLUS, TokenType.MINUS],
        [TokenType.STAR, TokenType.SLASH, TokenType.PERCENT],
    ]

    def parse_expr(self, level=0):
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        while self.current.type in self._BINARY_LEVELS[level]:
            op_token = self.current
            self.position += 1
            right = self.parse_expr(level + 1)
            left = ast.BinaryOp(line=op_token.line, op=op_token.text,
                                left=left, right=right)
        return left

    def parse_unary(self):
        if self.check(TokenType.MINUS) or self.check(TokenType.TILDE):
            op_token = self.current
            self.position += 1
            operand = self.parse_unary()
            return ast.UnaryOp(line=op_token.line, op=op_token.text,
                               operand=operand)
        return self.parse_primary()

    def parse_primary(self):
        if self.check(TokenType.NUMBER):
            token = self.accept(TokenType.NUMBER)
            return ast.NumberLiteral(line=token.line, value=_parse_int(token))
        if self.check(TokenType.IDENT):
            token = self.accept(TokenType.IDENT)
            if self.accept(TokenType.LBRACKET):
                index = self.parse_expr()
                self.expect(TokenType.RBRACKET, "']'")
                return ast.ArrayRef(line=token.line, name=token.text,
                                    index=index)
            return ast.VarRef(line=token.line, name=token.text)
        if self.accept(TokenType.LPAREN):
            expr = self.parse_expr()
            self.expect(TokenType.RPAREN, "')'")
            return expr
        raise ParseError("expected an expression, found %r"
                         % (self.current.text or "<eof>"),
                         line=self.current.line, column=self.current.column)


def _parse_int(token):
    text = token.text
    if text.lower().startswith("0x"):
        return int(text, 16)
    return int(text)


def parse(source):
    """Parse mini-C source text into a Program AST."""
    return Parser(tokenize(source)).parse_program()
