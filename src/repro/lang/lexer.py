"""Hand-written lexer for the mini-C frontend."""

from repro.errors import LexerError
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


def tokenize(source):
    """Convert source text into a list of tokens (EOF-terminated).

    Supports ``//`` line comments and ``/* ... */`` block comments,
    decimal and hexadecimal (``0x``) integer literals, identifiers and
    the operator/delimiter set of :mod:`repro.lang.tokens`.
    """
    tokens = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def advance(count=1):
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]

        # Whitespace
        if char in " \t\r\n":
            advance()
            continue

        # Comments
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                advance()
            continue
        if source.startswith("/*", index):
            start_line, start_column = line, column
            advance(2)
            while index < length and not source.startswith("*/", index):
                advance()
            if index >= length:
                raise LexerError("unterminated block comment",
                                 start_line, start_column)
            advance(2)
            continue

        # Numbers
        if char.isdigit():
            start_line, start_column = line, column
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                advance(2)
                if index >= length or not _is_hex_digit(source[index]):
                    raise LexerError("malformed hex literal",
                                     start_line, start_column)
                while index < length and _is_hex_digit(source[index]):
                    advance()
            else:
                while index < length and source[index].isdigit():
                    advance()
            if index < length and (source[index].isalpha()
                                   or source[index] == "_"):
                raise LexerError("identifier cannot start with a digit",
                                 start_line, start_column)
            tokens.append(Token(TokenType.NUMBER, source[start:index],
                                start_line, start_column))
            continue

        # Identifiers and keywords
        if char.isalpha() or char == "_":
            start_line, start_column = line, column
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                advance()
            text = source[start:index]
            token_type = KEYWORDS.get(text, TokenType.IDENT)
            tokens.append(Token(token_type, text, start_line, start_column))
            continue

        # Multi-character operators
        matched = False
        for text, token_type in MULTI_CHAR_OPERATORS:
            if source.startswith(text, index):
                tokens.append(Token(token_type, text, line, column))
                advance(len(text))
                matched = True
                break
        if matched:
            continue

        # Single-character operators / delimiters
        if char in SINGLE_CHAR_OPERATORS:
            tokens.append(Token(SINGLE_CHAR_OPERATORS[char], char,
                                line, column))
            advance()
            continue

        raise LexerError("unexpected character %r" % char, line, column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens


def _is_hex_digit(char):
    return char.isdigit() or char.lower() in "abcdef"
