"""Token definitions for the mini-C frontend."""

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical token categories."""

    # Literals and identifiers
    NUMBER = "number"
    IDENT = "ident"

    # Keywords
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    INT = "int"
    INPUT = "input"
    OUTPUT = "output"
    WAIT = "wait"

    # Operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LSHIFT = "<<"
    RSHIFT = ">>"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    ASSIGN = "="

    # Delimiters
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","

    EOF = "eof"


KEYWORDS = {
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "for": TokenType.FOR,
    "int": TokenType.INT,
    "input": TokenType.INPUT,
    "output": TokenType.OUTPUT,
    "wait": TokenType.WAIT,
}

#: Multi-character operators, longest first so the lexer prefers them.
MULTI_CHAR_OPERATORS = [
    ("<<", TokenType.LSHIFT),
    (">>", TokenType.RSHIFT),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("==", TokenType.EQ),
    ("!=", TokenType.NE),
]

SINGLE_CHAR_OPERATORS = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "&": TokenType.AMP,
    "|": TokenType.PIPE,
    "^": TokenType.CARET,
    "~": TokenType.TILDE,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "=": TokenType.ASSIGN,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ";": TokenType.SEMI,
    ",": TokenType.COMMA,
}


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    line: int
    column: int

    def __str__(self):
        return "%s(%r)@%d:%d" % (self.type.name, self.text,
                                 self.line, self.column)
