"""Behavioural-VHDL frontend (the paper's other input language).

"The CDFG is obtained from an input description in VHDL or C"
(section 3).  This module accepts a small behavioural subset —
a single entity/architecture with one process — and produces the same
AST as the mini-C parser, so everything downstream (CDFG, profiling,
allocation, PACE) is shared:

* ``entity``/``port``: ``in integer`` ports become ``input``
  declarations, ``out integer`` ports become ``output`` declarations;
* ``process`` with ``variable`` declarations (``integer`` scalars);
* ``:=`` assignments with VHDL operators (``mod``/``rem``, ``sll``/
  ``srl``, ``and``/``or``/``xor``/``not``, ``= /= < <= > >=``);
* ``if .. then .. elsif .. else .. end if``;
* ``while .. loop .. end loop`` and ``for i in a to b loop``;
* ``wait for N ns;``.

Array types are not supported in this subset (the mini-C frontend
covers array-based applications); the parser reports them clearly.
"""

import re

from repro.errors import LexerError, ParseError, SemanticError
from repro.lang import ast_nodes as ast

_TOKEN_RE = re.compile(r"""
    (?P<comment>--[^\n]*)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z][A-Za-z0-9_]*)
  | (?P<op><=|>=|/=|:=|=>|[-+*/=<>();:,&])
  | (?P<ws>[ \t\r\n]+)
  | (?P<bad>.)
""", re.VERBOSE)

_KEYWORDS = {
    "entity", "is", "port", "in", "out", "integer", "end", "architecture",
    "of", "begin", "process", "variable", "if", "then", "elsif", "else",
    "while", "loop", "for", "to", "wait", "ns", "mod", "rem", "sll",
    "srl", "and", "or", "xor", "not", "downto",
}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return "%s(%r)@%d" % (self.kind, self.text, self.line)


def _tokenize(source):
    tokens = []
    line = 1
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            line += text.count("\n")
            continue
        if kind == "bad":
            raise LexerError("unexpected character %r in VHDL source"
                             % text, line, match.start())
        if kind == "ident":
            lowered = text.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token(lowered, lowered, line))
                continue
            tokens.append(_Token("ident", text, line))
            continue
        tokens.append(_Token(kind if kind == "number" else text,
                             text, line))
        line += text.count("\n")
    tokens.append(_Token("eof", "", line))
    return tokens


class _VhdlParser:
    """Recursive-descent parser for the behavioural subset."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    @property
    def current(self):
        return self.tokens[self.position]

    def accept(self, kind):
        if self.current.kind == kind:
            token = self.current
            self.position += 1
            return token
        return None

    def expect(self, kind, what=None):
        token = self.accept(kind)
        if token is None:
            raise ParseError("expected %s but found %r"
                             % (what or kind, self.current.text or "<eof>"),
                             line=self.current.line)
        return token

    # ------------------------------------------------------------------
    def parse_design(self):
        program = ast.Program()
        self.parse_entity(program)
        self.parse_architecture(program)
        self.expect("eof", "end of file")
        return program

    def parse_entity(self, program):
        self.expect("entity")
        self.expect("ident", "entity name")
        self.expect("is")
        if self.accept("port"):
            self.expect("(", "'('")
            while True:
                names = [self.expect("ident", "port name").text]
                while self.accept(","):
                    names.append(self.expect("ident", "port name").text)
                self.expect(":", "':'")
                if self.accept("in"):
                    direction = "in"
                elif self.accept("out"):
                    direction = "out"
                else:
                    raise ParseError("port needs a direction (in/out)",
                                     line=self.current.line)
                self.expect("integer", "integer type")
                if direction == "in":
                    program.inputs.extend(names)
                else:
                    program.outputs.extend(names)
                if not self.accept(";"):
                    break
            self.expect(")", "')'")
            self.expect(";", "';'")
        self.expect("end")
        self.accept("entity")
        self.accept("ident")
        self.expect(";", "';'")

    def parse_architecture(self, program):
        self.expect("architecture")
        self.expect("ident", "architecture name")
        self.expect("of")
        self.expect("ident", "entity name")
        self.expect("is")
        self.expect("begin")
        self.parse_process(program)
        self.expect("end")
        self.accept("architecture")
        self.accept("ident")
        self.expect(";", "';'")

    def parse_process(self, program):
        self.expect("process")
        while self.current.kind == "variable":
            self.accept("variable")
            names = [self.expect("ident", "variable name").text]
            while self.accept(","):
                names.append(self.expect("ident", "variable name").text)
            self.expect(":", "':'")
            if self.current.kind == "ident":
                raise SemanticError(
                    "only integer variables are supported in the VHDL "
                    "subset (near line %d); use the mini-C frontend for "
                    "arrays" % self.current.line)
            self.expect("integer", "integer type")
            self.expect(";", "';'")
            for name in names:
                program.statements.append(
                    ast.VarDecl(line=self.current.line, name=name))
        self.expect("begin")
        program.statements.extend(self.parse_statements(("end",)))
        self.expect("end")
        self.expect("process")
        self.expect(";", "';'")

    # ------------------------------------------------------------------
    def parse_statements(self, stop_kinds):
        statements = []
        while self.current.kind not in stop_kinds:
            if self.current.kind == "eof":
                raise ParseError("unexpected end of file",
                                 line=self.current.line)
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self):
        if self.current.kind == "if":
            return self.parse_if()
        if self.current.kind == "while":
            return self.parse_while()
        if self.current.kind == "for":
            return self.parse_for()
        if self.current.kind == "wait":
            return self.parse_wait()
        if self.current.kind == "ident":
            return self.parse_assign()
        raise ParseError("unexpected token %r" % self.current.text,
                         line=self.current.line)

    def parse_assign(self):
        name = self.expect("ident", "variable name")
        self.expect(":=", "':='")
        expr = self.parse_expr()
        self.expect(";", "';'")
        return ast.Assign(line=name.line,
                          target=ast.VarRef(line=name.line,
                                            name=name.text),
                          expr=expr)

    def parse_if(self):
        token = self.expect("if")
        cond = self.parse_expr()
        self.expect("then", "'then'")
        then_body = ast.Block(line=token.line, statements=(
            self.parse_statements(("elsif", "else", "end"))))
        else_body = None
        if self.current.kind == "elsif":
            self.accept("elsif")
            # Desugar: elsif chain becomes a nested if in the else arm.
            nested = self._parse_elsif_chain(token.line)
            else_body = ast.Block(line=token.line, statements=[nested])
        elif self.accept("else"):
            else_body = ast.Block(line=token.line, statements=(
                self.parse_statements(("end",))))
        if self.current.kind == "end":
            self.accept("end")
            self.expect("if", "'end if'")
            self.expect(";", "';'")
        return ast.If(line=token.line, cond=cond, then_body=then_body,
                      else_body=else_body)

    def _parse_elsif_chain(self, line):
        cond = self.parse_expr()
        self.expect("then", "'then'")
        then_body = ast.Block(line=line, statements=(
            self.parse_statements(("elsif", "else", "end"))))
        else_body = None
        if self.current.kind == "elsif":
            self.accept("elsif")
            nested = self._parse_elsif_chain(line)
            else_body = ast.Block(line=line, statements=[nested])
        elif self.accept("else"):
            else_body = ast.Block(line=line, statements=(
                self.parse_statements(("end",))))
        return ast.If(line=line, cond=cond, then_body=then_body,
                      else_body=else_body)

    def parse_while(self):
        token = self.expect("while")
        cond = self.parse_expr()
        self.expect("loop", "'loop'")
        body = ast.Block(line=token.line,
                         statements=self.parse_statements(("end",)))
        self.expect("end")
        self.expect("loop", "'end loop'")
        self.expect(";", "';'")
        return ast.While(line=token.line, cond=cond, body=body)

    def parse_for(self):
        token = self.expect("for")
        index = self.expect("ident", "loop variable").text
        self.expect("in", "'in'")
        low = self.parse_expr()
        self.expect("to", "'to' (downto is not supported)")
        high = self.parse_expr()
        self.expect("loop", "'loop'")
        body = ast.Block(line=token.line,
                         statements=self.parse_statements(("end",)))
        self.expect("end")
        self.expect("loop", "'end loop'")
        self.expect(";", "';'")
        # for i in a to b  ==  for (i = a; i <= b; i = i + 1)
        init = ast.Assign(line=token.line,
                          target=ast.VarRef(line=token.line, name=index),
                          expr=low)
        cond = ast.BinaryOp(line=token.line, op="<=",
                            left=ast.VarRef(line=token.line, name=index),
                            right=high)
        update = ast.Assign(
            line=token.line,
            target=ast.VarRef(line=token.line, name=index),
            expr=ast.BinaryOp(line=token.line, op="+",
                              left=ast.VarRef(line=token.line,
                                              name=index),
                              right=ast.NumberLiteral(line=token.line,
                                                      value=1)))
        return ast.For(line=token.line, init=init, cond=cond,
                       update=update, body=body)

    def parse_wait(self):
        token = self.expect("wait")
        self.expect("for", "'for'")
        cycles = self.expect("number", "duration")
        self.expect("ns", "'ns'")
        self.expect(";", "';'")
        return ast.Wait(line=token.line, cycles=int(cycles.text))

    # ------------------------------------------------------------------
    # Expressions: VHDL precedence (or < xor < and < relational <
    # shift < additive < multiplicative < unary).
    # ------------------------------------------------------------------
    _LEVELS = [
        [("or", "|")],
        [("xor", "^")],
        [("and", "&")],
        [("=", "=="), ("/=", "!="), ("<", "<"), ("<=", "<="),
         (">", ">"), (">=", ">=")],
        [("sll", "<<"), ("srl", ">>")],
        [("+", "+"), ("-", "-")],
        [("*", "*"), ("/", "/"), ("mod", "%"), ("rem", "%")],
    ]

    def parse_expr(self, level=0):
        if level >= len(self._LEVELS):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        while True:
            matched = None
            for vhdl_op, c_op in self._LEVELS[level]:
                if self.current.kind == vhdl_op:
                    matched = (vhdl_op, c_op)
                    break
            if matched is None:
                return left
            token = self.current
            self.position += 1
            right = self.parse_expr(level + 1)
            left = ast.BinaryOp(line=token.line, op=matched[1],
                                left=left, right=right)

    def parse_unary(self):
        if self.current.kind == "-":
            token = self.accept("-")
            return ast.UnaryOp(line=token.line, op="-",
                               operand=self.parse_unary())
        if self.current.kind == "not":
            token = self.accept("not")
            return ast.UnaryOp(line=token.line, op="~",
                               operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self):
        if self.current.kind == "number":
            token = self.accept("number")
            return ast.NumberLiteral(line=token.line,
                                     value=int(token.text))
        if self.current.kind == "ident":
            token = self.accept("ident")
            return ast.VarRef(line=token.line, name=token.text)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")", "')'")
            return expr
        raise ParseError("expected an expression, found %r"
                         % (self.current.text or "<eof>"),
                         line=self.current.line)


def parse_vhdl(source):
    """Parse behavioural VHDL into the shared Program AST."""
    return _VhdlParser(_tokenize(source)).parse_design()


def compile_vhdl(source, name="design", inputs=None,
                 max_steps=5_000_000):
    """Full pipeline for VHDL input: parse, build, lower, profile.

    Mirrors :func:`repro.cdfg.builder.compile_source` with the VHDL
    parser in front; the resulting Program is indistinguishable
    downstream.
    """
    from repro.bsb.hierarchy import leaf_array
    from repro.cdfg.builder import (
        Program,
        build_cdfg,
        cdfg_to_bsb,
    )
    from repro.cdfg.lowering import lower_all_leaves
    from repro.profiling.interpreter import profile_cdfg

    program_ast = parse_vhdl(source)
    cdfg = build_cdfg(program_ast, name=name)
    lower_all_leaves(cdfg)
    run = profile_cdfg(cdfg, program_ast, inputs=inputs,
                       max_steps=max_steps)
    bsb_root = cdfg_to_bsb(cdfg)
    bsbs = [bsb for bsb in leaf_array(bsb_root) if len(bsb.dfg)]
    outputs = {name_: run.scalars.get(name_, 0)
               for name_ in program_ast.outputs}
    return Program(
        name=name,
        source=source,
        ast=program_ast,
        cdfg=cdfg,
        bsb_root=bsb_root,
        bsbs=bsbs,
        inputs=dict(run.inputs),
        final_values=dict(run.scalars),
        outputs=outputs,
    )
