"""Visualisation: Graphviz DOT export for DFGs, CDFGs and schedules.

The paper's figures are graphs (Figure 4's CDFG/BSB correspondence,
Figure 5's schedule intervals); these exporters let users render their
own applications the same way with ``dot -Tpng``.
"""

from repro.viz.dot import (
    dfg_to_dot,
    cdfg_to_dot,
    bsb_hierarchy_to_dot,
    schedule_to_dot,
)
from repro.viz.gantt import schedule_rows

__all__ = [
    "dfg_to_dot",
    "cdfg_to_dot",
    "bsb_hierarchy_to_dot",
    "schedule_to_dot",
    "schedule_rows",
]
