"""Neutral Gantt rows for schedule visualisation.

The HTML report renders schedules as inline SVG Gantt charts; this
module reduces a :class:`~repro.sched.schedule.Schedule` to plain
dictionaries first, so the renderer never touches live IR objects and
the rows are JSON-compatible (the HTTP gateway builds them on the
engine thread and ships them to handler threads).

Rows are keyed by dense creation-order index — never raw uids — so the
same stored schedule produces identical rows in every process.
"""


def schedule_rows(schedule):
    """Flatten a schedule into Gantt rows.

    Returns a list of dictionaries, one per DFG operation in creation
    order: ``{"index", "label", "type", "start", "finish", "latency"}``.
    Operations the schedule did not place carry ``start``/``finish`` of
    ``None`` (rendered dashed, mirroring :func:`viz.dot.schedule_to_dot`).
    """
    spans = schedule.as_dict()
    rows = []
    for index, op in enumerate(schedule.dfg.operations()):
        span = spans.get(op.uid)
        label = op.optype.value
        if op.label:
            label = "%s %s" % (label, op.label)
        try:
            latency = schedule.latency(op)
        except KeyError:
            latency = None  # the schedule never saw this operation
        rows.append({
            "index": index,
            "label": label,
            "type": op.optype.value,
            "start": None if span is None else span[0],
            "finish": None if span is None else span[1],
            "latency": latency,
        })
    return rows
