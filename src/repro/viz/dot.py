"""Graphviz DOT exporters.

All functions return DOT source text; no Graphviz installation is
required (or imported) — render externally with ``dot -Tpng``.

Node identifiers are **dense per-graph indices** (creation order), not
raw uids: uids are process-global counters, so two processes rendering
the same stored graph would otherwise disagree byte-for-byte.  Dense
ids make ``export`` output reproducible across cold and warm runs.
Dependency edges are deduplicated — an operation feeding two operands
of the same consumer is still one arrow — and emitted in sorted dense
order, so the text is deterministic.
"""

from repro.bsb.bsb import ControlBSB, LeafBSB
from repro.cdfg.nodes import (
    CdfgBranch,
    CdfgLeaf,
    CdfgLoop,
    CdfgSeq,
    CdfgWait,
)
from repro.ir.ops import OpType

#: Fill colours per operation category (pastel, print-friendly).
_OP_COLORS = {
    OpType.MUL: "#f4cccc",
    OpType.DIV: "#ea9999",
    OpType.MOD: "#ea9999",
    OpType.ADD: "#d9ead3",
    OpType.SUB: "#d9ead3",
    OpType.CONST: "#fff2cc",
    OpType.LOAD: "#cfe2f3",
    OpType.STORE: "#cfe2f3",
}
_DEFAULT_COLOR = "#eeeeee"


def _quote(text):
    return '"%s"' % str(text).replace('"', r'\"')


def _dependency_edges(dfg, index_of):
    """Sorted, deduplicated (producer, consumer) dense-index pairs."""
    edges = set()
    for op in dfg.operations():
        for successor in dfg.successors(op):
            edges.add((index_of[op.uid], index_of[successor.uid]))
    return sorted(edges)


def dfg_to_dot(dfg, name=None):
    """DOT source for a data-flow graph (one node per operation)."""
    lines = ["digraph %s {" % _quote(name or dfg.name or "dfg"),
             "  rankdir=TB;",
             "  node [shape=box, style=filled, fontname=Helvetica];"]
    operations = dfg.operations()
    index_of = {op.uid: index for index, op in enumerate(operations)}
    for index, op in enumerate(operations):
        label = op.optype.value
        if op.label:
            label += r"\n%s" % op.label
        color = _OP_COLORS.get(op.optype, _DEFAULT_COLOR)
        lines.append('  n%d [label=%s, fillcolor="%s"];'
                     % (index, _quote(label), color))
    for producer, consumer in _dependency_edges(dfg, index_of):
        lines.append("  n%d -> n%d;" % (producer, consumer))
    lines.append("}")
    return "\n".join(lines)


def cdfg_to_dot(root, name="cdfg"):
    """DOT source for a CDFG (control nodes + leaf basic blocks)."""
    lines = ["digraph %s {" % _quote(name),
             "  rankdir=TB;",
             "  node [fontname=Helvetica];"]
    ids = {}

    def node_id(node):
        if id(node) not in ids:
            ids[id(node)] = len(ids)
        return "c%d" % ids[id(node)]

    def emit(node):
        if isinstance(node, CdfgLeaf):
            label = "%s\\n%d stmts" % (node.name, len(node.statements))
            if node.cond is not None:
                label += "\\n[test]"
            if node.exec_count:
                label += "\\nx%d" % node.exec_count
            lines.append('  %s [shape=box, style=filled, '
                         'fillcolor="#d0e0f0", label=%s];'
                         % (node_id(node), _quote(label)))
            return
        shape = {"seq": "folder", "loop": "ellipse",
                 "branch": "diamond", "wait": "octagon"}.get(
                     node.kind, "box")
        lines.append('  %s [shape=%s, label=%s];'
                     % (node_id(node), shape, _quote(node.name)))
        children = []
        if isinstance(node, CdfgSeq):
            children = node.children
        elif isinstance(node, CdfgLoop):
            children = [node.test, node.body]
        elif isinstance(node, CdfgBranch):
            children = [node.test, node.then_body]
            if node.else_body is not None:
                children.append(node.else_body)
        elif isinstance(node, CdfgWait):
            children = []
        for child in children:
            emit(child)
            lines.append("  %s -> %s;" % (node_id(node), node_id(child)))

    emit(root)
    lines.append("}")
    return "\n".join(lines)


def bsb_hierarchy_to_dot(root, name="bsbs"):
    """DOT source for a BSB hierarchy (Figure 4, right-hand side)."""
    lines = ["digraph %s {" % _quote(name),
             "  rankdir=TB;",
             "  node [fontname=Helvetica];"]
    ids = {}

    def node_id(node):
        if id(node) not in ids:
            ids[id(node)] = len(ids)
        return "b%d" % ids[id(node)]

    def emit(node):
        if isinstance(node, LeafBSB):
            label = "%s\\n%d ops, x%d" % (node.name, len(node.dfg),
                                          node.profile_count)
            lines.append('  %s [shape=box, style=filled, '
                         'fillcolor="#d9ead3", label=%s];'
                         % (node_id(node), _quote(label)))
            return
        lines.append('  %s [shape=folder, label=%s];'
                     % (node_id(node), _quote("%s (%s)"
                                              % (node.name, node.kind))))
        if isinstance(node, ControlBSB):
            for child in node.children:
                emit(child)
                lines.append("  %s -> %s;"
                             % (node_id(node), node_id(child)))

    emit(root)
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule, name="schedule"):
    """DOT source for a schedule: operations clustered by control step.

    The Figure 5 view: one rank per control step, operations placed at
    their start step, dependency edges overlaid.  Operations the
    schedule did not place (no start step) are declared explicitly
    outside the clusters with a dashed border, so dependency edges
    never manufacture implicit unstyled Graphviz nodes.
    """
    dfg = schedule.dfg
    lines = ["digraph %s {" % _quote(name),
             "  rankdir=TB;",
             "  node [shape=box, style=filled, fontname=Helvetica];"]
    operations = dfg.operations()
    index_of = {op.uid: index for index, op in enumerate(operations)}
    placed = set()
    for step in range(1, schedule.length + 1):
        starters = schedule.operations_starting_at(step)
        if not starters:
            continue
        lines.append("  subgraph cluster_t%d {" % step)
        lines.append('    label="t=%d";' % step)
        for op in starters:
            placed.add(op.uid)
            color = _OP_COLORS.get(op.optype, _DEFAULT_COLOR)
            label = "%s (%d)" % (op.optype.value, schedule.latency(op))
            lines.append('    n%d [label=%s, fillcolor="%s"];'
                         % (index_of[op.uid], _quote(label), color))
        lines.append("  }")
    for op in operations:
        if op.uid in placed:
            continue
        color = _OP_COLORS.get(op.optype, _DEFAULT_COLOR)
        lines.append('  n%d [label=%s, fillcolor="%s", '
                     'style="filled,dashed"];'
                     % (index_of[op.uid],
                        _quote("%s (unplaced)" % op.optype.value), color))
    for producer, consumer in _dependency_edges(dfg, index_of):
        lines.append("  n%d -> n%d;" % (producer, consumer))
    lines.append("}")
    return "\n".join(lines)
