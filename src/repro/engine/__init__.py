"""Unified exploration engine over the allocate -> PACE -> evaluate chain.

Layers:

* :mod:`repro.engine.cache` — the leaf memo store (:class:`EvalCache`)
  every pipeline stage keys by its true inputs; safe to import from
  any stage module without cycles.
* :mod:`repro.engine.design_point` — immutable coordinates of one
  design-space point (:class:`DesignPoint`) and its outcome
  (:class:`PointResult`).
* :mod:`repro.engine.store` — the content-addressed persistent spill
  (:class:`CacheStore`): stage entries re-keyed by content fingerprints
  and shared across processes and machines through a ``cache_dir``.
* :mod:`repro.engine.session` — the :class:`Session` facade tying the
  stages together, with the ``explore``/``explore_grid`` batch API
  over ``multiprocessing``.

``session`` sits on top of the core/partition stages, which in turn
import only :mod:`repro.engine.cache`; the session module is therefore
loaded lazily here so stage modules can import this package safely.
"""

from repro.engine.cache import CacheStats, EvalCache
from repro.engine.design_point import (
    DesignPoint,
    PointError,
    PointResult,
    POLICY_NAMES,
    failed_point_result,
)

__all__ = [
    "CacheStats",
    "CacheStore",
    "DesignPoint",
    "EvalCache",
    "POLICY_NAMES",
    "PointError",
    "PointResult",
    "Session",
    "explore_grid",
    "failed_point_result",
]


def __getattr__(name):
    if name in ("Session", "explore_grid"):
        from repro.engine import session

        return getattr(session, name)
    if name == "CacheStore":
        from repro.engine.store import CacheStore

        return CacheStore
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))
