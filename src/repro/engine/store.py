"""Content-addressed persistent spill store for :class:`EvalCache`.

The in-memory :class:`~repro.engine.cache.EvalCache` keys its stage
dicts by process-local identities — BSB uids and ``id()`` pins — which
are exact within one process lifetime and meaningless outside it.  A
:class:`CacheStore` gives those entries a durable second life: every
volatile key is re-keyed by *content fingerprints* (the library's
signature, the BSB's structural DFG hash, the allocation counts, the
architecture knobs), the re-keyed stage dicts are spilled to pickle
shards under a ``--cache-dir``, and a fresh session hydrates them back
— translating stable keys onto whatever uids and object ids the new
process happens to hold — so sweeps survive restarts and a store
directory can be shared across machines.

Translation is schema-driven: :data:`STAGE_SCHEMAS` names, per persisted
stage, which key slots hold a BSB uid, an object pin, or plain data.
Stages whose keys or values embed process-local *operation* uids
(``intervals``, ``sched_inputs``) or live object graphs (``urgency``,
``tables``) are deliberately not persisted — they are cheap to rebuild
and would be wrong to ship.

A key is only translated when every fingerprint it references is known
(registered via :meth:`CacheStore.register`), so partially relevant
shards hydrate incrementally as applications are loaded.  Unreadable or
truncated shards — a crashed writer, a corrupted disk — are treated as
empty and rewritten on the next flush, never raised to the caller.

Beyond the stage memos, the store also persists **compiled programs**
(the ``programs`` shard): neutral, uid-free documents of a frontend
compile keyed by :func:`program_fingerprint` (source identity +
library/technology fingerprints).  A warm session hydrates the program
itself — uids re-assigned on load, structural signatures preserved —
so the one stage the cost shards cannot cover, the frontend compile,
goes warm too.  Fingerprints are *re-verified at flush time*: a
registered library or BSB mutated after registration raises
:class:`~repro.errors.StoreIntegrityError` instead of silently
persisting entries under its stale hash.

**Trust boundary**: shards are Python pickles, and unpickling executes
code the pickle names.  Only open a ``cache_dir`` you (and everyone
able to write to it) trust — sharing a store across machines means
sharing it across *mutually trusting* machines, exactly like sharing a
build cache.  Never point a session at a store directory of unknown
provenance.
"""

import contextlib
import hashlib
import itertools
import os
import pickle
import tempfile
import time

from repro.engine.cache import EvalCache
from repro.errors import StoreIntegrityError

#: Bumped whenever fingerprinting or shard layout changes shape; shards
#: written by other versions are ignored (and replaced on flush).
#: v2: evaluations grew an ``energy`` field and the fingerprints cover
#: the energy-model knobs (per-resource energy, per-gate-cycle and
#: per-processor-cycle energies).
STORE_VERSION = 2

#: Stage name -> key schema.  Slot codes: "uid" (one BSB uid), "uids"
#: (tuple of BSB uids), "pin" (id() of a pinned library/technology/
#: overhead object), "data" (plain self-describing values, passed
#: through).  "*data" matches any number of data slots (the schedule
#: memo has 3- and 4-slot key variants).
STAGE_SCHEMAS = {
    "ops": ("uid", "pin"),
    "capable": ("uid", "pin"),
    "sched": ("uid", "*data", "pin"),
    "sw_times": ("uid", "data"),
    "furo": ("uid", "pin"),
    "eca": ("uid", "pin", "pin"),
    "restrictions": ("uids", "pin"),
    "cost_plans": ("uids", "pin"),
    "costs": ("uid", "data", ("pin", "data", "data")),
    "allocs": ("uids", "data", "data", "data", "pin"),
    # The trailing pin_or_none is the overhead-model pin: only the
    # None case translates (overhead models are never registered), so
    # overhead-charged evaluations deliberately stay process-local.
    "evals": ("uids", "pin", "data", "data", "data", "data", "data",
              "data", "pin_or_none"),
}

#: Stages persisted through the generic schema translation, in hydrate
#: order.  "partitions" is handled separately: its volatile key embeds
#: the ids of memoised cost objects, so it can only hydrate after
#: "costs" (which is why "costs" comes first here).
PERSISTED_STAGES = tuple(STAGE_SCHEMAS) + ("partitions",)

#: The compiled-program shard: fingerprint -> neutral program document
#: (see :func:`repro.io.serialize.program_to_dict`).  Not an EvalCache
#: stage — programs hydrate into the Session's program memo, not the
#: cache — but it shares the shard machinery, versioning, LRU stamps
#: and corruption story of the stage shards.
PROGRAMS_STAGE = "programs"

#: Every shard kind this store version owns (inspection/compaction
#: walk these).
ALL_SHARD_KINDS = PERSISTED_STAGES + (PROGRAMS_STAGE,)

#: Most recent compact() events the history meta file retains.
COMPACTION_HISTORY_LIMIT = 32


# ----------------------------------------------------------------------
# Content fingerprints
# ----------------------------------------------------------------------
def _digest(payload):
    """Short stable hex digest of a canonical-repr'able structure."""
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:20]


def technology_fingerprint(technology):
    """Content hash of a :class:`~repro.hwlib.technology.Technology`."""
    return _digest(("technology", technology.name,
                    technology.register_area, technology.and_gate_area,
                    technology.or_gate_area, technology.inverter_area,
                    technology.energy_per_gate_cycle))


def library_fingerprint(library):
    """Content hash of a resource library: every signal the pipeline
    reads from it (resources, designated units, technology)."""
    resources = tuple(
        (resource.name, tuple(sorted(op.value for op in resource.optypes)),
         resource.area, resource.latency, resource.energy)
        for resource in library.resources())
    defaults = tuple(sorted(
        (optype.value, library.resource_for(optype).name)
        for optype in library.optypes_covered()))
    return _digest(("library", library.name, resources, defaults,
                    technology_fingerprint(library.technology)))


def bsb_fingerprint(bsb):
    """Structural content hash of one leaf BSB.

    Includes the BSB name — it flows into
    :attr:`~repro.partition.model.BSBCost.name` and from there into
    reported partitions — so two structurally identical BSBs with
    different names never alias one store entry.
    """
    return _digest(("bsb", bsb.name, bsb.profile_count,
                    tuple(sorted(bsb.reads)), tuple(sorted(bsb.writes)),
                    bsb.dfg.structural_signature()))


def program_fingerprint(name, source, inputs, library):
    """Content hash of a compiled program's identity.

    Covers everything the frontend compile consumes — the application
    name, the source text and the profiling inputs — plus the
    library/technology fingerprint of the session that will use the
    program, so a hydrated program is only ever paired with the stage
    entries of the library generation it was compiled alongside.
    """
    return _digest(("program", name, source,
                    tuple(sorted((inputs or {}).items())),
                    library_fingerprint(library)))


class CacheStore:
    """A content-addressed on-disk mirror of an :class:`EvalCache`.

    Usage (what :class:`~repro.engine.session.Session` does)::

        store = CacheStore(cache_dir)
        store.register(library=library)
        store.register(bsbs=program.bsbs)
        store.hydrate(cache)       # after each registration
        ...                        # run the pipeline
        store.flush(cache)         # spill new entries to disk

    The store never *computes* anything: it only translates between the
    volatile (uid/id) key space of the live cache and the stable
    (fingerprint) key space of the shards, in both directions.
    """

    def __init__(self, root):
        # The directory is created lazily on first write: a read-only
        # inspection of a mistyped path must not conjure an empty store
        # into existence (it would mask the typo for later runs too).
        self.root = os.fspath(root)
        # Volatile -> stable: uid/int-token to fingerprint.  The
        # strong references in _registered (and _uid_obj, for BSBs)
        # keep every fingerprinted object alive: a collected library
        # could hand its id() to a different-content successor, which
        # would then inherit the stale fingerprint and persist entries
        # under the wrong hash.  They also let flush() re-verify each
        # fingerprint — mutation after registration fails loudly
        # (StoreIntegrityError) instead of persisting stale keys.
        self._uid_fp = {}
        self._uid_obj = {}
        self._token_fp = {}
        self._registered = {}
        self._refingerprint = {}
        # Stable -> volatile: fingerprint to uid / live object.
        self._fp_uid = {}
        self._fp_obj = {}
        # Stage -> {stable key: value}, loaded from disk on first use;
        # entries leave as they hydrate so each installs exactly once.
        self._stable = {}
        # Stage -> cache entry count known to be disk-backed already.
        # Cache stage dicts are add-only memos, so an unchanged length
        # since the last sync means there is nothing new to spill and
        # the (comparatively expensive) shard rewrite can be skipped.
        self._clean_counts = {}
        # Stage -> volatile keys installed by hydrate (disk-born, so
        # export_delta never ships them back) and stage -> number of
        # cache items already examined by export_delta (add-only dicts
        # keep insertion order, so the unexamined entries are a suffix).
        self._hydrated_keys = {}
        self._export_counts = {}
        # Stage -> {stable key: value} absorbed from worker deltas;
        # written out (then dropped) by the next flush.
        self._absorbed = {}
        # Engine label -> [raw bytes, compressed bytes, frames] of
        # store deltas absorbed from remote engines since the last
        # flush; merged into a persisted meta file (the LRU-stamp
        # pattern) so ``cache info`` can report compression stats for
        # a store no service is currently holding open.
        self._delta_stats_pending = {}
        # Compiled programs: fingerprint -> neutral document.  New
        # (this-process) entries accumulate in _programs_new — add-only,
        # so clean/export counts work the same suffix trick the stage
        # dicts use; the disk view loads lazily and is dropped whenever
        # a flush changes it.
        self._programs_new = {}
        self._programs_disk = None
        self._programs_clean_count = 0
        self._programs_export_count = 0
        # Stage -> stable keys *used* (hydrated into a live cache)
        # since the last stamp write; the LRU side of compaction.  A
        # warm run that computes nothing still refreshes these, so
        # recently-replayed entries survive a compact.
        self._touched = {}
        # Stage -> stable keys a compact() evicted while they were
        # (possibly) still held by a live session cache.  flush()
        # re-encodes the *whole* cache per dirty stage, so without this
        # set a non-quiescent session would simply write every victim
        # straight back.  Evicted keys are skipped at flush-encode time;
        # a worker delta that recomputes one un-evicts it (that is new
        # work arriving, not a resurrection).
        self._evicted = {}
        # Monotonic timestamp of the last flush() attempt, for the
        # rate-limited maybe_flush() the exploration service uses.
        self._last_flush = None

    # ------------------------------------------------------------------
    # Registration: teach the store which objects are in play
    # ------------------------------------------------------------------
    def register(self, bsbs=None, library=None):
        """Register live objects; returns True when anything was new."""
        changed = False
        if library is not None:
            changed |= self._register_object(library,
                                             library_fingerprint(library),
                                             library_fingerprint)
            changed |= self._register_object(
                library.technology,
                technology_fingerprint(library.technology),
                technology_fingerprint)
        for bsb in (bsbs if bsbs is not None else ()):
            if bsb.uid not in self._uid_fp:
                fingerprint = bsb_fingerprint(bsb)
                self._uid_fp[bsb.uid] = fingerprint
                self._uid_obj[bsb.uid] = bsb
                self._fp_uid.setdefault(fingerprint, bsb.uid)
                changed = True
        return changed

    def _register_object(self, obj, fingerprint, refingerprint):
        token = id(obj)
        if token in self._token_fp:
            return False
        self._registered[token] = obj
        self._token_fp[token] = fingerprint
        self._refingerprint[token] = refingerprint
        # First registered object wins the decode direction; equal-by-
        # content duplicates keep their own encode mapping.
        self._fp_obj.setdefault(fingerprint, obj)
        return True

    def verify_registered(self):
        """Recompute every registered fingerprint; loud on drift.

        Libraries, technologies and BSBs are immutable-by-contract once
        registered: the store persists entries under their registration
        -time hashes, so an object mutated afterwards would ship data
        keyed by content it no longer has.  Every flush calls this
        first and raises :class:`StoreIntegrityError` — refusing to
        write — when any fingerprint no longer matches.
        """
        for token, obj in self._registered.items():
            expected = self._token_fp[token]
            actual = self._refingerprint[token](obj)
            if actual != expected:
                raise StoreIntegrityError(
                    "%s %r was mutated after being registered with the "
                    "persistent store (fingerprint %s -> %s); "
                    "registered objects are immutable-by-contract — "
                    "open a fresh session over a fresh copy instead of "
                    "mutating in place"
                    % (type(obj).__name__,
                       getattr(obj, "name", obj), expected, actual))
        for uid, bsb in self._uid_obj.items():
            expected = self._uid_fp[uid]
            actual = bsb_fingerprint(bsb)
            if actual != expected:
                raise StoreIntegrityError(
                    "BSB %r (uid %d) was mutated after being registered "
                    "with the persistent store (fingerprint %s -> %s); "
                    "registered BSB arrays are immutable-by-contract — "
                    "rebuild the array instead of mutating it in place"
                    % (bsb.name, uid, expected, actual))

    # ------------------------------------------------------------------
    # Shard I/O
    # ------------------------------------------------------------------
    def _shard_path(self, stage):
        return os.path.join(self.root,
                            "%s.v%d.pkl" % (stage, STORE_VERSION))

    def _load_shard(self, stage):
        """The on-disk stable dict of one stage; {} on any damage.

        Partial writes never happen through :meth:`_write_shard` (it
        replaces atomically), but a crashed writer using another tool,
        a truncated copy or plain disk corruption must not poison the
        session — a shard that fails to unpickle is simply empty.
        """
        try:
            with open(self._shard_path(stage), "rb") as handle:
                data = pickle.load(handle)
        except FileNotFoundError:
            return {}
        except Exception:
            return {}
        return data if isinstance(data, dict) else {}

    def _write_shard(self, stage, entries):
        """Atomically replace one stage shard (write-temp + rename)."""
        directory = self.root
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".%s." % stage, suffix=".tmp", dir=directory)
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(entries, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._shard_path(stage))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def _pending(self, stage):
        if stage not in self._stable:
            self._stable[stage] = self._load_shard(stage)
        return self._stable[stage]

    #: Fallback scheme only: how old an ``O_EXCL`` lock file must be
    #: before it counts as the debris of a crashed writer.  Generous on
    #: purpose — breaking a *live* writer's lock would cause the very
    #: lost-update the lock exists to prevent.
    _LOCK_TIMEOUT_SECONDS = 60.0

    @contextlib.contextmanager
    def _flush_lock(self):
        """Serialise flushers sharing one store directory.

        The flush is a read-merge-replace; without mutual exclusion two
        racing processes would each merge only their own entries into
        the same base and the second rename would drop the first
        writer's additions.  Where the platform has ``fcntl`` (every
        POSIX target) an advisory ``flock`` on a lock file is used: the
        kernel releases it when the holder dies, so there is no
        staleness to misjudge and a slow flush can never be evicted
        mid-write.  Elsewhere, an ``O_EXCL`` lock file with an
        mtime-age staleness break (stolen via an atomic rename, so at
        most one waiter ever breaks a given lock) stands in.
        """
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, ".flush.lock")
        try:
            import fcntl
        except ImportError:
            fcntl = None
        if fcntl is not None:
            descriptor = os.open(path, os.O_CREAT | os.O_WRONLY)
            try:
                fcntl.flock(descriptor, fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(descriptor, fcntl.LOCK_UN)
                os.close(descriptor)
            return
        token = ("%d.%d" % (os.getpid(), time.monotonic_ns())).encode()
        while True:
            try:
                descriptor = os.open(path,
                                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(descriptor, token)
                os.close(descriptor)
                break
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(path)
                except OSError:
                    continue  # holder just released it; retry at once
                if age > self._LOCK_TIMEOUT_SECONDS:
                    stolen = path + ".stale"
                    try:  # atomic steal: only one breaker can win this
                        os.replace(path, stolen)
                        os.unlink(stolen)
                    except OSError:
                        pass
                    continue
                time.sleep(0.02)
        try:
            yield
        finally:
            # Unlink only a lock this process still owns: if a waiter
            # judged us stale and stole the lock, the file now belongs
            # to a successor and deleting it would admit a third
            # flusher alongside them.
            try:
                with open(path, "rb") as handle:
                    owned = handle.read() == token
            except OSError:
                owned = False
            if owned:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Key translation
    # ------------------------------------------------------------------
    def _encode_slot(self, slot, part):
        if slot == "uid":
            fingerprint = self._uid_fp.get(part)
            return (False, None) if fingerprint is None \
                else (True, fingerprint)
        if slot == "uids":
            fps = tuple(self._uid_fp.get(uid) for uid in part)
            return (False, None) if None in fps else (True, fps)
        if slot == "pin":
            fingerprint = self._token_fp.get(part)
            return (False, None) if fingerprint is None \
                else (True, fingerprint)
        if slot == "pin_or_none":
            if part is None:
                return True, None
            fingerprint = self._token_fp.get(part)
            return (False, None) if fingerprint is None \
                else (True, fingerprint)
        if isinstance(slot, tuple):  # nested key (the costs arch key)
            return self._encode_key(slot, part)
        return True, part  # "data"

    def _decode_slot(self, slot, part, cache):
        if slot == "uid":
            uid = self._fp_uid.get(part)
            return (False, None) if uid is None else (True, uid)
        if slot == "uids":
            uids = tuple(self._fp_uid.get(fp) for fp in part)
            return (False, None) if None in uids else (True, uids)
        if slot in ("pin", "pin_or_none"):
            if slot == "pin_or_none" and part is None:
                return True, None
            obj = self._fp_obj.get(part)
            return (False, None) if obj is None \
                else (True, cache.pin(obj))
        if isinstance(slot, tuple):
            return self._decode_key(slot, part, cache)
        return True, part

    def _match_schema(self, schema, key):
        """Expand a "*data" wildcard against the key's actual arity."""
        if not isinstance(key, tuple):
            return None
        if "*data" in schema:
            star = schema.index("*data")
            fixed = len(schema) - 1
            if len(key) < fixed:
                return None
            spread = len(key) - fixed
            schema = (schema[:star] + ("data",) * spread
                      + schema[star + 1:])
        return schema if len(schema) == len(key) else None

    def _encode_key(self, schema, key):
        schema = self._match_schema(schema, key)
        if schema is None:
            return False, None
        out = []
        for slot, part in zip(schema, key):
            ok, encoded = self._encode_slot(slot, part)
            if not ok:
                return False, None
            out.append(encoded)
        return True, tuple(out)

    def _decode_key(self, schema, key, cache):
        schema = self._match_schema(schema, key)
        if schema is None:
            return False, None
        out = []
        for slot, part in zip(schema, key):
            ok, decoded = self._decode_slot(slot, part, cache)
            if not ok:
                return False, None
            out.append(decoded)
        return True, tuple(out)

    # ------------------------------------------------------------------
    # Hydrate: disk -> live cache
    # ------------------------------------------------------------------
    def hydrate(self, cache):
        """Install every now-translatable stable entry into ``cache``.

        Returns the number of entries installed.  Entries whose
        fingerprints are still unknown stay pending for a later call
        (after more registrations); entries the cache already holds are
        left alone — a live value always wins over a loaded one, so
        object identities established this run stay stable.
        """
        installed = 0
        cost_objects = None
        for stage, schema in STAGE_SCHEMAS.items():
            pending = self._pending(stage)
            if not pending:
                continue
            target = getattr(cache, stage)
            done = []
            grown = 0
            for stable_key, value in pending.items():
                ok, volatile_key = self._decode_key(schema, stable_key,
                                                    cache)
                if not ok:
                    continue
                if volatile_key not in target:
                    target[volatile_key] = value
                    grown += 1
                    self._hydrated_keys.setdefault(stage, set()).add(
                        volatile_key)
                    self._touched.setdefault(stage, set()).add(
                        stable_key)
                done.append(stable_key)
            for stable_key in done:
                del pending[stable_key]
            if grown:
                installed += grown
                self._clean_counts[stage] = \
                    self._clean_counts.get(stage, 0) + grown
        # Partitions: volatile key ((cost ids...), comm, available,
        # quanta); resolvable only for cost objects live in this cache.
        pending = self._pending("partitions")
        if pending:
            cost_objects = self._stable_cost_objects(cache)
            done = []
            for stable_key, value in pending.items():
                volatile_key = self._decode_partition_key(stable_key,
                                                          cost_objects)
                if volatile_key is None:
                    continue
                if volatile_key not in cache.partitions:
                    cache.partitions[volatile_key] = value
                    installed += 1
                    self._clean_counts["partitions"] = \
                        self._clean_counts.get("partitions", 0) + 1
                    self._hydrated_keys.setdefault("partitions",
                                                   set()).add(volatile_key)
                    self._touched.setdefault("partitions", set()).add(
                        stable_key)
                done.append(stable_key)
            for stable_key in done:
                del pending[stable_key]
        return installed

    def _stable_cost_objects(self, cache):
        """Mapping stable costs key -> live BSBCost object."""
        schema = STAGE_SCHEMAS["costs"]
        objects = {}
        for volatile_key, cost in cache.costs.items():
            ok, stable_key = self._encode_key(schema, volatile_key)
            if ok:
                objects[stable_key] = cost
        return objects

    def _decode_partition_key(self, stable_key, cost_objects):
        if not (isinstance(stable_key, tuple) and len(stable_key) == 4):
            return None
        cost_keys, comm, available, quanta = stable_key
        ids = []
        for cost_key in cost_keys:
            cost = cost_objects.get(cost_key)
            if cost is None:
                return None
            ids.append(id(cost))
        return ((tuple(ids), comm), available, quanta)

    # ------------------------------------------------------------------
    # Compiled programs: disk <-> session program memo
    # ------------------------------------------------------------------
    def _programs_on_disk(self):
        if self._programs_disk is None:
            self._programs_disk = self._load_shard(PROGRAMS_STAGE)
        return self._programs_disk

    def load_program(self, fingerprint):
        """The stored program document under ``fingerprint``, or None.

        Entries put (or absorbed) this process are preferred over the
        disk view; a hit refreshes the entry's LRU stamp at the next
        flush, so warm sessions keep their programs alive through
        compaction exactly like replayed stage entries.
        """
        payload = self._programs_new.get(fingerprint)
        if payload is None:
            payload = self._programs_on_disk().get(fingerprint)
        if payload is not None:
            self._touched.setdefault(PROGRAMS_STAGE, set()).add(
                fingerprint)
        return payload

    def put_program(self, fingerprint, payload):
        """Queue one compiled-program document for the next flush."""
        if fingerprint not in self._programs_new:
            self._programs_new[fingerprint] = payload

    # ------------------------------------------------------------------
    # Worker deltas: live cache -> parent process
    # ------------------------------------------------------------------
    def export_delta(self, cache):
        """Stable-encoded entries computed since the last export.

        Pool workers cannot be relied on to write the store themselves
        (their last flush would race the pool teardown, and per-chunk
        shard rewrites are quadratic), so instead each worker ships the
        stable form of its *new* entries back with its results and the
        parent merges them via :meth:`absorb_delta` — one writer, one
        final flush, nothing lost.  Hydrated (disk-born) entries are
        excluded, and the examined-suffix pointer ensures each export
        only *encodes and ships* the entries added since the last one
        (each export still walks the stage dict to reach the suffix).
        """
        delta = {}
        for stage, schema in STAGE_SCHEMAS.items():
            encoded = self._export_stage(
                stage, getattr(cache, stage),
                lambda key: self._encode_key(schema, key))
            if encoded:
                delta[stage] = encoded
        source = cache.partitions
        if len(source) > self._export_counts.get("partitions", 0):
            cost_ids = {id(cost): stable_key for stable_key, cost
                        in self._stable_cost_objects(cache).items()}

            def encode(volatile_key):
                stable_key = self._encode_partition_key(volatile_key,
                                                        cost_ids)
                return stable_key is not None, stable_key

            encoded = self._export_stage("partitions", source, encode)
            if encoded:
                delta["partitions"] = encoded
        # Programs a worker compiled travel back too: they are already
        # stable-keyed (fingerprints), so the suffix pointer is all the
        # bookkeeping the export needs.
        if len(self._programs_new) > self._programs_export_count:
            fresh = dict(itertools.islice(
                iter(self._programs_new.items()),
                self._programs_export_count, None))
            self._programs_export_count = len(self._programs_new)
            if fresh:
                delta[PROGRAMS_STAGE] = fresh
        return delta

    def _export_stage(self, stage, source, encode):
        examined = self._export_counts.get(stage, 0)
        total = len(source)
        if total <= examined:
            return {}
        hydrated = self._hydrated_keys.get(stage, ())
        encoded = {}
        # Add-only dicts keep insertion order, so the unexamined
        # entries are exactly the suffix past the pointer.
        suffix = itertools.islice(iter(source.items()), examined, None)
        for volatile_key, value in suffix:
            if volatile_key in hydrated:
                continue
            ok, stable_key = encode(volatile_key)
            if ok:
                encoded[stable_key] = value
        self._export_counts[stage] = total
        return encoded

    def absorb_delta(self, delta):
        """Queue a worker's exported entries for the next flush."""
        absorbed = 0
        for stage, entries in delta.items():
            if not entries:
                continue
            if stage == PROGRAMS_STAGE:
                for fingerprint, payload in entries.items():
                    if fingerprint not in self._programs_new:
                        self._programs_new[fingerprint] = payload
                        absorbed += 1
                continue
            if stage not in PERSISTED_STAGES:
                continue
            self._absorbed.setdefault(stage, {}).update(entries)
            absorbed += len(entries)
        return absorbed

    # ------------------------------------------------------------------
    # Flush: live cache -> disk
    # ------------------------------------------------------------------
    def flush(self, cache):
        """Spill every translatable cache entry, merging with the disk.

        Flushers sharing one ``--cache-dir`` (the parent plus the pool
        workers of a sweep or exhaustive search) are serialised by
        :meth:`_flush_lock`; each one re-reads a shard, merges its own
        new entries and atomically replaces the file, so no writer's
        additions are ever lost.  Returns the number of entries
        written overall.
        """
        if not isinstance(cache, EvalCache):
            raise TypeError("flush() expects an EvalCache, got %r"
                            % (cache,))
        self._last_flush = time.monotonic()
        if not self._needs_flush(cache):
            # Nothing to spill, but a warm run still refreshed entry
            # stamps — persist them or the LRU would see replayed
            # entries as stale and compact them away.  (No fingerprint
            # re-verification here: stamps reference keys an earlier,
            # verified flush already wrote.)
            if self._touched:
                with self._flush_lock():
                    self._stamp_entries({})
            return 0
        # The ROADMAP mutation nuance, closed: fingerprints are only
        # trustworthy if the fingerprinted objects still have their
        # registration-time content.  Verify before writing entries —
        # a mutated library/BSB must fail loudly here, not persist
        # entries under a hash that no longer describes them.  Gated
        # behind _needs_flush so the service's rate-limited no-op
        # flushes skip the recomputation.
        self.verify_registered()
        with self._flush_lock():
            return self._flush_locked(cache)

    def maybe_flush(self, cache, min_interval_seconds=5.0):
        """Flush unless one already ran in the last interval.

        The exploration service's single-writer loop calls this after
        every completed point: durability work happens on a time
        budget (one shard rewrite per interval at most) instead of
        once per point, while an idle service still ends up flushed —
        the loop forces a plain :meth:`flush` when a job drains.
        Returns the entries written (0 when rate-limited or clean).
        """
        if self._last_flush is not None and \
                time.monotonic() - self._last_flush < min_interval_seconds:
            return 0
        return self.flush(cache)

    def _needs_flush(self, cache):
        """True when a stage grew or a worker delta awaits writing."""
        if self._delta_stats_pending:
            return True
        if any(self._absorbed.get(stage)
               for stage in PERSISTED_STAGES):
            return True
        if len(self._programs_new) != self._programs_clean_count:
            return True
        return any(
            len(getattr(cache, stage)) != self._clean_counts.get(stage, 0)
            for stage in PERSISTED_STAGES)

    def _flush_locked(self, cache):
        written = 0
        fresh = {}  # stage -> stable keys this flush (re)wrote
        for stage, schema in STAGE_SCHEMAS.items():
            source = getattr(cache, stage)
            absorbed = self._absorbed.get(stage)
            if not absorbed and \
                    len(source) == self._clean_counts.get(stage, 0):
                continue  # add-only memo, unchanged since last sync
            merged = self._load_shard(stage)
            merged.update(self._stable.get(stage, {}))  # still-pending
            live = set()
            evicted = self._evicted.get(stage)
            if absorbed:
                merged.update(absorbed)
                live.update(absorbed)
                if evicted:
                    evicted.difference_update(absorbed)
            for volatile_key, value in source.items():
                ok, stable_key = self._encode_key(schema, volatile_key)
                if ok and not (evicted and stable_key in evicted):
                    merged[stable_key] = value
                    live.add(stable_key)
            if merged:
                self._write_shard(stage, merged)
                written += len(merged)
            if live:
                fresh[stage] = live
            self._absorbed.pop(stage, None)
            self._clean_counts[stage] = len(source)
        absorbed = self._absorbed.get("partitions")
        if absorbed or len(cache.partitions) != \
                self._clean_counts.get("partitions", 0):
            cost_ids = {id(cost): stable_key for stable_key, cost
                        in self._stable_cost_objects(cache).items()}
            merged = self._load_shard("partitions")
            merged.update(self._stable.get("partitions", {}))
            live = set()
            evicted = self._evicted.get("partitions")
            if absorbed:
                merged.update(absorbed)
                live.update(absorbed)
                if evicted:
                    evicted.difference_update(absorbed)
            for volatile_key, value in cache.partitions.items():
                stable_key = self._encode_partition_key(volatile_key,
                                                        cost_ids)
                if stable_key is not None and \
                        not (evicted and stable_key in evicted):
                    merged[stable_key] = value
                    live.add(stable_key)
            if merged:
                self._write_shard("partitions", merged)
                written += len(merged)
            if live:
                fresh["partitions"] = live
            self._absorbed.pop("partitions", None)
            self._clean_counts["partitions"] = len(cache.partitions)
        if len(self._programs_new) != self._programs_clean_count:
            merged = self._load_shard(PROGRAMS_STAGE)
            evicted = self._evicted.get(PROGRAMS_STAGE)
            if evicted:
                # Filter without mutating _programs_new: its suffix
                # counters depend on the dict's length and order.
                alive = {key: value for key, value
                         in self._programs_new.items()
                         if key not in evicted}
            else:
                alive = self._programs_new
            merged.update(alive)
            self._write_shard(PROGRAMS_STAGE, merged)
            written += len(merged)
            fresh[PROGRAMS_STAGE] = set(alive)
            self._programs_clean_count = len(self._programs_new)
            self._programs_disk = None  # merged view changed on disk
        if self._delta_stats_pending:
            self._write_delta_stats_locked()
        self._stamp_entries(fresh)
        return written

    def _encode_partition_key(self, volatile_key, cost_ids):
        if not (isinstance(volatile_key, tuple)
                and len(volatile_key) == 3
                and isinstance(volatile_key[0], tuple)
                and len(volatile_key[0]) == 2):
            return None
        (ids, comm), available, quanta = volatile_key
        cost_keys = []
        for token in ids:
            stable_key = cost_ids.get(token)
            if stable_key is None:
                return None
            cost_keys.append(stable_key)
        return (tuple(cost_keys), comm, available, quanta)

    # ------------------------------------------------------------------
    # Store-delta compression stats (the fabric's absorb accounting)
    # ------------------------------------------------------------------
    def _delta_stats_path(self):
        return os.path.join(self.root, "deltas.v%d.meta" % STORE_VERSION)

    def record_delta_stats(self, engine, raw_bytes, compressed_bytes,
                           frames=1):
        """Account one absorbed store-delta frame against ``engine``.

        ``raw_bytes`` is the decompressed pickle payload, the bytes the
        coordinator would have received without wire compression;
        ``compressed_bytes`` is what actually travelled.  Buffered in
        memory and merged into the on-disk meta file at the next flush.
        """
        entry = self._delta_stats_pending.setdefault(
            str(engine), [0, 0, 0])
        entry[0] += int(raw_bytes)
        entry[1] += int(compressed_bytes)
        entry[2] += int(frames)

    def _load_delta_stats(self):
        """{engine: [raw, compressed, frames]} from disk; {} on damage."""
        try:
            with open(self._delta_stats_path(), "rb") as handle:
                data = pickle.load(handle)
        except Exception:
            return {}
        return data if isinstance(data, dict) else {}

    def _write_delta_stats_locked(self):
        """Merge pending stats into the meta file; caller holds the
        flush lock (read-merge-replace, like the LRU stamps)."""
        merged = self._load_delta_stats()
        for engine, (raw, compressed, frames) in \
                self._delta_stats_pending.items():
            entry = merged.setdefault(engine, [0, 0, 0])
            entry[0] += raw
            entry[1] += compressed
            entry[2] += frames
        self._delta_stats_pending = {}
        os.makedirs(self.root, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".deltas.", suffix=".tmp", dir=self.root)
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(merged, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._delta_stats_path())
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def delta_stats(self):
        """Per-engine store-delta compression stats, disk plus pending.

        Returns ``{engine: {"raw_bytes", "compressed_bytes",
        "frames"}}`` — empty for a store no fabric coordinator ever
        absorbed remote deltas into.
        """
        merged = {engine: list(entry) for engine, entry
                  in self._load_delta_stats().items()}
        for engine, (raw, compressed, frames) in \
                self._delta_stats_pending.items():
            entry = merged.setdefault(engine, [0, 0, 0])
            entry[0] += raw
            entry[1] += compressed
            entry[2] += frames
        return {engine: {"raw_bytes": entry[0],
                         "compressed_bytes": entry[1],
                         "frames": entry[2]}
                for engine, entry in sorted(merged.items())}

    # ------------------------------------------------------------------
    # Compaction history: what each compact() pass kept and dropped
    # ------------------------------------------------------------------
    def _compactions_path(self):
        return os.path.join(self.root,
                            "compactions.v%d.meta" % STORE_VERSION)

    def _record_compaction_locked(self, report):
        """Append one compact() report to the bounded history file.

        The caller holds the flush lock.  Events carry the compact
        report plus a wall-clock stamp; the file keeps the most recent
        :data:`COMPACTION_HISTORY_LIMIT` events (oldest dropped), so
        the history can never outgrow the store it describes.
        """
        history = self.compaction_history()
        event = dict(report)
        event["time"] = time.time()
        history.append(event)
        history = history[-COMPACTION_HISTORY_LIMIT:]
        os.makedirs(self.root, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".compactions.", suffix=".tmp", dir=self.root)
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(history, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._compactions_path())
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def compaction_history(self):
        """Recent compact() events, oldest first; [] on damage/absence.

        Each event is the compact report (``kept``/``dropped``/
        ``bytes_before``/``bytes_after``/``stages``) plus ``time``, the
        unix stamp of the pass — the raw material of ``cache info`` and
        the HTML report's store-analytics section.
        """
        try:
            with open(self._compactions_path(), "rb") as handle:
                data = pickle.load(handle)
        except Exception:
            return []
        return list(data) if isinstance(data, list) else []

    # ------------------------------------------------------------------
    # LRU stamps: when was each shard entry last written or replayed
    # ------------------------------------------------------------------
    def _lru_path(self):
        return os.path.join(self.root, "lru.v%d.meta" % STORE_VERSION)

    def _load_lru(self):
        """{stage: {stable key: last-used unix time}}; {} on damage."""
        try:
            with open(self._lru_path(), "rb") as handle:
                data = pickle.load(handle)
        except Exception:
            return {}
        return data if isinstance(data, dict) else {}

    def _write_lru(self, stamps):
        """Atomically replace the stamp file (write-temp + rename)."""
        os.makedirs(self.root, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".lru.", suffix=".tmp", dir=self.root)
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(stamps, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._lru_path())
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def _stamp_entries(self, fresh_by_stage):
        """Refresh last-used stamps; the caller holds the flush lock.

        ``fresh_by_stage`` holds the stable keys a flush just wrote
        (live cache entries *are* in use); the buffered ``_touched``
        keys — entries a hydrate replayed into a cache — join them.
        Untouched disk entries keep their old stamps, which is what
        makes :meth:`compact` an LRU.
        """
        now = time.time()
        stamps = None
        for source in (self._touched, fresh_by_stage):
            for stage, keys in source.items():
                if not keys:
                    continue
                if stamps is None:
                    stamps = self._load_lru()
                bucket = stamps.setdefault(stage, {})
                for stable_key in keys:
                    bucket[stable_key] = now
        self._touched = {}
        if stamps is not None:
            self._write_lru(stamps)

    # ------------------------------------------------------------------
    # Inspection / maintenance (the CLI's ``cache`` subcommand)
    # ------------------------------------------------------------------
    def compact(self, max_bytes=None, max_age_seconds=None):
        """Drop expired / least-recently-used entries from the shards.

        ``max_age_seconds`` evicts every entry whose last-used stamp is
        older than that; ``max_bytes`` then evicts oldest-first until
        the store's estimated payload fits the budget (per-entry
        pickled sizes — the shard files land at or slightly under the
        estimate, since pickling a whole dict shares structure).
        Entries with no stamp (stores written before LRU stamping)
        count as oldest, so they are the first victims.

        Serialised against concurrent flushers by the same lock the
        flush path takes, so compaction racing a flush resolves to one
        of the two orders — never a corrupt shard.  Intended for
        quiescent stores (the CLI's ``cache compact``): a *live*
        session still holding dropped entries in memory will write
        them back on its next flush.

        Returns a report dict: ``kept``/``dropped`` entry counts,
        ``bytes_before``/``bytes_after`` (actual shard file sizes) and
        per-stage ``stages: {stage: (kept, dropped)}``.
        """
        if max_bytes is None and max_age_seconds is None:
            from repro.errors import ReproError

            raise ReproError("compact() needs max_bytes and/or "
                             "max_age_seconds")
        empty = {"kept": 0, "dropped": 0, "bytes_before": 0,
                 "bytes_after": 0, "stages": {}}
        if not os.path.isdir(self.root):
            return empty  # never conjure a store out of a typo'd path
        with self._flush_lock():
            return self._compact_locked(max_bytes, max_age_seconds)

    def _compact_locked(self, max_bytes, max_age_seconds):
        now = time.time()
        stamps = self._load_lru()
        shards = {}
        bytes_before = 0
        for stage in ALL_SHARD_KINDS:
            try:
                bytes_before += os.path.getsize(self._shard_path(stage))
            except OSError:
                continue
            shards[stage] = self._load_shard(stage)
        # One flat (stamp, size, stage, key) list, oldest first.
        entries = []
        for stage, data in shards.items():
            bucket = stamps.get(stage, {})
            for stable_key, value in data.items():
                size = (len(pickle.dumps(stable_key,
                                         pickle.HIGHEST_PROTOCOL))
                        + len(pickle.dumps(value,
                                           pickle.HIGHEST_PROTOCOL)))
                entries.append((bucket.get(stable_key, 0.0), size,
                                stage, stable_key))
        victims = set()
        if max_age_seconds is not None:
            horizon = now - max_age_seconds
            victims.update((stage, key)
                           for stamp, _, stage, key in entries
                           if stamp <= horizon)
        if max_bytes is not None:
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            total = sum(size for _, size, stage, key in entries
                        if (stage, key) not in victims)
            for stamp, size, stage, key in entries:
                if total <= max_bytes:
                    break
                if (stage, key) in victims:
                    continue
                victims.add((stage, key))
                total -= size
        stages_report = {}
        for stage, data in shards.items():
            doomed = [key for key in data if (stage, key) in victims]
            stages_report[stage] = (len(data) - len(doomed),
                                    len(doomed))
            if not doomed:
                continue
            # Remember the victims: a live session may still hold their
            # values and would otherwise re-persist them wholesale on
            # its next flush, silently undoing the compact.
            self._evicted.setdefault(stage, set()).update(doomed)
            for key in doomed:
                del data[key]
            if data:
                self._write_shard(stage, data)
            else:
                try:
                    os.unlink(self._shard_path(stage))
                except OSError:
                    pass
            # Pre-compact in-memory copies must not resurrect victims.
            self._stable.pop(stage, None)
            if stage == PROGRAMS_STAGE:
                self._programs_disk = None
        pruned = {}
        for stage, data in shards.items():
            bucket = stamps.get(stage, {})
            kept = {key: bucket[key] for key in data if key in bucket}
            if kept:
                pruned[stage] = kept
        if victims or pruned != stamps:
            self._write_lru(pruned)
        bytes_after = 0
        for stage in shards:
            try:
                bytes_after += os.path.getsize(self._shard_path(stage))
            except OSError:
                pass
        report = {
            "kept": sum(kept for kept, _ in stages_report.values()),
            "dropped": len(victims),
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "stages": stages_report,
        }
        self._record_compaction_locked(report)
        return report

    def info(self):
        """Per-stage (entries, bytes) of the on-disk store."""
        report = {}
        for stage in ALL_SHARD_KINDS:
            path = self._shard_path(stage)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            report[stage] = (len(self._load_shard(stage)), size)
        return report

    def clear(self):
        """Delete every shard of this store version; returns count."""
        removed = 0
        for stage in ALL_SHARD_KINDS:
            try:
                os.unlink(self._shard_path(stage))
                removed += 1
            except OSError:
                pass
        try:
            os.unlink(self._lru_path())  # stamps of nothing
        except OSError:
            pass
        try:
            os.unlink(self._delta_stats_path())  # stats of nothing
        except OSError:
            pass
        try:
            os.unlink(self._compactions_path())  # history of nothing
        except OSError:
            pass
        self._delta_stats_pending = {}
        self._stable.clear()
        self._clean_counts.clear()
        self._absorbed.clear()
        self._touched.clear()
        self._evicted.clear()  # a cleared store has nothing to protect
        self._programs_disk = None
        self._programs_clean_count = 0  # next flush re-persists them
        return removed

    def __repr__(self):
        # Counts shard *files* only — info() unpickles every shard,
        # which is far too much work (and pickle execution) for a repr.
        suffix = ".v%d.pkl" % STORE_VERSION
        try:
            shards = sum(1 for name in os.listdir(self.root)
                         if name.endswith(suffix))
        except OSError:
            shards = 0
        return "CacheStore(root=%r, shards=%d)" % (self.root, shards)
