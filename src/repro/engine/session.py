"""The exploration engine: one cached pipeline for every driver.

A :class:`Session` owns the memo store (:class:`~repro.engine.cache
.EvalCache`) that every stage of the compile -> allocate -> PACE ->
evaluate chain shares, plus program and Algorithm 1 memos of its own.
All experiment drivers — Table 1, the Figure 3 sweep, the design
iteration, the exhaustive search, the multi-ASIC co-design and the CLI
``sweep`` — run through a session, so work done by one stage (a BSB's
list schedule, a cost array, a PACE sequence table) is never redone by
another.

The batch API fans a list of immutable
:class:`~repro.engine.design_point.DesignPoint` instances out over
``multiprocessing`` workers; each worker holds one long-lived session
of its own, so the cache is shared across all points a worker
evaluates::

    session = Session()
    results = session.explore_grid(apps=["hal", "man"],
                                   areas=[4000.0, 8000.0, None],
                                   policies=[None, "balanced"],
                                   workers=4)
"""

import multiprocessing

from repro.apps.registry import application_spec, load_application
from repro.core.allocator import allocate, cached_restrictions
from repro.core.rmap import RMap
from repro.core.module_selection import (
    BalancedPolicy,
    CheapestPolicy,
    FastestPolicy,
    allocate_with_selection,
)
from repro.engine.cache import EvalCache
from repro.engine.design_point import (
    DesignPoint,
    PointResult,
    failed_point_result,
)
from repro.errors import ReproError
from repro.hwlib.library import default_library
from repro.partition.evaluate import evaluate_allocation
from repro.partition.model import TargetArchitecture

_POLICIES = {
    "fastest": FastestPolicy,
    "cheapest": CheapestPolicy,
    "balanced": BalancedPolicy,
}


class Session:
    """Session-scoped design-space exploration over a fixed library.

    Attributes:
        library: The resource library every stage runs against.
        cache: The shared :class:`~repro.engine.cache.EvalCache`.
        store: Optional :class:`~repro.engine.store.CacheStore` backing
            the cache with a content-addressed on-disk spill
            (``cache_dir``); ``None`` keeps the session process-local.
    """

    def __init__(self, library=None, cache_dir=None):
        self.library = library if library is not None else default_library()
        self.cache = EvalCache()
        self._programs = {}
        self.store = None
        if cache_dir is not None:
            from repro.engine.store import CacheStore

            self.store = CacheStore(cache_dir)
            self.store.register(library=self.library)
            self.store.hydrate(self.cache)

    def _adopt(self, bsbs, library=None):
        """Register a BSB array with the store and hydrate its entries.

        Called by every entry point that accepts BSBs, *before* any
        cache lookup, so persisted entries are already translated onto
        this process's uids when the lookup happens.
        """
        if self.store is not None:
            changed = self.store.register(bsbs=bsbs, library=library)
            if changed:
                self.store.hydrate(self.cache)
        return bsbs

    def save_store(self):
        """Spill the cache to the persistent store; entries written.

        A no-op (returning 0) for sessions without a ``cache_dir``.
        """
        if self.store is None:
            return 0
        return self.store.flush(self.cache)

    # ------------------------------------------------------------------
    # Stage accessors (each memoised by its true inputs)
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Hit/miss accounting across every cached stage."""
        return self.cache.stats

    def program(self, app):
        """The compiled, profiled benchmark program (compiled once).

        Resolution order: the in-process memo, then the persistent
        program store (a hydrated program gets fresh uids but identical
        structural signatures, so the stage shards key onto it
        unchanged), then a cold frontend compile — whose result is
        queued for the store, making the *next* process warm.  The
        ``compile`` stage counters are the scoreboard: a miss is an
        actual frontend compile, a hit is a compile the store absorbed.
        """
        program = self._programs.get(app)
        if program is not None:
            self.stats.hit("program")
            return program
        self.stats.miss("program")
        fingerprint = None
        if self.store is not None:
            fingerprint = self._program_fingerprint(app)
            payload = self.store.load_program(fingerprint)
            if payload is not None:
                program = self._hydrate_program(payload)
        if program is not None:
            self.stats.hit("compile")
        else:
            self.stats.miss("compile")
            program = load_application(app)
            if fingerprint is not None:
                from repro.io.serialize import program_to_dict

                self.store.put_program(fingerprint,
                                       program_to_dict(program))
        self._programs[app] = program
        self._adopt(program.bsbs)
        return program

    def hottest_bsb(self, app):
        """The BSB carrying the most software time (viz/report focus).

        Resolved through :meth:`program`, so a warm store answers this
        without a frontend compile.  Ties break to the earliest BSB in
        program order (``max`` keeps the first maximum).
        """
        from repro.swmodel.estimator import bsb_software_time
        from repro.swmodel.processor import default_processor

        processor = default_processor()
        return max(self.program(app).bsbs,
                   key=lambda bsb: bsb_software_time(bsb, processor))

    def _program_fingerprint(self, app):
        """The store key of one application under this library."""
        return self.program_affinity_key(app)

    def program_affinity_key(self, app):
        """A stable identity for one app's compiled program.

        This is the persistent-store program fingerprint (source +
        profiling inputs + library), computed without touching any
        store — so it works for store-less sessions and is identical
        across processes and restarts.  The distributed fabric routes
        design points by this key, so equal programs land on the
        engine that has already compiled and cached them.  Raises for
        unknown apps (the service falls back to the bare app name).
        """
        from repro.apps.registry import application_source
        from repro.engine.store import program_fingerprint

        source, inputs = application_source(app)
        return program_fingerprint(app, source, inputs, self.library)

    @staticmethod
    def _hydrate_program(payload):
        """Rebuild a stored program; None when the entry is damaged.

        A corrupt document degrades to a cold compile — exactly the
        graceful story corrupt stage shards already have — never to an
        error surfaced at the caller.
        """
        from repro.io.serialize import program_from_dict

        try:
            return program_from_dict(payload)
        except ReproError:
            return None

    def architecture(self, point):
        """The :class:`TargetArchitecture` a :class:`DesignPoint` names."""
        area = point.area
        if area is None:
            area = application_spec(point.app).total_area
        return TargetArchitecture(
            library=self.library, total_area=area,
            comm_cycles_per_word=point.comm_cycles_per_word)

    def restrictions(self, bsbs, library=None):
        """Memoised ASAP-parallelism restrictions of a BSB array."""
        library = library if library is not None else self.library
        self._adopt(bsbs, library=library)
        return cached_restrictions(bsbs, library, cache=self.cache)

    def allocate(self, bsbs, area, policy=None, restrictions=None,
                 library=None):
        """Memoised Algorithm 1 (or module-selection variant) run.

        ``policy`` is a policy *name* (see
        :data:`~repro.engine.design_point.POLICY_NAMES`) or ``None``
        for the paper's designated-unit algorithm.
        """
        library = library if library is not None else self.library
        self._adopt(bsbs, library=library)
        if restrictions is not None:
            if policy is not None:
                # Module selection caps per *type*, not per resource —
                # an RMap of per-resource caps does not apply there.
                raise ReproError("restrictions are only supported for "
                                 "the designated-unit allocator "
                                 "(policy=None)")
            restrictions = RMap._coerce(restrictions)
        # Snapshot the restrictions into the key: a dict is unhashable
        # and an RMap could be mutated by the caller after the call.
        restrictions_key = (None if restrictions is None
                            else tuple(restrictions.items()))
        key = (tuple(bsb.uid for bsb in bsbs), float(area), policy,
               restrictions_key, self.cache.pin(library))
        result = self.cache.allocs.get(key)
        if result is not None:
            self.stats.hit("alloc")
            return result
        self.stats.miss("alloc")
        if policy is None:
            result = allocate(bsbs, library, area=area,
                              restrictions=restrictions, cache=self.cache)
        else:
            try:
                policy_class = _POLICIES[policy]
            except KeyError:
                raise ReproError(
                    "unknown selection policy %r (expected one of %s)"
                    % (policy, ", ".join(sorted(_POLICIES)))) from None
            result = allocate_with_selection(
                bsbs, library, area=area, policy=policy_class(),
                cache=self.cache)
        self.cache.allocs[key] = result
        return result

    def evaluate(self, bsbs, allocation, architecture, area_quanta=400,
                 overhead_model=None):
        """Memoised PACE evaluation of one allocation."""
        self._adopt(bsbs, library=architecture.library)
        return evaluate_allocation(bsbs, allocation, architecture,
                                   area_quanta=area_quanta,
                                   cache=self.cache,
                                   overhead_model=overhead_model)

    def iterate(self, bsbs, allocation, architecture, max_steps=None,
                area_quanta=400, overhead_model=None, objective=None):
        """The reduce-only design iteration, on this session's cache."""
        from repro.core.iteration import design_iteration

        self._adopt(bsbs, library=architecture.library)
        return design_iteration(bsbs, allocation, architecture,
                                max_steps=max_steps,
                                area_quanta=area_quanta, session=self,
                                overhead_model=overhead_model,
                                objective=objective)

    def exhaustive(self, bsbs, architecture, restrictions=None,
                   max_evaluations=None, area_quanta=200,
                   keep_history=False, workers=1, search="brute",
                   objective="speedup"):
        """The exhaustive allocation search, on this session's cache.

        ``workers`` > 1 fans the candidate stream out over processes
        (see :func:`~repro.core.exhaustive.exhaustive_best_allocation`);
        the result is bit-identical to the serial search and the
        per-worker cache accounting is merged into ``self.stats``.
        ``search="pruned"`` walks the space branch-and-bound style —
        same winner, far fewer evaluations on prunable spaces.
        ``objective`` selects the tournament ranking candidates (see
        :mod:`repro.core.objective`); the default reproduces the
        paper's speed-up contract bit for bit.
        """
        from repro.core.exhaustive import exhaustive_best_allocation

        self._adopt(bsbs, library=architecture.library)
        return exhaustive_best_allocation(
            bsbs, architecture, restrictions=restrictions,
            max_evaluations=max_evaluations, area_quanta=area_quanta,
            keep_history=keep_history, session=self, workers=workers,
            search=search, objective=objective)

    def evaluation_scan(self, bsbs, architecture, area_quanta=400,
                        remember=False):
        """A neighbour-aware :class:`EvaluationScan` on this cache.

        The scan's delta path makes sequences of similar allocations
        (searches, sweeps) cheap: cost groups whose relevant counts did
        not change between consecutive allocations are carried over
        without a signature recomputation.
        """
        from repro.partition.evaluate import EvaluationScan

        self._adopt(bsbs, library=architecture.library)
        return EvaluationScan(bsbs, architecture,
                              area_quanta=area_quanta,
                              cache=self.cache, remember=remember)

    # ------------------------------------------------------------------
    # The batch API
    # ------------------------------------------------------------------
    def evaluate_point(self, point):
        """Run the full pipeline for one :class:`DesignPoint`."""
        program = self.program(point.app)
        architecture = self.architecture(point)
        result = self.allocate(program.bsbs, architecture.total_area,
                               policy=point.policy)
        evaluation = self.evaluate(program.bsbs, result.allocation,
                                   architecture,
                                   area_quanta=point.quanta)
        return PointResult(
            point=point,
            allocation=evaluation.allocation,
            speedup=evaluation.speedup,
            datapath_area=evaluation.datapath_area,
            energy=evaluation.energy,
            hw_names=tuple(evaluation.partition.hw_names),
            evaluation=evaluation,
        )

    def evaluate_point_safe(self, point):
        """:meth:`evaluate_point` with the exception captured.

        Returns a failed :class:`PointResult` (``error`` set,
        ``allocation`` ``None``) instead of raising, so batch callers —
        and the long-lived exploration service — can keep going when
        one point names an unknown app or an infeasible configuration.
        ``KeyboardInterrupt``/``SystemExit`` still propagate.
        """
        try:
            return self.evaluate_point(point)
        except Exception as exc:
            return failed_point_result(point, exc)

    def explore(self, points, workers=1, on_error="raise",
                on_result=None):
        """Evaluate many design points, optionally across processes.

        Results come back in input order.  With ``workers`` > 1 the
        points fan out over a ``multiprocessing`` pool; every worker
        process holds one session whose cache is shared across all the
        points that worker receives (per-process caches — the workers
        do not share memory with each other or with this session,
        although a session opened with ``cache_dir`` shares its
        persistent store with the workers).  Each worker ships its
        hit/miss accounting back with its results, and the merged
        counters land in ``self.stats`` — parallel sweeps report the
        same real numbers a serial run would.

        Failure contract (identical for the serial and parallel
        paths):

        * ``on_error="capture"`` — a point that raises yields a
          :class:`PointResult` with ``error`` set; every other point
          still completes and its store entries persist.
        * ``on_error="raise"`` (default) — completed work is flushed to
          the store *first*, then the failure surfaces: the serial
          path re-raises the original exception, the parallel path
          raises :class:`ReproError` naming the first failed point (the
          original exception died in a worker process).

        ``on_result``, when given, is called with each
        :class:`PointResult` as it completes — input order serially,
        chunk-completion order in parallel — including captured
        failures.  A ``KeyboardInterrupt`` mid-sweep terminates the
        pool cleanly and still flushes everything the parent already
        absorbed.
        """
        if on_error not in ("raise", "capture"):
            raise ReproError("on_error must be 'raise' or 'capture', "
                             "got %r" % (on_error,))
        points = [self._coerce_point(point) for point in points]
        if workers <= 1 or len(points) <= 1:
            return self._explore_serial(points, on_error, on_result)
        return self._explore_parallel(points, workers, on_error,
                                      on_result)

    def _explore_serial(self, points, on_error, on_result):
        results = []
        try:
            for point in points:
                if on_error == "capture":
                    result = self.evaluate_point_safe(point)
                else:
                    # The finally-flush below persists every completed
                    # point's store deltas before the raise surfaces.
                    result = self.evaluate_point(point)
                results.append(result)
                if on_result is not None:
                    on_result(result)
        finally:
            self.save_store()  # same persistence contract as parallel
        return results

    def _explore_parallel(self, points, workers, on_error, on_result):
        processes = min(workers, len(points))
        # Contiguous chunks, one pool task each: a worker evaluates a
        # whole chunk and ships the chunk's new store entries back as
        # one delta (workers never write shards — the parent is the
        # store's only writer), so persistence costs one export per
        # chunk instead of one per point.
        chunksize = max(1, (len(points) + processes - 1) // processes)
        chunks = [points[start:start + chunksize]
                  for start in range(0, len(points), chunksize)]
        cache_dir = None if self.store is None else self.store.root
        # Spill first so workers hydrate whatever this session already
        # computed instead of starting from the store's last state.
        self.save_store()
        slots = [None] * len(chunks)
        pool = multiprocessing.Pool(processes=processes,
                                    initializer=_worker_init,
                                    initargs=(self.library, cache_dir))
        try:
            # imap_unordered: each chunk's results, accounting and
            # store delta are absorbed the moment the chunk finishes,
            # so an interrupt (or a fail-fast raise) loses only the
            # chunks still in flight — never completed work.
            outcomes = pool.imap_unordered(_worker_point_chunk,
                                           list(enumerate(chunks)))
            for index, chunk_results, stats_delta, store_delta \
                    in outcomes:
                self.stats.merge(stats_delta)
                if self.store is not None and store_delta:
                    self.store.absorb_delta(store_delta)
                slots[index] = chunk_results
                if on_result is not None:
                    for result in chunk_results:
                        on_result(result)
            pool.close()
            pool.join()
        except BaseException:
            # KeyboardInterrupt (or a broken pool): kill the workers
            # quietly instead of leaving them to die noisily at
            # interpreter teardown; the finally-flush keeps whatever
            # already came back.
            pool.terminate()
            pool.join()
            raise
        finally:
            self.save_store()
        results = [result for chunk_results in slots
                   for result in chunk_results]
        if on_error == "raise":
            failed = next((result for result in results
                           if result.error is not None), None)
            if failed is not None:
                raise ReproError("design point %r failed: %s"
                                 % (failed.point, failed.error))
        return results

    def explore_grid(self, apps, areas=(None,), policies=(None,),
                     quanta=(150,), workers=1):
        """Explore the cross product of the given scenario axes.

        Points are generated in ``apps`` (slowest) x ``areas`` x
        ``policies`` x ``quanta`` (fastest) order.
        """
        points = [DesignPoint(app=app, area=area, policy=policy,
                              quanta=resolution)
                  for app in apps
                  for area in areas
                  for policy in policies
                  for resolution in quanta]
        return self.explore(points, workers=workers)

    @staticmethod
    def _coerce_point(point):
        if isinstance(point, DesignPoint):
            return point
        if isinstance(point, str):
            return DesignPoint(app=point)
        raise ReproError("explore() expects DesignPoint instances or "
                         "app names, got %r" % (point,))

    def __repr__(self):
        return "Session(library=%r, programs=%d, %r)" % (
            self.library.name, len(self._programs), self.cache)


def explore_grid(apps, areas=(None,), policies=(None,), quanta=(150,),
                 workers=1, library=None, cache_dir=None):
    """One-shot :meth:`Session.explore_grid` on a private session.

    ``explore`` persists to the ``cache_dir`` store itself, so no
    explicit save is needed here (or by any other explore caller).
    """
    return Session(library=library, cache_dir=cache_dir).explore_grid(
        apps, areas=areas, policies=policies, quanta=quanta,
        workers=workers)


# ----------------------------------------------------------------------
# Worker-process plumbing for Session.explore
# ----------------------------------------------------------------------
_WORKER_SESSION = None


def _worker_init(library, cache_dir=None):
    global _WORKER_SESSION
    _WORKER_SESSION = Session(library=library, cache_dir=cache_dir)


def _worker_point_chunk(task):
    """Evaluate one indexed chunk of points; ships results + accounting.

    The worker's cache never leaves its process, but its accounting
    does: the parent merges the per-chunk hit/miss delta so
    ``session.stats`` reflects the pool's real cache behaviour.  With a
    persistent store, the chunk's *new* cache entries travel back too
    (stable-encoded), so the parent — the store's one writer — spills
    everything in a single final flush instead of every worker racing
    shard rewrites of its own.

    Every point is evaluated with its error *captured*: a bad point
    must not abort the chunk (which would discard its siblings' results
    and store deltas), so failures travel back as
    :class:`~repro.engine.design_point.PointError` payloads and the
    parent decides whether to raise.
    """
    index, points = task
    session = _WORKER_SESSION
    before = session.stats.snapshot()
    results = [session.evaluate_point_safe(point) for point in points]
    store_delta = None if session.store is None \
        else session.store.export_delta(session.cache)
    from repro.engine.cache import CacheStats

    return (index, results,
            CacheStats.delta(before, session.stats.snapshot()),
            store_delta)
