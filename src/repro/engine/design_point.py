"""Immutable coordinates of one point in the design space.

A :class:`DesignPoint` names everything that distinguishes one
exploration run from another — the application, the ASIC area, the
module-selection policy and the PACE resolution — and nothing else, so
two equal points always denote the same pipeline computation.  That is
what makes points usable as cache keys and safe to ship to worker
processes.
"""

from dataclasses import dataclass, field

from repro.errors import ReproError

#: Module-selection policies understood by the engine (None means the
#: paper's designated-unit Algorithm 1).
POLICY_NAMES = ("fastest", "cheapest", "balanced")


@dataclass(frozen=True)
class DesignPoint:
    """One point of the exploration grid.

    Attributes:
        app: Benchmark name from the application registry
            (``straight``, ``hal``, ``man``, ``eigen``).
        area: Total ASIC area in gate equivalents; ``None`` uses the
            registry spec's Table 1 area.
        policy: Module-selection policy name (one of
            :data:`POLICY_NAMES`) or ``None`` for the designated-unit
            Algorithm 1 of the paper.
        quanta: PACE area-axis resolution.
        comm_cycles_per_word: HW/SW interface cost in CPU cycles.
    """

    app: str
    area: float = None
    policy: str = None
    quanta: int = 150
    comm_cycles_per_word: float = 4.0

    def __post_init__(self):
        if not isinstance(self.app, str) or not self.app:
            raise ReproError("DesignPoint.app must be a benchmark name, "
                             "got %r" % (self.app,))
        if self.area is not None and self.area <= 0:
            raise ReproError("DesignPoint.area must be positive, got %r"
                             % (self.area,))
        if self.policy is not None and self.policy not in POLICY_NAMES:
            raise ReproError(
                "DesignPoint.policy must be one of %s or None, got %r"
                % (", ".join(POLICY_NAMES), self.policy))
        if self.quanta < 1:
            raise ReproError("DesignPoint.quanta must be >= 1, got %r"
                             % (self.quanta,))
        if self.comm_cycles_per_word < 0:
            raise ReproError("DesignPoint.comm_cycles_per_word must be "
                             ">= 0, got %r" % (self.comm_cycles_per_word,))


@dataclass(frozen=True)
class PointResult:
    """Outcome of exploring one :class:`DesignPoint`.

    Attributes:
        point: The explored point.
        allocation: Allocation the point's allocator produced.
        speedup: PACE speed-up percentage of that allocation.
        datapath_area: Data-path area the allocation consumes.
        hw_names: BSBs the partition moved to hardware.
        evaluation: The full
            :class:`~repro.partition.evaluate.AllocationEvaluation`.
    """

    point: DesignPoint
    allocation: object
    speedup: float
    datapath_area: float
    hw_names: tuple = field(default_factory=tuple)
    evaluation: object = None
