"""Immutable coordinates of one point in the design space.

A :class:`DesignPoint` names everything that distinguishes one
exploration run from another — the application, the ASIC area, the
module-selection policy and the PACE resolution — and nothing else, so
two equal points always denote the same pipeline computation.  That is
what makes points usable as cache keys and safe to ship to worker
processes.
"""

from dataclasses import dataclass, field

from repro.errors import ReproError

#: Module-selection policies understood by the engine (None means the
#: paper's designated-unit Algorithm 1).
POLICY_NAMES = ("fastest", "cheapest", "balanced")


@dataclass(frozen=True)
class DesignPoint:
    """One point of the exploration grid.

    Attributes:
        app: Benchmark name from the application registry
            (``straight``, ``hal``, ``man``, ``eigen``).
        area: Total ASIC area in gate equivalents; ``None`` uses the
            registry spec's Table 1 area.
        policy: Module-selection policy name (one of
            :data:`POLICY_NAMES`) or ``None`` for the designated-unit
            Algorithm 1 of the paper.
        quanta: PACE area-axis resolution.
        comm_cycles_per_word: HW/SW interface cost in CPU cycles.
    """

    app: str
    area: float = None
    policy: str = None
    quanta: int = 150
    comm_cycles_per_word: float = 4.0

    def __post_init__(self):
        if not isinstance(self.app, str) or not self.app:
            raise ReproError("DesignPoint.app must be a benchmark name, "
                             "got %r" % (self.app,))
        if self.area is not None and self.area <= 0:
            raise ReproError("DesignPoint.area must be positive, got %r"
                             % (self.area,))
        if self.policy is not None and self.policy not in POLICY_NAMES:
            raise ReproError(
                "DesignPoint.policy must be one of %s or None, got %r"
                % (", ".join(POLICY_NAMES), self.policy))
        if self.quanta < 1:
            raise ReproError("DesignPoint.quanta must be >= 1, got %r"
                             % (self.quanta,))
        if self.comm_cycles_per_word < 0:
            raise ReproError("DesignPoint.comm_cycles_per_word must be "
                             ">= 0, got %r" % (self.comm_cycles_per_word,))


@dataclass(frozen=True)
class PointError:
    """Picklable capture of the exception one design point died on.

    A long-lived batch (or service job) cannot let one infeasible point
    abort the rest, and it cannot ship live exception objects across
    process boundaries either — tracebacks hold frames, frames hold
    arbitrary unpicklable state.  What travels instead is the stable
    pair every caller actually needs: the exception class name and its
    message.

    Attributes:
        kind: Exception class name (``"ReproError"``, ``"KeyError"``…).
        message: ``str(exception)`` at capture time.
    """

    kind: str
    message: str

    @classmethod
    def from_exception(cls, exc):
        return cls(kind=type(exc).__name__, message=str(exc))

    def __str__(self):
        return "%s: %s" % (self.kind, self.message)


@dataclass(frozen=True)
class PointResult:
    """Outcome of exploring one :class:`DesignPoint`.

    Attributes:
        point: The explored point.
        allocation: Allocation the point's allocator produced
            (``None`` for a failed point).
        speedup: PACE speed-up percentage of that allocation.
        datapath_area: Data-path area the allocation consumes.
        energy: Modelled energy of the partitioned execution (see
            :func:`~repro.partition.model.partition_energy`); 0.0 for
            a failed point.
        hw_names: BSBs the partition moved to hardware.
        evaluation: The full
            :class:`~repro.partition.evaluate.AllocationEvaluation`.
        error: ``None`` for a successful point, else the
            :class:`PointError` captured when the pipeline raised —
            the per-point error contract of ``Session.explore(...,
            on_error="capture")`` and of the exploration service.
    """

    point: DesignPoint
    allocation: object
    speedup: float
    datapath_area: float
    energy: float = 0.0
    hw_names: tuple = field(default_factory=tuple)
    evaluation: object = None
    error: object = None

    @property
    def ok(self):
        """True when the point completed (``error`` is ``None``)."""
        return self.error is None


def failed_point_result(point, exc):
    """The :class:`PointResult` standing in for a point that raised."""
    return PointResult(point=point, allocation=None, speedup=0.0,
                       datapath_area=0.0,
                       error=PointError.from_exception(exc))
