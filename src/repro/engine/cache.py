"""Session-scoped memo store for the allocate -> PACE -> evaluate pipeline.

Every experiment driver used to re-run the full compile -> schedule ->
allocate -> partition -> evaluate chain per candidate, recomputing
schedules, software times, ECA estimates, BSB cost arrays and PACE
sequence tables that depend only on a small signature of their inputs.
:class:`EvalCache` is the one store those stages share: each stage keeps
its own dict keyed by the stage's *true* inputs (BSB uid, the
allocation counts the BSB can actually use, the architecture knobs the
quantity depends on), so a hit is guaranteed to return a value
bit-identical to recomputation.

The store is deliberately dumb — plain dicts plus hit/miss accounting.
The stage logic that decides what the true inputs are lives next to
each stage (``partition/model.py``, ``partition/evaluate.py``,
``core/allocator.py`` ...), which keeps the dependency arrow pointing
from the pipeline stages to this leaf module and avoids import cycles
with :mod:`repro.engine.session` sitting on top of everything.

Object-identity keys (``id(library)`` etc.) are made safe by
:meth:`EvalCache.pin`, which keeps a strong reference to every object
whose id participates in a key, so the id can never be recycled while
the cache lives.
"""


class CacheStats:
    """Per-stage hit/miss counters of an :class:`EvalCache`."""

    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = {}
        self.misses = {}

    def hit(self, stage):
        self.hits[stage] = self.hits.get(stage, 0) + 1

    def miss(self, stage):
        self.misses[stage] = self.misses.get(stage, 0) + 1

    def hit_count(self, stage=None):
        if stage is not None:
            return self.hits.get(stage, 0)
        return sum(self.hits.values())

    def miss_count(self, stage=None):
        if stage is not None:
            return self.misses.get(stage, 0)
        return sum(self.misses.values())

    def hit_rate(self, stage):
        """Hits / lookups for one stage; 0.0 before any lookup."""
        lookups = self.hit_count(stage) + self.miss_count(stage)
        if not lookups:
            return 0.0
        return self.hit_count(stage) / lookups

    def stages(self):
        """Stage names seen so far, sorted."""
        return sorted(set(self.hits) | set(self.misses))

    def snapshot(self):
        """Mapping stage -> (hits, misses), for assertions and reports."""
        return {stage: (self.hit_count(stage), self.miss_count(stage))
                for stage in self.stages()}

    def merge(self, snapshot):
        """Add another accounting's ``snapshot()`` into this one.

        The batch APIs fan work out over processes whose caches never
        come back; their counters do, and merging them here is what
        keeps ``session.stats`` honest for parallel runs.
        """
        for stage, (hits, misses) in snapshot.items():
            if hits:
                self.hits[stage] = self.hits.get(stage, 0) + hits
            if misses:
                self.misses[stage] = self.misses.get(stage, 0) + misses
        return self

    @staticmethod
    def delta(before, after):
        """Per-stage (hits, misses) growth between two snapshots."""
        result = {}
        for stage, (hits, misses) in after.items():
            old_hits, old_misses = before.get(stage, (0, 0))
            grown = (hits - old_hits, misses - old_misses)
            if grown != (0, 0):
                result[stage] = grown
        return result

    def overall_hit_rate(self):
        """Hits / lookups across every stage; 0.0 before any lookup."""
        lookups = self.hit_count() + self.miss_count()
        if not lookups:
            return 0.0
        return self.hit_count() / lookups

    def summary(self):
        """One human-readable line per stage."""
        lines = []
        for stage in self.stages():
            lines.append("%-12s %6d hits  %6d misses  (%.0f%% hit rate)"
                         % (stage, self.hit_count(stage),
                            self.miss_count(stage),
                            100.0 * self.hit_rate(stage)))
        return "\n".join(lines)

    def __repr__(self):
        return "CacheStats(hits=%d, misses=%d)" % (self.hit_count(),
                                                   self.miss_count())


class EvalCache:
    """Shared memo dicts for every stage of the exploration pipeline.

    Attributes (all plain dicts, keyed as noted):
        sched: (bsb uid, relevant counts) -> list-schedule length.  The
            same mapping the old ad-hoc ``cache=`` dicts held, so legacy
            callers passing a bare dict keep working.
        ops: (bsb uid, library id) -> sorted (resource name, op count)
            tuple of the BSB's designated-resource demand.
        capable: (bsb uid, library id) -> (capable names, per-type names)
            for module-selection mixes.
        sw_times: (bsb uid, processor id) -> software cycles.
        costs: (bsb uid, allocation signature, arch key) -> BSBCost.
        intervals: (bsb uid, library id) -> ASAP/ALAP start intervals
            (unit default latency; callers with a non-default latency
            must extend their cache_key accordingly).
        furo: (bsb uid, library id) -> FURO value mapping.
        urgency: (bsb uids, library id) -> UrgencyState.
        eca: (bsb uid, library id, technology id) -> estimated area.
        restrictions: (bsb uids, library id) -> restriction RMap.
        tables: (cost ids, comm cost) -> SequenceTable.
        partitions: ((cost ids, comm cost), available area, quanta) ->
            PartitionResult — distinct allocations whose cost arrays and
            available controller areas coincide share one PACE DP run.
        evals: full-evaluation key -> AllocationEvaluation.
        allocs: Algorithm 1 memo used by the engine Session.
        sched_inputs: (bsb uid, library id) -> (priority map, latency
            table) handed to the list scheduler so repeated schedules
            of one DFG skip the ALAP and latency preprocessing.
        cost_plans: (bsb uids, library id) -> the grouping of a BSB
            array by identical cost-signature functions, so one
            evaluation computes each distinct signature once instead of
            once per BSB.
        bounds: (bsb uid, library id, capped effective counts) ->
            (schedule-length floor, controller-area floor) used by the
            branch-and-bound exhaustive search; process-local (never
            persisted — bounds are cheap to recompute and admissibility
            is easier to audit without a disk round-trip).
        energies: (bsb uids, library id, processor token) -> tuple of
            per-BSB (software energy, hardware energy) pairs; process
            -local like ``bounds`` (two multiplications per BSB to
            rebuild) and deliberately outside the hit/miss accounting.
        stats: the :class:`CacheStats` counters.
    """

    __slots__ = ("sched", "ops", "capable", "sw_times", "costs",
                 "intervals", "furo", "urgency", "eca", "restrictions",
                 "tables", "partitions", "evals", "allocs", "sched_inputs",
                 "cost_plans", "bounds", "energies", "stats", "_pins",
                 "_processor_tokens", "_uid_keys")

    def __init__(self):
        self.sched = {}
        self.ops = {}
        self.capable = {}
        self.sw_times = {}
        self.costs = {}
        self.intervals = {}
        self.furo = {}
        self.urgency = {}
        self.eca = {}
        self.restrictions = {}
        self.tables = {}
        self.partitions = {}
        self.evals = {}
        self.allocs = {}
        self.sched_inputs = {}
        self.cost_plans = {}
        self.bounds = {}
        self.energies = {}
        self.stats = CacheStats()
        self._pins = {}
        self._processor_tokens = {}
        self._uid_keys = {}

    def uid_key(self, bsbs):
        """The uid tuple of a BSB array, memoised per list identity.

        Evaluation keys embed the whole array's uids; exhaustive
        searches look tens of thousands of keys up against the same
        list object, so the tuple is built once per list (which is
        pinned — callers must not mutate a BSB list after passing it
        into cached evaluations).
        """
        token = id(bsbs)
        key = self._uid_keys.get(token)
        if key is None:
            self._pins[token] = bsbs
            key = tuple(bsb.uid for bsb in bsbs)
            self._uid_keys[token] = key
        return key

    def processor_token(self, processor):
        """A value-based key token for a processor model.

        Architectures built independently carry *equal but distinct*
        default processors (the dataclass default_factory), and the
        cycle-table dict makes them unhashable.  Tokenising by value —
        memoised per object identity so the table is only walked once —
        lets evaluations under equal processors share cache entries.
        """
        token = self._processor_tokens.get(id(processor))
        if token is None:
            token = (processor.name, processor.sequential_overhead,
                     processor.energy_per_cycle,
                     tuple(sorted((optype.value, cycles) for optype, cycles
                                  in processor.cycle_table.items())))
            self._pins[id(processor)] = processor
            self._processor_tokens[id(processor)] = token
        return token

    def pin(self, obj):
        """Return ``id(obj)`` for use in a key, keeping ``obj`` alive.

        Without the strong reference a garbage-collected library or
        processor could hand its id to a different object and alias an
        unrelated cache entry.
        """
        token = id(obj)
        if token not in self._pins:
            self._pins[token] = obj
        return token

    def clear(self):
        """Drop every memoised value (stats and pins included)."""
        for name in ("sched", "ops", "capable", "sw_times", "costs",
                     "intervals", "furo", "urgency", "eca", "restrictions",
                     "tables", "partitions", "evals", "allocs",
                     "sched_inputs", "cost_plans", "bounds", "energies",
                     "_pins", "_processor_tokens", "_uid_keys"):
            getattr(self, name).clear()
        self.stats = CacheStats()

    def __repr__(self):
        entries = sum(len(getattr(self, name)) for name in
                      ("sched", "ops", "capable", "sw_times", "costs",
                       "intervals", "furo", "urgency", "eca",
                       "restrictions", "tables", "partitions", "evals",
                       "allocs"))
        return "EvalCache(entries=%d, %r)" % (entries, self.stats)
