"""Basic Scheduling Blocks: the partitioning view of an application.

The CDFG of an application is translated into a BSB hierarchy (Figure 4
of the paper).  The bulk of the application is the array of *leaf* BSBs,
each containing a single data-flow graph; the inner nodes of the
hierarchy represent control structure (loops, branches, sequences,
functions, waits).  The allocation algorithm and the PACE partitioner
both operate on the flat leaf-BSB array.
"""

from repro.bsb.bsb import (
    LeafBSB,
    ControlBSB,
    SequenceBSB,
    LoopBSB,
    BranchBSB,
    FunctionBSB,
    WaitBSB,
)
from repro.bsb.hierarchy import leaf_array, hierarchy_lines

__all__ = [
    "LeafBSB",
    "ControlBSB",
    "SequenceBSB",
    "LoopBSB",
    "BranchBSB",
    "FunctionBSB",
    "WaitBSB",
    "leaf_array",
    "hierarchy_lines",
]
