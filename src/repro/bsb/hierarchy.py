"""Flattening and pretty-printing of BSB hierarchies.

The allocation algorithm represents the application "as an array of leaf
BSBs" (section 3): the Figure-4 application becomes the array
``[B1, B2, B3, B4, B5]``.  :func:`leaf_array` performs exactly that
flattening; :func:`hierarchy_lines` renders the hierarchy for reports
and the quickstart example (the right-hand side of Figure 4).
"""

from repro.bsb.bsb import BSBNode, ControlBSB, LeafBSB
from repro.errors import CdfgError


def leaf_array(root):
    """Flatten a BSB hierarchy into the ordered array of leaf BSBs."""
    if not isinstance(root, BSBNode):
        raise CdfgError("expected a BSB hierarchy root, got %r" % (root,))
    leaves = root.leaves()
    if not all(isinstance(leaf, LeafBSB) for leaf in leaves):
        raise CdfgError("hierarchy produced non-leaf entries")
    return leaves


def hierarchy_lines(root, indent="  "):
    """Render the hierarchy as indented text lines (Figure 4 style)."""
    lines = []

    def visit(node, depth):
        if isinstance(node, LeafBSB):
            lines.append("%s%s  [DFG: %d ops, profile %d]"
                         % (indent * depth, node.name,
                            len(node.dfg), node.profile_count))
            return
        lines.append("%s%s (%s)" % (indent * depth, node.name, node.kind))
        if isinstance(node, ControlBSB):
            for child in node.children:
                visit(child, depth + 1)

    visit(root, 0)
    return lines


def total_operations(root):
    """Total operation count across all leaf BSBs."""
    return sum(len(leaf.dfg) for leaf in leaf_array(root))


def weighted_operations(root):
    """Profile-weighted operation count (executions of operations)."""
    return sum(leaf.profile_count * len(leaf.dfg)
               for leaf in leaf_array(root))
