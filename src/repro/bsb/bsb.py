"""BSB node classes: leaves (DFGs) and control-structure inner nodes."""

import itertools

from repro.errors import CdfgError
from repro.ir.dfg import DFG

_bsb_id_counter = itertools.count(1)


class BSBNode:
    """Common base for all nodes in a BSB hierarchy."""

    kind = "bsb"

    def __init__(self, name=""):
        self.uid = next(_bsb_id_counter)
        self.name = name or "%s%d" % (self.kind, self.uid)

    def leaves(self):
        """All leaf BSBs below (or at) this node, in program order."""
        raise NotImplementedError

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)


class LeafBSB(BSBNode):
    """A leaf BSB: one data-flow graph plus partitioning metadata.

    Attributes:
        dfg: The contained :class:`~repro.ir.dfg.DFG`.
        profile_count: Number of executions of this BSB during one run
            of the application (the paper's ``p_k``).
        reads: Names of variables the BSB consumes (live-in); used by
            the communication model when the BSB sits at a HW/SW
            boundary.
        writes: Names of variables the BSB produces (live-out).
    """

    kind = "leaf"

    def __init__(self, dfg, profile_count=1, name="", reads=(), writes=()):
        if not isinstance(dfg, DFG):
            raise CdfgError("LeafBSB requires a DFG, got %r" % (dfg,))
        super().__init__(name=name or dfg.name)
        if profile_count < 0:
            raise CdfgError("profile count must be >= 0, got %r"
                            % (profile_count,))
        self.dfg = dfg
        self.profile_count = int(profile_count)
        self.reads = frozenset(reads)
        self.writes = frozenset(writes)

    def leaves(self):
        return [self]

    def op_types(self):
        """The operation types appearing in this BSB's DFG."""
        return self.dfg.op_types()

    def operation_count(self):
        """Total number of operations in the BSB."""
        return len(self.dfg)

    def __repr__(self):
        return "LeafBSB(name=%r, ops=%d, profile=%d)" % (
            self.name, len(self.dfg), self.profile_count)


class ControlBSB(BSBNode):
    """Base class for inner (control-structure) BSB nodes."""

    kind = "control"

    def __init__(self, children, name=""):
        super().__init__(name=name)
        self.children = list(children)
        for child in self.children:
            if not isinstance(child, BSBNode):
                raise CdfgError("BSB children must be BSB nodes, got %r"
                                % (child,))

    def leaves(self):
        result = []
        for child in self.children:
            result.extend(child.leaves())
        return result


class SequenceBSB(ControlBSB):
    """Sequential composition of BSBs (a statement list)."""

    kind = "seq"


class LoopBSB(ControlBSB):
    """A loop: first child is the test, the rest form the body."""

    kind = "loop"

    def __init__(self, test, body, name=""):
        children = ([test] if test is not None else []) + list(body)
        super().__init__(children, name=name)
        self.test = test
        self.body = list(body)


class BranchBSB(ControlBSB):
    """A conditional: a test child plus one child per branch."""

    kind = "branch"

    def __init__(self, test, branches, name=""):
        children = ([test] if test is not None else [])
        for branch in branches:
            children.extend(branch)
        super().__init__(children, name=name)
        self.test = test
        self.branches = [list(branch) for branch in branches]


class FunctionBSB(ControlBSB):
    """Functional hierarchy: a named group of BSBs."""

    kind = "func"


class WaitBSB(ControlBSB):
    """A wait statement enclosing the BSBs executed after the event."""

    kind = "wait"
