"""HW/SW partitioning: the PACE dynamic-programming algorithm.

The paper evaluates allocations by running the PACE partitioner [7] for
each candidate allocation and comparing the achieved speed-ups.  This
package reimplements PACE from its published problem statement: given a
pre-allocated data-path, choose which BSBs to move to hardware —
contiguous sequences move together and save internal communication —
so that total execution time (software + hardware + HW/SW communication)
is minimised under the remaining-area constraint for controllers.
"""

from repro.partition.model import TargetArchitecture, BSBCost, bsb_costs
from repro.partition.communication import sequence_communication_time
from repro.partition.pace import (
    pace_partition,
    PartitionResult,
    SequenceTable,
)
from repro.partition.speedup import speedup_percent
from repro.partition.evaluate import evaluate_allocation

__all__ = [
    "TargetArchitecture",
    "BSBCost",
    "bsb_costs",
    "sequence_communication_time",
    "pace_partition",
    "PartitionResult",
    "SequenceTable",
    "speedup_percent",
    "evaluate_allocation",
]
