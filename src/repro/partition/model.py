"""Target architecture and per-BSB cost models for partitioning."""

from dataclasses import dataclass, field

from repro.core.eca import controller_area_for_states
from repro.errors import PartitionError
from repro.hwlib.library import ResourceLibrary
from repro.sched.list_scheduler import list_schedule
from repro.swmodel.estimator import bsb_software_time
from repro.swmodel.processor import Processor, default_processor


@dataclass(frozen=True)
class TargetArchitecture:
    """The co-processor target: one CPU, one ASIC, shared memory.

    Attributes:
        processor: The software side's cycle model.
        library: The hardware resource library.
        total_area: Total ASIC area (data-path + controllers), gate
            equivalents.
        comm_cycles_per_word: Cycles to move one 32-bit word across the
            memory-mapped HW/SW interface.
        hw_cycle_ratio: Duration of one ASIC control step in CPU cycles
            (1.0 = same clock).
    """

    processor: Processor = field(default_factory=default_processor)
    library: ResourceLibrary = None
    total_area: float = 20000.0
    comm_cycles_per_word: float = 4.0
    hw_cycle_ratio: float = 1.0

    def __post_init__(self):
        if self.library is None:
            raise PartitionError("TargetArchitecture requires a library")
        if self.total_area <= 0:
            raise PartitionError("total area must be positive")
        if self.comm_cycles_per_word < 0:
            raise PartitionError("communication cost must be >= 0")
        if self.hw_cycle_ratio <= 0:
            raise PartitionError("hw cycle ratio must be positive")


@dataclass(frozen=True)
class BSBCost:
    """Partitioning-relevant costs of one BSB under a fixed allocation.

    Attributes:
        name: BSB name.
        profile_count: Executions per application run.
        sw_time: Total software cycles over the run.
        hw_time: Total hardware cycles over the run (``None`` when the
            allocation cannot execute the BSB, i.e. some required unit
            has count zero — the BSB must then stay in software).
        controller_area: Area of the BSB's controller if moved to
            hardware.  PACE uses the *actual* (list-schedule) state
            count, which is what makes the optimistic ECA of the
            allocator visible in section 5.1.
        reads: Live-in variable names (for boundary communication).
        writes: Live-out variable names.
    """

    name: str
    profile_count: int
    sw_time: float
    hw_time: float
    controller_area: float
    reads: frozenset
    writes: frozenset

    @property
    def movable(self):
        return self.hw_time is not None

    @property
    def gain(self):
        """Raw cycles saved by moving this BSB alone (ignoring comm)."""
        if not self.movable:
            return 0.0
        return self.sw_time - self.hw_time


def _relevant_counts(bsb, allocation, library):
    """The allocation as seen by one BSB, capped at useful counts.

    A BSB with three multiplications schedules identically under four or
    forty multipliers; capping the counts makes the cache key collapse
    across allocations that differ only in irrelevant resources.
    """
    ops_per_resource = {}
    for optype, op_count in bsb.dfg.count_by_type().items():
        name = library.resource_for(optype).name
        ops_per_resource[name] = ops_per_resource.get(name, 0) + op_count
    counts = {name: min(allocation.get(name, 0), need)
              for name, need in ops_per_resource.items()}
    return tuple(sorted(counts.items()))


def hardware_steps(bsb, allocation, architecture, cache=None):
    """List-schedule length of a BSB under ``allocation``, or ``None``.

    ``None`` means the allocation lacks a required unit and the BSB
    cannot execute in hardware.  ``cache`` (a plain dict) memoises
    schedule lengths across the many allocations an exhaustive search
    evaluates.

    Allocations where some type is covered only by a non-designated
    unit (module-selection mixes) are scheduled with the heterogeneous
    scheduler; the common homogeneous case keeps its fast path.
    """
    library = architecture.library
    if not len(bsb.dfg):
        return 0
    counts = _relevant_counts(bsb, allocation, library)
    if all(count >= 1 for _, count in counts):
        key = None
        if cache is not None:
            key = (bsb.uid, counts)
            if key in cache:
                return cache[key]
        steps = list_schedule(bsb.dfg, dict(counts), library).length
        if cache is not None:
            cache[key] = steps
        return steps
    return _hetero_hardware_steps(bsb, allocation, library, cache)


def _hetero_hardware_steps(bsb, allocation, library, cache):
    """Schedule length under a module-selection mix, or ``None``."""
    from repro.core.furo import allocated_units_for
    from repro.sched.hetero_scheduler import hetero_list_schedule

    for optype in bsb.dfg.op_types():
        if allocated_units_for(optype, allocation, library) < 1:
            return None
    relevant = tuple(sorted(
        (name, count) for name, count in allocation.items()
        if count and any(library.get(name).executes(optype)
                         for optype in bsb.dfg.op_types())))
    key = (bsb.uid, "hetero", relevant)
    if cache is not None and key in cache:
        return cache[key]
    steps = hetero_list_schedule(bsb.dfg, dict(relevant), library).length
    if cache is not None:
        cache[key] = steps
    return steps


def bsb_cost(bsb, allocation, architecture, cache=None):
    """Compute the :class:`BSBCost` of one BSB under ``allocation``."""
    sw_time = bsb_software_time(bsb, architecture.processor)
    steps = hardware_steps(bsb, allocation, architecture, cache=cache)
    if steps is None:
        hw_time = None
        controller_area = float("inf")
    else:
        hw_time = bsb.profile_count * steps * architecture.hw_cycle_ratio
        controller_area = controller_area_for_states(
            max(1, steps), technology=architecture.library.technology)
    return BSBCost(
        name=bsb.name,
        profile_count=bsb.profile_count,
        sw_time=sw_time,
        hw_time=hw_time,
        controller_area=controller_area,
        reads=frozenset(bsb.reads),
        writes=frozenset(bsb.writes),
    )


def bsb_costs(bsbs, allocation, architecture, cache=None):
    """Per-BSB costs for the whole application, in array order."""
    return [bsb_cost(bsb, allocation, architecture, cache=cache)
            for bsb in bsbs]
