"""Target architecture and per-BSB cost models for partitioning."""

from dataclasses import dataclass, field

from repro.core.eca import controller_area_for_states
from repro.engine.cache import EvalCache
from repro.errors import PartitionError, ResourceError
from repro.hwlib.library import ResourceLibrary
from repro.sched.list_scheduler import list_schedule
from repro.swmodel.estimator import bsb_software_time
from repro.swmodel.processor import Processor, default_processor


@dataclass(frozen=True)
class TargetArchitecture:
    """The co-processor target: one CPU, one ASIC, shared memory.

    Attributes:
        processor: The software side's cycle model.
        library: The hardware resource library.
        total_area: Total ASIC area (data-path + controllers), gate
            equivalents.
        comm_cycles_per_word: Cycles to move one 32-bit word across the
            memory-mapped HW/SW interface.
        hw_cycle_ratio: Duration of one ASIC control step in CPU cycles
            (1.0 = same clock).
    """

    processor: Processor = field(default_factory=default_processor)
    library: ResourceLibrary = None
    total_area: float = 20000.0
    comm_cycles_per_word: float = 4.0
    hw_cycle_ratio: float = 1.0

    def __post_init__(self):
        if self.library is None:
            raise PartitionError("TargetArchitecture requires a library")
        if self.total_area <= 0:
            raise PartitionError("total area must be positive")
        if self.comm_cycles_per_word < 0:
            raise PartitionError("communication cost must be >= 0")
        if self.hw_cycle_ratio <= 0:
            raise PartitionError("hw cycle ratio must be positive")


@dataclass(frozen=True)
class BSBCost:
    """Partitioning-relevant costs of one BSB under a fixed allocation.

    Attributes:
        name: BSB name.
        profile_count: Executions per application run.
        sw_time: Total software cycles over the run.
        hw_time: Total hardware cycles over the run (``None`` when the
            allocation cannot execute the BSB, i.e. some required unit
            has count zero — the BSB must then stay in software).
        controller_area: Area of the BSB's controller if moved to
            hardware.  PACE uses the *actual* (list-schedule) state
            count, which is what makes the optimistic ECA of the
            allocator visible in section 5.1.
        reads: Live-in variable names (for boundary communication).
        writes: Live-out variable names.
    """

    name: str
    profile_count: int
    sw_time: float
    hw_time: float
    controller_area: float
    reads: frozenset
    writes: frozenset

    @property
    def movable(self):
        return self.hw_time is not None

    @property
    def gain(self):
        """Raw cycles saved by moving this BSB alone (ignoring comm)."""
        if not self.movable:
            return 0.0
        return self.sw_time - self.hw_time


def _ops_per_resource(bsb, library, cache=None):
    """Designated-resource demand of one BSB, as a sorted (name, need)
    tuple — the pre-ordered form lets the hot signature path skip a
    dict build and a sort per evaluation."""
    if isinstance(cache, EvalCache):
        key = (bsb.uid, cache.pin(library))
        ops = cache.ops.get(key)
        if ops is not None:
            return ops
    counts = {}
    for optype, op_count in bsb.dfg.count_by_type().items():
        name = library.resource_for(optype).name
        counts[name] = counts.get(name, 0) + op_count
    ops = tuple(sorted(counts.items()))
    if isinstance(cache, EvalCache):
        cache.ops[key] = ops
    return ops


def _relevant_counts(bsb, allocation, library, cache=None):
    """The allocation as seen by one BSB, capped at useful counts.

    A BSB with three multiplications schedules identically under four or
    forty multipliers; capping the counts makes the cache key collapse
    across allocations that differ only in irrelevant resources.
    """
    get = allocation.get
    return tuple((name, min(get(name, 0), need))
                 for name, need in _ops_per_resource(bsb, library,
                                                     cache=cache))


def _capability(bsb, library, cache=None):
    """(capable resource names, per-optype capable names) of one BSB.

    Used by the module-selection paths: which library units can execute
    any of the BSB's operation types at all.
    """
    if isinstance(cache, EvalCache):
        key = (bsb.uid, cache.pin(library))
        capability = cache.capable.get(key)
        if capability is not None:
            return capability
    per_type = {optype: frozenset(resource.name for resource
                                  in library.candidates_for(optype))
                for optype in bsb.dfg.op_types()}
    names = frozenset().union(*per_type.values()) if per_type \
        else frozenset()
    capability = (names, per_type)
    if isinstance(cache, EvalCache):
        cache.capable[key] = capability
    return capability


def hardware_steps(bsb, allocation, architecture, cache=None):
    """List-schedule length of a BSB under ``allocation``, or ``None``.

    ``None`` means the allocation lacks a required unit and the BSB
    cannot execute in hardware.  ``cache`` — a plain dict of schedule
    lengths or an :class:`~repro.engine.cache.EvalCache` — memoises
    schedule lengths across the many allocations an exhaustive search
    evaluates.

    Allocations where some type is covered only by a non-designated
    unit (module-selection mixes) are scheduled with the heterogeneous
    scheduler; the common homogeneous case keeps its fast path.
    """
    library = architecture.library
    if not len(bsb.dfg):
        return 0
    sched_cache = cache.sched if isinstance(cache, EvalCache) else cache
    counts = _relevant_counts(bsb, allocation, library, cache=cache)
    if all(count >= 1 for _, count in counts):
        key = None
        if sched_cache is not None:
            # The legacy plain-dict cache is created fresh per
            # single-library search, so its keys never needed the
            # library; the long-lived EvalCache serves sessions that
            # may evaluate under several libraries.
            if isinstance(cache, EvalCache):
                key = (bsb.uid, counts, cache.pin(library))
            else:
                key = (bsb.uid, counts)
            if key in sched_cache:
                return sched_cache[key]
        priority = latencies = None
        if isinstance(cache, EvalCache):
            priority, latencies = _schedule_inputs(bsb, library, cache)
        steps = list_schedule(bsb.dfg, dict(counts), library,
                              priority=priority,
                              latencies=latencies).length
        if sched_cache is not None:
            sched_cache[key] = steps
        return steps
    return _hetero_hardware_steps(bsb, allocation, library, cache)


def _schedule_inputs(bsb, library, cache):
    """(priority map, latency table) for list-scheduling one BSB.

    Derived from the memoised ASAP/ALAP intervals (the ALAP start *is*
    the list scheduler's priority), so the many allocations that
    re-schedule the same DFG pay the graph preprocessing once.
    """
    key = (bsb.uid, cache.pin(library))
    inputs = cache.sched_inputs.get(key)
    if inputs is None:
        from repro.sched.mobility import asap_alap_intervals
        from repro.sched.schedule import latency_table

        intervals = asap_alap_intervals(bsb.dfg, library=library,
                                        cache=cache.intervals,
                                        cache_key=key)
        priority = {uid: (interval[1], uid)
                    for uid, interval in intervals.items()}
        inputs = (priority, latency_table(bsb.dfg, library=library))
        cache.sched_inputs[key] = inputs
    return inputs


def _hetero_relevant(bsb, allocation, library, cache=None):
    """Allocation restricted to units capable of the BSB's types, or
    ``None`` when some type has no allocated capable unit."""
    if isinstance(cache, EvalCache):
        capable, per_type = _capability(bsb, library, cache=cache)
        for names in per_type.values():
            if not any(allocation.get(name, 0) for name in names):
                return None
        return tuple(sorted((name, count)
                            for name, count in allocation.items()
                            if count and name in capable))
    from repro.core.furo import allocated_units_for

    for optype in bsb.dfg.op_types():
        if allocated_units_for(optype, allocation, library) < 1:
            return None
    return tuple(sorted(
        (name, count) for name, count in allocation.items()
        if count and any(library.get(name).executes(optype)
                         for optype in bsb.dfg.op_types())))


def _hetero_hardware_steps(bsb, allocation, library, cache):
    """Schedule length under a module-selection mix, or ``None``."""
    from repro.sched.hetero_scheduler import hetero_list_schedule

    relevant = _hetero_relevant(bsb, allocation, library, cache=cache)
    if relevant is None:
        return None
    sched_cache = cache.sched if isinstance(cache, EvalCache) else cache
    if isinstance(cache, EvalCache):
        key = (bsb.uid, "hetero", relevant, cache.pin(library))
    else:
        key = (bsb.uid, "hetero", relevant)
    if sched_cache is not None and key in sched_cache:
        return sched_cache[key]
    steps = hetero_list_schedule(bsb.dfg, dict(relevant), library).length
    if sched_cache is not None:
        sched_cache[key] = steps
    return steps


def _arch_cost_key(architecture, cache):
    """The architecture knobs a BSBCost depends on, as one key part."""
    return (cache.pin(architecture.library),
            cache.processor_token(architecture.processor),
            architecture.hw_cycle_ratio)


def _allocation_signature(bsb, allocation, library, cache):
    """The slice of ``allocation`` the BSB's cost actually depends on.

    Two allocations with equal signatures yield bit-identical BSBCosts,
    which is what makes the per-BSB cost memo below exact.
    _cached_bsb_costs computes these same signatures inline over groups
    of BSBs — keep the two in sync.
    """
    if not len(bsb.dfg):
        return ("empty",)
    counts = _relevant_counts(bsb, allocation, library, cache=cache)
    if all(count >= 1 for _, count in counts):
        return ("homo", counts)
    return ("hetero", _hetero_relevant(bsb, allocation, library,
                                       cache=cache))


def _software_time(bsb, processor, cache=None):
    """Memoised :func:`bsb_software_time` (allocation-independent)."""
    if isinstance(cache, EvalCache):
        key = (bsb.uid, cache.processor_token(processor))
        if key not in cache.sw_times:
            cache.sw_times[key] = bsb_software_time(bsb, processor)
        return cache.sw_times[key]
    return bsb_software_time(bsb, processor)


def _bsb_energy_pair(bsb, architecture, cache=None):
    """(software, hardware) energy of one BSB over the whole run.

    The software side prices the serial cycle count at the processor's
    per-cycle energy; the hardware side prices every operation at its
    *designated* unit's per-operation energy (module-selection mixes
    are deliberately priced at the designated unit too — the energy
    model is a partition-level estimate, not a binding).  Both sides
    are allocation-independent, so one pair per BSB covers the whole
    search space.  The hardware side is ``None`` when the library has
    no designated unit for some operation type — such a BSB can never
    move to hardware anyway.
    """
    processor = architecture.processor
    sw_energy = (_software_time(bsb, processor, cache=cache)
                 * processor.energy_per_cycle)
    library = architecture.library
    try:
        ops = _ops_per_resource(bsb, library, cache=cache)
    except ResourceError:
        return (sw_energy, None)
    hw_energy = bsb.profile_count * sum(
        op_count * library.energy_of(name) for name, op_count in ops)
    return (sw_energy, hw_energy)


def bsb_energy_pairs(bsbs, architecture, cache=None):
    """Per-BSB (software, hardware) energy pairs, in array order.

    Memoised per (BSB array, library, processor) in the cache's
    ``energies`` stage — outside the hit/miss accounting, like the
    branch-and-bound ``bounds`` stage, because the pairs are trivially
    cheap and charging lookups would shift every reported hit rate.
    """
    if isinstance(cache, EvalCache):
        key = (cache.uid_key(bsbs), cache.pin(architecture.library),
               cache.processor_token(architecture.processor))
        pairs = cache.energies.get(key)
        if pairs is None:
            pairs = tuple(_bsb_energy_pair(bsb, architecture, cache=cache)
                          for bsb in bsbs)
            cache.energies[key] = pairs
        return pairs
    return tuple(_bsb_energy_pair(bsb, architecture, cache=cache)
                 for bsb in bsbs)


def partition_energy(pairs, hw_sequences):
    """Total energy of one partition over per-BSB energy ``pairs``.

    Every BSB inside an inclusive ``(first, last)`` hardware sequence
    contributes its hardware energy; every other BSB its software
    energy.  A plain sum over the array, so the total is non-negative
    and additive over any grouping of the BSBs by construction.
    """
    in_hardware = set()
    for first, last in hw_sequences:
        in_hardware.update(range(first, last + 1))
    total = 0.0
    for index, (sw_energy, hw_energy) in enumerate(pairs):
        total += hw_energy if index in in_hardware else sw_energy
    return total


def _compute_bsb_cost(bsb, allocation, architecture, cache):
    sw_time = _software_time(bsb, architecture.processor, cache=cache)
    steps = hardware_steps(bsb, allocation, architecture, cache=cache)
    if steps is None:
        hw_time = None
        controller_area = float("inf")
    else:
        hw_time = bsb.profile_count * steps * architecture.hw_cycle_ratio
        controller_area = controller_area_for_states(
            max(1, steps), technology=architecture.library.technology)
    return BSBCost(
        name=bsb.name,
        profile_count=bsb.profile_count,
        sw_time=sw_time,
        hw_time=hw_time,
        controller_area=controller_area,
        reads=frozenset(bsb.reads),
        writes=frozenset(bsb.writes),
    )


def bsb_cost(bsb, allocation, architecture, cache=None):
    """Compute the :class:`BSBCost` of one BSB under ``allocation``.

    With an :class:`~repro.engine.cache.EvalCache` the whole cost object
    is memoised by its true inputs — the BSB, the allocation counts the
    BSB can use, and the architecture knobs entering the cost — so the
    exhaustive search's thousands of allocations collapse onto a few
    distinct cost signatures per BSB.
    """
    if not isinstance(cache, EvalCache):
        return _compute_bsb_cost(bsb, allocation, architecture, cache)
    # Same key shape as _cached_bsb_costs (and _allocation_signature
    # computes the same signatures as its grouped inline form), so both
    # entry points share one memo entry per logical cost.
    key = (bsb.uid,
           _allocation_signature(bsb, allocation, architecture.library,
                                 cache),
           _arch_cost_key(architecture, cache))
    cost = cache.costs.get(key)
    if cost is not None:
        cache.stats.hit("cost")
        return cost
    cache.stats.miss("cost")
    cost = _compute_bsb_cost(bsb, allocation, architecture, cache)
    cache.costs[key] = cost
    return cost


def _cost_plan(bsbs, library, cache):
    """Group a BSB array by identical cost-signature functions.

    A BSB's signature depends only on its designated-resource demand
    (homogeneous case) or its capable-resource set (module-selection
    case); BSBs sharing both compute identical signatures under every
    allocation, so one evaluation needs each distinct signature once.
    Returns (per-BSB group indices, group identity list).
    """
    plan_key = (cache.uid_key(bsbs), cache.pin(library))
    plan = cache.cost_plans.get(plan_key)
    if plan is not None:
        return plan
    group_index = {}
    group_list = []
    members = []
    for bsb in bsbs:
        if not len(bsb.dfg):
            identity = None
        else:
            ops = _ops_per_resource(bsb, library, cache=cache)
            capable, per_type = _capability(bsb, library, cache=cache)
            type_sets = tuple(names for _, names in sorted(
                per_type.items(), key=lambda item: item[0].value))
            identity = (ops, capable, type_sets)
        index = group_index.get(identity)
        if index is None:
            index = len(group_list)
            group_index[identity] = index
            group_list.append(identity)
        members.append(index)
    plan = (members, group_list)
    cache.cost_plans[plan_key] = plan
    return plan


def _cached_bsb_costs(bsbs, allocation, architecture, cache):
    """Memoised cost array: one signature per group, one get per BSB."""
    library = architecture.library
    members, group_list = _cost_plan(bsbs, library, cache)
    arch_key = _arch_cost_key(architecture, cache)
    get = allocation.get
    signatures = []
    for identity in group_list:
        if identity is None:
            signatures.append(("empty",))
            continue
        ops, capable, type_sets = identity
        counts = tuple((name, min(get(name, 0), need))
                       for name, need in ops)
        if all(count >= 1 for _, count in counts):
            signatures.append(("homo", counts))
        elif all(any(get(name, 0) for name in names)
                 for names in type_sets):
            signatures.append(("hetero", tuple(sorted(
                (name, count) for name, count in allocation.items()
                if count and name in capable))))
        else:
            # Unexecutable under this allocation: every such allocation
            # shares one signature (and thus one cost object), exactly
            # like _hetero_relevant's None case.
            signatures.append(("hetero", None))
    costs_memo = cache.costs
    hits = 0
    misses = 0
    result = []
    for bsb, index in zip(bsbs, members):
        key = (bsb.uid, signatures[index], arch_key)
        cost = costs_memo.get(key)
        if cost is None:
            misses += 1
            cost = _compute_bsb_cost(bsb, allocation, architecture, cache)
            costs_memo[key] = cost
        else:
            hits += 1
        result.append(cost)
    stats = cache.stats
    if hits:
        stats.hits["cost"] = stats.hits.get("cost", 0) + hits
    if misses:
        stats.misses["cost"] = stats.misses.get("cost", 0) + misses
    return result


def bsb_costs(bsbs, allocation, architecture, cache=None):
    """Per-BSB costs for the whole application, in array order."""
    if isinstance(cache, EvalCache):
        return _cached_bsb_costs(bsbs, allocation, architecture, cache)
    return [bsb_cost(bsb, allocation, architecture, cache=cache)
            for bsb in bsbs]
