"""HW/SW communication model (memory-mapped interface).

When a contiguous sequence of BSBs executes in hardware, the variables
it consumes must be written across the interface before it starts and
the variables it produces read back after it finishes.  Variables
produced *inside* the sequence for its own consumption never cross the
boundary — the reason PACE considers sequences instead of single BSBs.

Transfer volume model: one word per live-in variable on entry and one
per live-out variable on exit, once per activation of the sequence.
The activation count is the *minimum* profile count over the sequence's
BSBs: a sequence that covers a whole loop nest (test, body and the
once-executed setup block before it) is entered once per execution of
the setup block, while a fragment strictly inside a loop is entered on
every iteration.  This is the behaviour of PACE's hierarchical
communication estimate and the reason moving complete loops to hardware
is cheap while slicing loops across the boundary is expensive.
"""


def sequence_live_in(costs):
    """Variables the sequence reads before any internal definition."""
    defined = set()
    live_in = set()
    for cost in costs:
        live_in |= (cost.reads - defined)
        defined |= cost.writes
    return live_in


def sequence_live_out(costs):
    """Variables the sequence defines (visible to subsequent software).

    Without whole-program liveness (future software may or may not read
    them) the model conservatively transfers every written variable.
    """
    written = set()
    for cost in costs:
        written |= cost.writes
    return written


def sequence_communication_time(costs, architecture):
    """Cycles spent on boundary transfers for a HW sequence of BSBs."""
    if not costs:
        return 0.0
    words_in = len(sequence_live_in(costs))
    words_out = len(sequence_live_out(costs))
    activations = min(cost.profile_count for cost in costs)
    return architecture.comm_cycles_per_word * (
        (words_in + words_out) * activations)
