"""Brute-force reference partitioner (testing oracle).

Enumerates every feasible set of disjoint contiguous HW sequences by
bitmask and returns the optimal saving under the same cost model PACE
uses.  Exponential in the BSB count — usable up to ~16 BSBs — and
valuable precisely because it shares *nothing* with PACE's dynamic
program: agreement between the two on small instances validates the DP
(see tests/partition/test_pace.py and the property suite).
"""

from repro.errors import PartitionError
from repro.partition.communication import sequence_communication_time


def reference_best_saving(costs, architecture, available_area,
                          max_bsbs=18):
    """Optimal time saving over all feasible sequence selections."""
    costs = list(costs)
    count = len(costs)
    if count > max_bsbs:
        raise PartitionError(
            "reference partitioner is exponential; %d BSBs exceeds the "
            "%d-BSB guard" % (count, max_bsbs))

    def sequence_gain(first, last):
        segment = costs[first:last + 1]
        if any(not cost.movable for cost in segment):
            return None, None
        area = sum(cost.controller_area for cost in segment)
        comm = sequence_communication_time(segment, architecture)
        gain = sum(cost.sw_time - cost.hw_time
                   for cost in segment) - comm
        return gain, area

    best = 0.0
    for mask in range(2 ** count):
        total_gain = 0.0
        total_area = 0.0
        feasible = True
        index = 0
        while index < count:
            if not (mask >> index) & 1:
                index += 1
                continue
            last = index
            while last + 1 < count and (mask >> (last + 1)) & 1:
                last += 1
            gain, area = sequence_gain(index, last)
            if gain is None:
                feasible = False
                break
            total_gain += gain
            total_area += area
            index = last + 1
        if feasible and total_area <= available_area:
            if total_gain > best:
                best = total_gain
    return best
