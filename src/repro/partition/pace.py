"""The PACE dynamic-programming partitioner.

Problem statement (from Knudsen & Madsen [7]): the application is an
ordered array of BSBs.  Any set of *contiguous sequences* of BSBs may be
moved to hardware; a moved sequence

* saves the software-vs-hardware time difference of its BSBs,
* pays boundary communication on entry and exit (internal traffic is
  free — the incentive to move neighbours together), and
* consumes controller area for each moved BSB.

PACE finds the time-optimal selection under the available controller
area by dynamic programming over (BSB prefix, discretised area), the
classic knapsack-with-sequences formulation.  Area is discretised into
``area_quanta`` buckets (ceiling rounding, so the area constraint is
never violated).
"""

from dataclasses import dataclass, field

from repro.errors import PartitionError
from repro.partition.communication import sequence_communication_time
from repro.partition.speedup import speedup_percent


@dataclass
class PartitionResult:
    """Outcome of one PACE run.

    Attributes:
        hw_sequences: List of (first_index, last_index) BSB index pairs
            (inclusive) moved to hardware, in array order.
        hw_names: Names of the BSBs moved to hardware.
        sw_time_all: Execution time of the all-software solution.
        hybrid_time: Execution time of the partitioned solution,
            including communication.
        speedup: Speed-up percentage, the paper's SU metric.
        controller_area_used: Controller area consumed by moved BSBs.
        available_area: Controller area that was available.
        hw_fraction: Fraction of *operations executed* that moved to HW
            (profile-weighted; the paper's HW/SW column).
    """

    hw_sequences: list = field(default_factory=list)
    hw_names: list = field(default_factory=list)
    sw_time_all: float = 0.0
    hybrid_time: float = 0.0
    speedup: float = 0.0
    controller_area_used: float = 0.0
    available_area: float = 0.0
    hw_fraction: float = 0.0


def _sequence_tables(costs, architecture, available_area):
    """Gain and area of every feasible contiguous sequence.

    Returns dict (i, j) -> (gain_cycles, area); indices inclusive,
    0-based.  Sequences containing an unmovable BSB are absent.
    """
    count = len(costs)
    tables = {}
    for first in range(count):
        if not costs[first].movable:
            continue
        area = 0.0
        for last in range(first, count):
            cost = costs[last]
            if not cost.movable:
                break
            area += cost.controller_area
            if area > available_area:
                break
            segment = costs[first:last + 1]
            comm = sequence_communication_time(segment, architecture)
            gain = sum(c.sw_time - c.hw_time for c in segment) - comm
            tables[(first, last)] = (gain, area)
    return tables


def pace_partition(costs, architecture, available_area, area_quanta=400):
    """Run PACE and return a :class:`PartitionResult`.

    Args:
        costs: Per-BSB :class:`~repro.partition.model.BSBCost` array.
        architecture: The :class:`~repro.partition.model.TargetArchitecture`.
        available_area: Area left for controllers (total ASIC area minus
            the pre-allocated data-path).
        area_quanta: Resolution of the DP's area axis.
    """
    if area_quanta < 1:
        raise PartitionError("area_quanta must be >= 1")
    costs = list(costs)
    count = len(costs)
    sw_time_all = sum(cost.sw_time for cost in costs)

    if available_area <= 0 or count == 0:
        return PartitionResult(
            sw_time_all=sw_time_all, hybrid_time=sw_time_all,
            speedup=0.0, available_area=max(0.0, available_area))

    quantum = available_area / area_quanta
    sequences = _sequence_tables(costs, architecture, available_area)

    def quantize(area):
        quanta = int(area / quantum + 0.999999999)
        return max(1, quanta)

    # best[j][w]: max saving considering BSBs[0..j-1] with w quanta.
    # choice[j][w]: None (BSB j-1 stays in software) or (i, w_prev)
    # meaning sequence (i .. j-1) moved, transitioning from best[i][w_prev].
    width = area_quanta + 1
    best = [[0.0] * width for _ in range(count + 1)]
    choice = [[None] * width for _ in range(count + 1)]

    for j in range(1, count + 1):
        row = best[j]
        prev_row = best[j - 1]
        for w in range(width):
            row[w] = prev_row[w]
        for first in range(j):
            entry = sequences.get((first, j - 1))
            if entry is None:
                continue
            gain, area = entry
            if gain <= 0:
                continue
            needed = quantize(area)
            base = best[first]
            for w in range(needed, width):
                candidate = base[w - needed] + gain
                if candidate > row[w]:
                    row[w] = candidate
                    choice[j][w] = (first, w - needed)

    # Reconstruct the chosen sequences.
    hw_sequences = []
    j, w = count, width - 1
    total_saving = best[count][width - 1]
    while j > 0:
        picked = choice[j][w]
        if picked is None:
            j -= 1
            continue
        first, w_prev = picked
        hw_sequences.append((first, j - 1))
        j, w = first, w_prev
    hw_sequences.reverse()

    hw_names = []
    controller_area_used = 0.0
    hw_weighted_ops = 0.0
    for first, last in hw_sequences:
        for index in range(first, last + 1):
            hw_names.append(costs[index].name)
            controller_area_used += costs[index].controller_area
    hybrid_time = sw_time_all - total_saving

    # The paper's HW/SW column is a *static* measure of how much of the
    # application moved to hardware (man moves only "8%" yet gets a 31x
    # speed-up because that 8% dominates the runtime) — so weigh each
    # BSB by its per-execution size, not by its profile count.
    total_static = sum(_op_count(cost) for cost in costs)
    for first, last in hw_sequences:
        for index in range(first, last + 1):
            hw_weighted_ops += _op_count(costs[index])
    hw_fraction = hw_weighted_ops / total_static if total_static else 0.0

    return PartitionResult(
        hw_sequences=hw_sequences,
        hw_names=hw_names,
        sw_time_all=sw_time_all,
        hybrid_time=hybrid_time,
        speedup=speedup_percent(sw_time_all, hybrid_time),
        controller_area_used=controller_area_used,
        available_area=available_area,
        hw_fraction=hw_fraction,
    )


def _op_count(cost):
    """Approximate operation count of a BSB from its software time.

    BSBCost deliberately does not retain the DFG; for the HW/SW-fraction
    statistic the per-execution software time is a faithful weight (it
    is a fixed positive multiple of the operation count for uniform op
    mixes, and a better workload measure otherwise).
    """
    if cost.profile_count == 0:
        return 0
    return cost.sw_time / cost.profile_count
