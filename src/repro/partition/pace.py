"""The PACE dynamic-programming partitioner.

Problem statement (from Knudsen & Madsen [7]): the application is an
ordered array of BSBs.  Any set of *contiguous sequences* of BSBs may be
moved to hardware; a moved sequence

* saves the software-vs-hardware time difference of its BSBs,
* pays boundary communication on entry and exit (internal traffic is
  free — the incentive to move neighbours together), and
* consumes controller area for each moved BSB.

PACE finds the time-optimal selection under the available controller
area by dynamic programming over (BSB prefix, discretised area), the
classic knapsack-with-sequences formulation.  Area is discretised into
``area_quanta`` buckets (ceiling rounding, so the area constraint is
never violated).
"""

import math
from dataclasses import dataclass, field

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the environment bakes numpy in
    _np = None

from repro.errors import PartitionError
from repro.partition.speedup import speedup_percent


@dataclass
class PartitionResult:
    """Outcome of one PACE run.

    Attributes:
        hw_sequences: List of (first_index, last_index) BSB index pairs
            (inclusive) moved to hardware, in array order.
        hw_names: Names of the BSBs moved to hardware.
        sw_time_all: Execution time of the all-software solution.
        hybrid_time: Execution time of the partitioned solution,
            including communication.
        speedup: Speed-up percentage, the paper's SU metric.
        controller_area_used: Controller area consumed by moved BSBs.
        available_area: Controller area that was available.
        hw_fraction: Fraction of *operations executed* that moved to HW
            (profile-weighted; the paper's HW/SW column).
    """

    hw_sequences: list = field(default_factory=list)
    hw_names: list = field(default_factory=list)
    sw_time_all: float = 0.0
    hybrid_time: float = 0.0
    speedup: float = 0.0
    controller_area_used: float = 0.0
    available_area: float = 0.0
    hw_fraction: float = 0.0


class SequenceTable:
    """Gain and area of feasible contiguous sequences, area-prunable.

    A sequence's gain and area do not depend on the controller area
    available — only on its BSB costs and the communication model.  The
    area constraint merely *prunes* which sequences are worth keeping.
    The table therefore builds entries lazily up to the largest area
    horizon ever queried and serves smaller areas by filtering, so
    incremental-area re-partitions — the exhaustive search evaluating
    many allocations whose cost arrays coincide while their data-path
    areas differ — reuse all sequence work done so far.

    Entries map ``(first, last)`` (inclusive, 0-based) to
    ``(gain_cycles, area)``; sequences containing an unmovable BSB are
    absent.  A table must only be queried with the exact ``costs`` and
    ``architecture`` it was built from.
    """

    __slots__ = ("_costs", "_architecture", "_entries", "_horizon",
                 "_resume", "_positive", "_fields")

    def __init__(self, costs, architecture):
        self._costs = list(costs)
        self._architecture = architecture
        self._entries = {}
        self._positive = []
        self._horizon = 0.0
        # Cost attributes unpacked once into parallel tuples: the build
        # loop below touches each many times per row and dataclass
        # attribute loads dominate it otherwise.
        self._fields = tuple(
            (cost.movable, cost.controller_area, cost.reads, cost.writes,
             cost.profile_count,
             (cost.sw_time - cost.hw_time) if cost.movable else 0.0)
            for cost in self._costs)
        # Per-first continuation: first -> (next last index, area, live-in
        # set, defined set, min profile count, gain sum) — the incremental
        # state from which appending one more BSB extends the row in O(1)
        # set-delta work instead of re-walking the whole segment.  A row
        # leaves the map once it hits an unmovable BSB or the array end.
        self._resume = {first: (first, 0.0, set(), set(), float("inf"), 0.0)
                        for first, cost in enumerate(self._costs)
                        if cost.movable}

    def __len__(self):
        return len(self._entries)

    @property
    def horizon(self):
        """Largest area the table has been built for so far."""
        return self._horizon

    def entries(self, available_area):
        """dict (first, last) -> (gain, area) of sequences fitting the area.

        Growing queries extend the table in place; shrinking queries
        prune the already-built entries without recomputation.
        """
        if available_area > self._horizon:
            self._extend(available_area)
        if available_area >= self._horizon:
            return self._entries
        return {key: value for key, value in self._entries.items()
                if value[1] <= available_area}

    def positive_entries(self, available_area):
        """(last, first, gain, area) of positive-gain sequences that fit.

        The flat-list form the DP consumes: only sequences that save
        cycles can ever be chosen, so the losers are filtered once at
        build time instead of on every partition call.
        """
        if available_area > self._horizon:
            self._extend(available_area)
        if available_area >= self._horizon:
            return self._positive
        return [entry for entry in self._positive
                if entry[3] <= available_area]

    def _extend(self, horizon):
        # The incremental state mirrors sequence_communication_time /
        # sequence_live_in / sequence_live_out exactly: live-in grows by
        # the reads not yet defined, the defined set (== live-out, every
        # written variable is conservatively transferred) by the writes,
        # the activation count is the running min profile count, and the
        # gain sum accumulates in the same left-to-right order as the
        # from-scratch sum() — so entries are bit-identical to a rebuild.
        fields = self._fields
        comm_per_word = self._architecture.comm_cycles_per_word
        count = len(fields)
        entries = self._entries
        positive = self._positive
        finished = []
        for first, state in self._resume.items():
            last, area, live_in, defined, min_profile, gain_sum = state
            while last < count:
                (movable, controller_area, reads, writes, profile,
                 time_delta) = fields[last]
                if not movable:
                    last = count
                    break
                if area + controller_area > horizon:
                    break
                area += controller_area
                live_in |= (reads - defined)
                defined |= writes
                if profile < min_profile:
                    min_profile = profile
                gain_sum += time_delta
                comm = comm_per_word * ((len(live_in) + len(defined))
                                        * min_profile)
                gain = gain_sum - comm
                entries[(first, last)] = (gain, area)
                if gain > 0:
                    positive.append((last, first, gain, area))
                last += 1
            if last >= count:
                finished.append(first)
            else:
                self._resume[first] = (last, area, live_in, defined,
                                       min_profile, gain_sum)
        for first in finished:
            del self._resume[first]
        self._horizon = horizon


#: Relative slack tolerated when rounding an area up to whole quanta: a
#: sequence whose area is a float-noise epsilon above a quantum boundary
#: must not be charged a full extra quantum.  Areas reach the DP as sums
#: of float controller areas, so the noise scales with the magnitude of
#: the ratio — hence a relative, not absolute, tolerance.
_QUANTIZE_RTOL = 1e-9


def _quantize(area, quantum):
    """Quanta covering ``area``: ceiling with a relative tolerance."""
    ratio = area / quantum
    quanta = math.ceil(ratio - _QUANTIZE_RTOL * max(1.0, ratio))
    return max(1, quanta)


def _quantized_by_last(positive, quantum, count):
    """Group positive sequences by last BSB with their quanta charge.

    Returns per-last lists of (first, gain, needed), ascending first —
    the order the DP relaxes them in.  The quantization is _quantize
    inlined (one call per worthwhile sequence per partition call is
    where the function-call overhead shows); a unit test pins the two
    implementations together.
    """
    seq_by_last = [[] for _ in range(count)]
    ceil = math.ceil
    rtol = _QUANTIZE_RTOL
    for last, first, gain, area in positive:
        ratio = area / quantum
        needed = ceil(ratio - rtol * (ratio if ratio > 1.0 else 1.0))
        seq_by_last[last].append((first, gain,
                                  needed if needed > 1 else 1))
    for entries in seq_by_last:
        entries.sort()
    return seq_by_last


#: BSB-array size from which the vectorised DP beats the plain one (the
#: per-vector numpy overhead loses on the paper's small benchmarks but
#: wins ~15% on eigen-sized arrays; measured on the Table 1 suite).
_NUMPY_DP_MIN_BSBS = 32


def _dp_python(count, width, seq_by_last):
    """The knapsack-with-sequences DP, pure-Python reference path.

    Returns (total saving, chosen (first, last) pairs in array order).
    """
    best = [[0.0] * width]
    choice = [[None] * width]
    for j in range(1, count + 1):
        row = best[j - 1][:]
        choice_row = [None] * width
        for first, gain, needed in seq_by_last[j - 1]:
            if needed >= width:
                continue
            base = best[first]
            # Rows are nondecreasing in w (more area never hurts), so a
            # sequence whose best candidate cannot beat the cheapest
            # target state cannot improve anything.
            if base[width - 1 - needed] + gain <= row[needed]:
                continue
            w = needed
            for base_value in base[:width - needed]:
                candidate = base_value + gain
                if candidate > row[w]:
                    row[w] = candidate
                    choice_row[w] = (first, w - needed)
                w += 1
        best.append(row)
        choice.append(choice_row)

    hw_sequences = []
    j, w = count, width - 1
    total_saving = best[count][width - 1]
    while j > 0:
        picked = choice[j][w]
        if picked is None:
            j -= 1
            continue
        first, w_prev = picked
        hw_sequences.append((first, j - 1))
        j, w = first, w_prev
    hw_sequences.reverse()
    return total_saving, hw_sequences


def _dp_numpy(count, width, seq_by_last):
    """The same DP with whole area rows relaxed as numpy vectors.

    Per-element float64 additions and strict comparisons match the
    Python path operation for operation, so savings and choices are
    bit-identical; only the loop over area quanta moves into C.
    """
    best = _np.zeros((count + 1, width))
    choice_first = _np.full((count + 1, width), -1, dtype=_np.int32)
    choice_wprev = _np.zeros((count + 1, width), dtype=_np.int32)
    columns = _np.arange(width)
    for j in range(1, count + 1):
        row = best[j]
        row[:] = best[j - 1]
        # Rows are nondecreasing in w, so a sequence whose best
        # candidate cannot beat the cheapest target state of the
        # *pre-relaxation* row (which only grows) can never win.
        live = [(first, gain, needed)
                for first, gain, needed in seq_by_last[j - 1]
                if needed < width
                and best[first][width - 1 - needed] + gain > row[needed]]
        if not live:
            continue
        # All candidate rows at once: stack[0] keeps BSB j-1 in
        # software; stack[i] moves sequence live[i-1].  argmax takes the
        # first row achieving the maximum, which reproduces the
        # sequential strict-> relaxation's tie-break (earliest wins).
        stack = _np.full((len(live) + 1, width), -_np.inf)
        stack[0] = row
        for index, (first, gain, needed) in enumerate(live, start=1):
            stack[index, needed:] = best[first][:width - needed] + gain
        winner = stack.argmax(axis=0)
        row[:] = stack[winner, columns]
        updated = _np.nonzero(winner)[0]
        if updated.size:
            firsts = _np.fromiter((entry[0] for entry in live),
                                  dtype=_np.int32, count=len(live))
            neededs = _np.fromiter((entry[2] for entry in live),
                                   dtype=_np.int32, count=len(live))
            chosen = winner[updated] - 1
            choice_first[j, updated] = firsts[chosen]
            choice_wprev[j, updated] = updated - neededs[chosen]

    hw_sequences = []
    j, w = count, width - 1
    total_saving = float(best[count, width - 1])
    while j > 0:
        first = int(choice_first[j, w])
        if first < 0:
            j -= 1
            continue
        w_prev = int(choice_wprev[j, w])
        hw_sequences.append((first, j - 1))
        j, w = first, w_prev
    hw_sequences.reverse()
    return total_saving, hw_sequences


def pace_partition(costs, architecture, available_area, area_quanta=400,
                   sequence_table=None):
    """Run PACE and return a :class:`PartitionResult`.

    Args:
        costs: Per-BSB :class:`~repro.partition.model.BSBCost` array.
        architecture: The :class:`~repro.partition.model.TargetArchitecture`.
        available_area: Area left for controllers (total ASIC area minus
            the pre-allocated data-path).
        area_quanta: Resolution of the DP's area axis.
        sequence_table: Optional pre-built :class:`SequenceTable` for
            exactly these ``costs`` under exactly this communication
            model; reused across calls with different available areas.
    """
    if area_quanta < 1:
        raise PartitionError("area_quanta must be >= 1")
    costs = list(costs)
    count = len(costs)
    sw_time_all = sum(cost.sw_time for cost in costs)

    if available_area <= 0 or count == 0:
        return PartitionResult(
            sw_time_all=sw_time_all, hybrid_time=sw_time_all,
            speedup=0.0, available_area=max(0.0, available_area))

    quantum = available_area / area_quanta
    if sequence_table is None:
        sequence_table = SequenceTable(costs, architecture)

    # Ties on equal savings go to the earliest-relaxed sequence, so the
    # ascending-first order _quantized_by_last returns is part of the
    # DP's contract.
    width = area_quanta + 1
    seq_by_last = _quantized_by_last(
        sequence_table.positive_entries(available_area), quantum, count)

    # best[j][w]: max saving considering BSBs[0..j-1] with w quanta;
    # the choice arrays record, per state, the moved sequence's first
    # index (-1: BSB j-1 stays in software) and the w it transitioned
    # from.  Both paths perform the identical float additions and strict
    # comparisons in the identical order, so their savings and choices
    # are bit-for-bit the same; the numpy path relaxes whole area rows
    # at once, which only pays off once the instance is large enough to
    # amortise the per-vector overhead.
    if _np is not None and count >= _NUMPY_DP_MIN_BSBS:
        total_saving, hw_sequences = _dp_numpy(count, width, seq_by_last)
    else:
        total_saving, hw_sequences = _dp_python(count, width, seq_by_last)

    hw_names = []
    controller_area_used = 0.0
    hw_weighted_ops = 0.0
    for first, last in hw_sequences:
        for index in range(first, last + 1):
            hw_names.append(costs[index].name)
            controller_area_used += costs[index].controller_area
    hybrid_time = sw_time_all - total_saving

    # The paper's HW/SW column is a *static* measure of how much of the
    # application moved to hardware (man moves only "8%" yet gets a 31x
    # speed-up because that 8% dominates the runtime) — so weigh each
    # BSB by its per-execution size, not by its profile count.
    total_static = sum(_op_count(cost) for cost in costs)
    for first, last in hw_sequences:
        for index in range(first, last + 1):
            hw_weighted_ops += _op_count(costs[index])
    hw_fraction = hw_weighted_ops / total_static if total_static else 0.0

    return PartitionResult(
        hw_sequences=hw_sequences,
        hw_names=hw_names,
        sw_time_all=sw_time_all,
        hybrid_time=hybrid_time,
        speedup=speedup_percent(sw_time_all, hybrid_time),
        controller_area_used=controller_area_used,
        available_area=available_area,
        hw_fraction=hw_fraction,
    )


def _op_count(cost):
    """Approximate operation count of a BSB from its software time.

    BSBCost deliberately does not retain the DFG; for the HW/SW-fraction
    statistic the per-execution software time is a faithful weight (it
    is a fixed positive multiple of the operation count for uniform op
    mixes, and a better workload measure otherwise).
    """
    if cost.profile_count == 0:
        return 0
    return cost.sw_time / cost.profile_count
