"""Evaluate an allocation: build BSB costs, run PACE, report the result.

This is the paper's evaluation loop (section 5): the quality of an
allocation *is* the speed-up PACE achieves with it.  Both the heuristic
allocation and every allocation visited by the exhaustive search go
through this same function, so comparisons are consistent.
"""

from dataclasses import dataclass

from repro.core.rmap import RMap
from repro.errors import PartitionError
from repro.partition.model import bsb_costs
from repro.partition.pace import pace_partition, PartitionResult


@dataclass
class AllocationEvaluation:
    """An allocation together with its PACE partitioning outcome.

    Attributes:
        allocation: The evaluated allocation.
        datapath_area: Data-path area the allocation consumes.
        available_controller_area: Area left for controllers.
        partition: The :class:`PartitionResult` PACE produced.
        overhead_area: Interconnect/storage estimate charged (zero
            unless an overhead model was supplied).
        datapath_fraction: Data-path share of the ASIC area actually
            used (data-path + controllers), the paper's "Size" column.
    """

    allocation: RMap
    datapath_area: float
    available_controller_area: float
    partition: PartitionResult
    overhead_area: float = 0.0

    @property
    def speedup(self):
        return self.partition.speedup

    @property
    def datapath_fraction(self):
        used = self.datapath_area + self.partition.controller_area_used
        if used <= 0:
            return 0.0
        return self.datapath_area / used


def evaluate_allocation(bsbs, allocation, architecture, area_quanta=400,
                        cache=None, overhead_model=None):
    """Partition ``bsbs`` under ``allocation`` and return the evaluation.

    Args:
        bsbs: The application's leaf-BSB array.
        allocation: Data-path allocation (RMap or dict).
        architecture: The target architecture (defines the total area).
        area_quanta: Resolution of PACE's area axis.
        cache: Optional dict memoising hardware schedule lengths across
            evaluations (used heavily by the exhaustive search).
        overhead_model: Optional
            :class:`~repro.hwlib.overheads.OverheadModel`: charges the
            interconnect/storage estimate of the future-work extension
            against the area left for controllers.
    """
    allocation = RMap._coerce(allocation)
    datapath_area = allocation.area(architecture.library)
    if datapath_area > architecture.total_area:
        raise PartitionError(
            "allocation area %.1f exceeds total ASIC area %.1f"
            % (datapath_area, architecture.total_area))
    overhead_area = 0.0
    if overhead_model is not None:
        from repro.hwlib.overheads import total_overhead_area

        overhead_area = total_overhead_area(
            allocation, bsbs, architecture.library, model=overhead_model)
    # Overheads may leave no controller room at all — that is a valid
    # (terrible) design point, not an error: PACE then moves nothing.
    available = architecture.total_area - datapath_area - overhead_area
    costs = bsb_costs(bsbs, allocation, architecture, cache=cache)
    partition = pace_partition(costs, architecture, available,
                               area_quanta=area_quanta)
    return AllocationEvaluation(
        allocation=allocation,
        datapath_area=datapath_area,
        available_controller_area=available,
        partition=partition,
        overhead_area=overhead_area,
    )
