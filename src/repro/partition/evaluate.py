"""Evaluate an allocation: build BSB costs, run PACE, report the result.

This is the paper's evaluation loop (section 5): the quality of an
allocation *is* the speed-up PACE achieves with it.  Both the heuristic
allocation and every allocation visited by the exhaustive search go
through this same function, so comparisons are consistent.

With an :class:`~repro.engine.cache.EvalCache` (what the engine's
:class:`~repro.engine.session.Session` passes), three levels memoise:

* whole evaluations, keyed by (BSBs, architecture, allocation, quanta);
* per-BSB cost objects (see :mod:`repro.partition.model`);
* PACE :class:`~repro.partition.pace.SequenceTable` instances, keyed by
  the identity of the cost array — allocations that differ only in
  resources no BSB can use share one table and only re-run the DP.
"""

from dataclasses import dataclass

from repro.core.rmap import RMap
from repro.engine.cache import EvalCache
from repro.errors import PartitionError
from repro.partition.model import (
    _arch_cost_key,
    _compute_bsb_cost,
    _cost_plan,
    bsb_costs,
    bsb_energy_pairs,
    partition_energy,
)
from repro.partition.pace import SequenceTable, pace_partition, \
    PartitionResult


@dataclass
class AllocationEvaluation:
    """An allocation together with its PACE partitioning outcome.

    Attributes:
        allocation: The evaluated allocation.
        datapath_area: Data-path area the allocation consumes.
        available_controller_area: Area left for controllers.
        partition: The :class:`PartitionResult` PACE produced.
        overhead_area: Interconnect/storage estimate charged (zero
            unless an overhead model was supplied).
        energy: Total energy of the partitioned implementation — each
            moved BSB priced at its hardware energy, every other at
            its software energy (see
            :func:`~repro.partition.model.partition_energy`).
        datapath_fraction: Data-path share of the ASIC area actually
            used (data-path + controllers), the paper's "Size" column.
    """

    allocation: RMap
    datapath_area: float
    available_controller_area: float
    partition: PartitionResult
    overhead_area: float = 0.0
    energy: float = 0.0

    @property
    def speedup(self):
        return self.partition.speedup

    @property
    def datapath_fraction(self):
        used = self.datapath_area + self.partition.controller_area_used
        if used <= 0:
            return 0.0
        return self.datapath_area / used


def _evaluation_key(bsbs, allocation, architecture, area_quanta,
                    overhead_model, cache):
    return (cache.uid_key(bsbs),
            cache.pin(architecture.library),
            cache.processor_token(architecture.processor),
            architecture.total_area,
            architecture.comm_cycles_per_word,
            architecture.hw_cycle_ratio,
            allocation,
            area_quanta,
            None if overhead_model is None else cache.pin(overhead_model))


def evaluate_allocation(bsbs, allocation, architecture, area_quanta=400,
                        cache=None, overhead_model=None,
                        remember=True):
    """Partition ``bsbs`` under ``allocation`` and return the evaluation.

    Args:
        bsbs: The application's leaf-BSB array.
        allocation: Data-path allocation (RMap or dict).
        architecture: The target architecture (defines the total area).
        area_quanta: Resolution of PACE's area axis.
        cache: Optional memo store shared across evaluations: either a
            plain dict of hardware schedule lengths (the legacy
            contract) or an :class:`~repro.engine.cache.EvalCache`,
            which additionally memoises cost arrays, PACE sequence
            tables and whole evaluations.
        overhead_model: Optional
            :class:`~repro.hwlib.overheads.OverheadModel`: charges the
            interconnect/storage estimate of the future-work extension
            against the area left for controllers.
        remember: Store the whole evaluation (and its PACE result) in
            the cache.  Enumeration-style searches that visit each
            allocation exactly once pass ``False`` so the memo does not
            grow by one entry per candidate for ~zero hits; the
            schedule/cost/table collapsing — where the actual reuse is
            — still applies, and lookups still hit entries remembered
            by other callers.  The intermediate value ``"partitions"``
            remembers PACE results but not whole evaluations: what a
            search backed by a persistent store wants, since the DP
            runs are exactly what a warm restart can skip.

    Note on resolutions: ``area_quanta`` defaults differ deliberately
    across entry points — 400 here (one-off evaluations favour
    fidelity), 200 in :func:`~repro.core.exhaustive
    .exhaustive_best_allocation` and 150 in the engine's
    :class:`~repro.engine.design_point.DesignPoint` (searches trade
    resolution for throughput over many candidates).  Results are only
    comparable across calls made at one resolution.
    """
    allocation = RMap._coerce(allocation)
    engine_cache = cache if isinstance(cache, EvalCache) else None
    if engine_cache is not None:
        key = _evaluation_key(bsbs, allocation, architecture, area_quanta,
                              overhead_model, engine_cache)
        evaluation = engine_cache.evals.get(key)
        if evaluation is not None:
            engine_cache.stats.hit("eval")
            return evaluation
        engine_cache.stats.miss("eval")

    datapath_area = allocation.area(architecture.library)
    if datapath_area > architecture.total_area:
        raise PartitionError(
            "allocation area %.1f exceeds total ASIC area %.1f"
            % (datapath_area, architecture.total_area))
    overhead_area = 0.0
    if overhead_model is not None:
        from repro.hwlib.overheads import total_overhead_area

        overhead_area = total_overhead_area(
            allocation, bsbs, architecture.library, model=overhead_model)
    # Overheads may leave no controller room at all — that is a valid
    # (terrible) design point, not an error: PACE then moves nothing.
    available = architecture.total_area - datapath_area - overhead_area
    costs = bsb_costs(bsbs, allocation, architecture, cache=cache)

    sequence_table = None
    if engine_cache is not None:
        # Cost objects are memoised (hence pinned) by bsb_costs, so
        # their ids are a stable, cheap identity for the whole array.
        table_key = (tuple(map(id, costs)),
                     architecture.comm_cycles_per_word)
        sequence_table = engine_cache.tables.get(table_key)
        if sequence_table is None:
            engine_cache.stats.miss("table")
            sequence_table = SequenceTable(costs, architecture)
            engine_cache.tables[table_key] = sequence_table
        else:
            engine_cache.stats.hit("table")

    partition = None
    partition_key = None
    if engine_cache is not None:
        # A PartitionResult depends only on (costs, communication model,
        # available area, quanta) — the table key already encodes the
        # first two, so allocations that differ only in resources no BSB
        # uses while their data-path areas coincide share one DP run.
        # Keyed by the cost-id tuple rather than the table's own id so a
        # persistent store can re-key the entry by cost content hashes.
        partition_key = (table_key, available, area_quanta)
        partition = engine_cache.partitions.get(partition_key)
        if partition is None:
            engine_cache.stats.miss("partition")
        else:
            engine_cache.stats.hit("partition")
    if partition is None:
        partition = pace_partition(costs, architecture, available,
                                   area_quanta=area_quanta,
                                   sequence_table=sequence_table)
        if engine_cache is not None and remember:
            engine_cache.partitions[partition_key] = partition
    evaluation = AllocationEvaluation(
        allocation=allocation,
        datapath_area=datapath_area,
        available_controller_area=available,
        partition=partition,
        overhead_area=overhead_area,
        energy=partition_energy(
            bsb_energy_pairs(bsbs, architecture, cache=cache),
            partition.hw_sequences),
    )
    if engine_cache is not None and remember is True:
        engine_cache.evals[key] = evaluation
    return evaluation


class EvaluationScan:
    """Neighbour-aware evaluator for enumeration-order candidate scans.

    :func:`evaluate_allocation` rebuilds every stage key and probes
    every memo from scratch per candidate; on a warm scan that
    key-building dominates the wall clock.  Consecutive candidates of a
    lexicographic (or branch-and-bound) scan differ in a handful of
    resource counts, so a scan-scoped evaluator can *diff* the
    allocation against the previous candidate and carry the unchanged
    cost groups — signatures, cost objects and thereby the sequence
    table identity — forward without touching their memos.

    The results are bit-identical to :func:`evaluate_allocation` with
    the same cache: a cost group whose relevant counts did not change
    has, by construction, the same signature, hence the same memo key,
    hence the same (memoised, hence identical) cost object a fresh
    probe would return.  The hit/miss accounting matches too — the cost
    memo stores unconditionally, so a carried group's probe would have
    been a hit.

    One scan instance serves one (BSB array, architecture, quanta)
    triple; ``overhead_model`` evaluations are out of scope (the
    searches this serves never charge overheads).
    """

    __slots__ = ("_bsbs", "_architecture", "_area_quanta", "_cache",
                 "_remember", "_library", "_members", "_groups",
                 "_deps", "_arch_key", "_key_prefix", "_prev",
                 "_signatures", "_costs")

    def __init__(self, bsbs, architecture, area_quanta=400, cache=None,
                 remember=False):
        if not isinstance(cache, EvalCache):
            raise PartitionError(
                "EvaluationScan requires an EvalCache (the diffed scan "
                "state is only sound against one shared memo store)")
        self._bsbs = bsbs
        self._architecture = architecture
        self._area_quanta = area_quanta
        self._cache = cache
        self._remember = remember
        library = architecture.library
        self._library = library
        members, group_list = _cost_plan(bsbs, library, cache)
        self._members = members
        self._groups = group_list
        # Per group, the resource names its signature can depend on:
        # designated demand plus every module-selection-capable unit.
        # A candidate step that changes none of these counts provably
        # leaves the group's signature (and cost objects) unchanged.
        deps = []
        for identity in group_list:
            if identity is None:
                deps.append(())
            else:
                ops, capable, _ = identity
                deps.append(tuple(sorted(
                    {name for name, _ in ops} | set(capable))))
        self._deps = deps
        self._arch_key = _arch_cost_key(architecture, cache)
        self._key_prefix = (cache.uid_key(bsbs), cache.pin(library),
                            cache.processor_token(architecture.processor),
                            architecture.total_area,
                            architecture.comm_cycles_per_word,
                            architecture.hw_cycle_ratio)
        self._prev = None
        self._signatures = [None] * len(group_list)
        self._costs = [None] * len(bsbs)

    def evaluate(self, allocation):
        """Evaluate one candidate; same contract as
        :func:`evaluate_allocation` (including the
        :class:`PartitionError` on an allocation over the ASIC area and
        the per-stage hit/miss accounting)."""
        allocation = RMap._coerce(allocation)
        cache = self._cache
        architecture = self._architecture
        key = self._key_prefix + (allocation, self._area_quanta, None)
        evaluation = cache.evals.get(key)
        if evaluation is not None:
            # Early return leaves the carried state pointing at the
            # last *computed* candidate, which is exactly what the next
            # diff must compare against.
            cache.stats.hit("eval")
            return evaluation
        cache.stats.miss("eval")
        datapath_area = allocation.area(architecture.library)
        if datapath_area > architecture.total_area:
            raise PartitionError(
                "allocation area %.1f exceeds total ASIC area %.1f"
                % (datapath_area, architecture.total_area))
        available = architecture.total_area - datapath_area
        costs = self._costs_for(allocation)

        table_key = (tuple(map(id, costs)),
                     architecture.comm_cycles_per_word)
        sequence_table = cache.tables.get(table_key)
        if sequence_table is None:
            cache.stats.miss("table")
            sequence_table = SequenceTable(costs, architecture)
            cache.tables[table_key] = sequence_table
        else:
            cache.stats.hit("table")

        partition_key = (table_key, available, self._area_quanta)
        partition = cache.partitions.get(partition_key)
        if partition is None:
            cache.stats.miss("partition")
        else:
            cache.stats.hit("partition")
        if partition is None:
            partition = pace_partition(costs, architecture, available,
                                       area_quanta=self._area_quanta,
                                       sequence_table=sequence_table)
            if self._remember:
                cache.partitions[partition_key] = partition
        evaluation = AllocationEvaluation(
            allocation=allocation,
            datapath_area=datapath_area,
            available_controller_area=available,
            partition=partition,
            energy=partition_energy(
                bsb_energy_pairs(self._bsbs, architecture, cache=cache),
                partition.hw_sequences),
        )
        if self._remember is True:
            cache.evals[key] = evaluation
        return evaluation

    def _costs_for(self, allocation):
        """The candidate's cost array, diffed against the previous one.

        Mirrors ``partition.model._cached_bsb_costs`` — the inline
        signature forms must stay in sync with `_allocation_signature`
        — but only re-keys the groups whose dependency counts changed.
        """
        cache = self._cache
        prev = self._prev
        get = allocation.get
        signatures = self._signatures
        if prev is None:
            changed = range(len(self._groups))
        else:
            prev_get = prev.get
            changed = [index for index, deps in enumerate(self._deps)
                       if any(get(name, 0) != prev_get(name, 0)
                              for name in deps)]
        for index in changed:
            identity = self._groups[index]
            if identity is None:
                signatures[index] = ("empty",)
                continue
            ops, capable, type_sets = identity
            counts = tuple((name, min(get(name, 0), need))
                           for name, need in ops)
            if all(count >= 1 for _, count in counts):
                signatures[index] = ("homo", counts)
            elif all(any(get(name, 0) for name in names)
                     for names in type_sets):
                signatures[index] = ("hetero", tuple(sorted(
                    (name, count) for name, count in allocation.items()
                    if count and name in capable)))
            else:
                signatures[index] = ("hetero", None)
        stale = frozenset(changed)
        costs_memo = cache.costs
        arch_key = self._arch_key
        result = self._costs
        hits = 0
        misses = 0
        for position, (bsb, index) in enumerate(zip(self._bsbs,
                                                    self._members)):
            if prev is not None and index not in stale:
                hits += 1  # carried: a fresh probe would have hit
                continue
            cost_key = (bsb.uid, signatures[index], arch_key)
            cost = costs_memo.get(cost_key)
            if cost is None:
                misses += 1
                cost = _compute_bsb_cost(bsb, allocation,
                                         self._architecture, cache)
                costs_memo[cost_key] = cost
            else:
                hits += 1
            result[position] = cost
        stats = cache.stats
        if hits:
            stats.hits["cost"] = stats.hits.get("cost", 0) + hits
        if misses:
            stats.misses["cost"] = stats.misses.get("cost", 0) + misses
        self._prev = allocation
        return result
