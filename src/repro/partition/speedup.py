"""Speed-up metric (section 5).

"Speed-up is computed as the decrease in execution time from an all
software solution to a combined hardware/software solution including
hardware/software communication time estimates" — reported in percent,
e.g. 1610% for ``straight`` (a 17.1x faster hybrid).
"""

from repro.errors import PartitionError


def speedup_percent(sw_time_all, hybrid_time):
    """SU = (T_all_sw - T_hybrid) / T_hybrid * 100."""
    if hybrid_time <= 0:
        if sw_time_all <= 0:
            return 0.0
        raise PartitionError("hybrid time must be positive, got %r"
                             % (hybrid_time,))
    return (sw_time_all - hybrid_time) / hybrid_time * 100.0


def speedup_factor(speedup):
    """Convert a percentage speed-up back into a time ratio."""
    return 1.0 + speedup / 100.0
