"""Multi-ASIC co-design: the paper's second future-work extension.

"Another extension is the generalization to target architectures that
contain more than one ASIC."  This module implements that
generalization as a greedy round-based scheme that composes the
existing machinery:

* round ``i`` runs Algorithm 1 for ASIC ``i`` over the BSBs still in
  software, producing that ASIC's data-path allocation;
* PACE then partitions with the BSBs already moved in earlier rounds
  pinned (they cannot move twice), consuming ASIC ``i``'s controller
  area;
* the loop continues until the ASIC list is exhausted or a round moves
  nothing.

Each ASIC gets an allocation tuned to the workload *remaining* after
its predecessors claimed the hottest blocks — the behaviour a designer
iterating the single-ASIC flow by hand would produce.  Inter-ASIC
communication is not modelled (each sequence still pays its HW/SW
boundary costs); the paper leaves the extension entirely open, and
this round-based scheme is the natural conservative reading.
"""

from dataclasses import dataclass, field

from repro.core.allocator import allocate
from repro.core.rmap import RMap
from repro.errors import PartitionError
from repro.partition.model import TargetArchitecture, bsb_costs
from repro.partition.pace import pace_partition
from repro.partition.speedup import speedup_percent


@dataclass
class AsicPlan:
    """One ASIC's share of the multi-ASIC co-design.

    Attributes:
        index: Position in the ASIC list (0-based).
        total_area: The ASIC's area budget.
        allocation: Data-path allocation produced for this ASIC.
        datapath_area: Area consumed by the allocation.
        hw_names: BSBs moved to this ASIC.
        saving: Execution cycles saved by this ASIC's partition.
    """

    index: int
    total_area: float
    allocation: RMap
    datapath_area: float
    hw_names: list = field(default_factory=list)
    saving: float = 0.0


@dataclass
class MultiAsicResult:
    """Outcome of the multi-ASIC co-design.

    Attributes:
        asics: Per-ASIC plans, in round order.
        sw_time_all: All-software execution time.
        hybrid_time: Final execution time across CPU + all ASICs.
        speedup: Total speed-up percentage.
    """

    asics: list = field(default_factory=list)
    sw_time_all: float = 0.0
    hybrid_time: float = 0.0
    speedup: float = 0.0

    def hw_names(self):
        """All BSBs in hardware, across ASICs."""
        names = []
        for plan in self.asics:
            names.extend(plan.hw_names)
        return names


def _pinned_costs(costs, pinned_names):
    """Mark already-moved BSBs unmovable for subsequent PACE rounds."""
    pinned = []
    for cost in costs:
        if cost.name in pinned_names:
            pinned.append(type(cost)(
                name=cost.name, profile_count=cost.profile_count,
                sw_time=cost.sw_time, hw_time=None,
                controller_area=float("inf"),
                reads=cost.reads, writes=cost.writes))
        else:
            pinned.append(cost)
    return pinned


def multi_asic_codesign(bsbs, library, asic_areas, processor=None,
                        comm_cycles_per_word=4.0, area_quanta=200,
                        session=None):
    """Allocate and partition across several ASICs.

    Args:
        bsbs: The application's leaf-BSB array.
        library: The hardware resource library.
        asic_areas: Iterable of per-ASIC total areas (gate equivalents).
        processor: Software model (defaults to the standard core).
        comm_cycles_per_word: HW/SW interface cost.
        area_quanta: PACE area resolution per round.
        session: Optional engine
            :class:`~repro.engine.session.Session`; rounds share its
            cache, so schedules and costs computed for ASIC ``i`` are
            reused when ASIC ``i+1`` re-examines the same BSBs (a
            private session is created otherwise).
    """
    from repro.swmodel.processor import default_processor

    if session is None:
        from repro.engine.session import Session

        session = Session(library=library)
    asic_areas = [float(area) for area in asic_areas]
    if not asic_areas:
        raise PartitionError("need at least one ASIC area")
    if any(area <= 0 for area in asic_areas):
        raise PartitionError("ASIC areas must be positive")
    processor = processor or default_processor()

    bsbs = list(bsbs)
    moved = set()
    plans = []
    sw_time_all = None
    total_saving = 0.0

    for index, area in enumerate(asic_areas):
        architecture = TargetArchitecture(
            processor=processor, library=library, total_area=area,
            comm_cycles_per_word=comm_cycles_per_word)
        candidates = [bsb for bsb in bsbs if bsb.name not in moved]
        if not candidates:
            break
        result = allocate(candidates, library, area=area,
                          cache=session.cache)
        allocation = result.allocation
        datapath_area = allocation.area(library)
        available = area - datapath_area

        costs = bsb_costs(bsbs, allocation, architecture,
                          cache=session.cache)
        if sw_time_all is None:
            sw_time_all = sum(cost.sw_time for cost in costs)
        partition = pace_partition(_pinned_costs(costs, moved),
                                   architecture, available,
                                   area_quanta=area_quanta)
        saving = partition.sw_time_all - partition.hybrid_time
        plan = AsicPlan(index=index, total_area=area,
                        allocation=allocation,
                        datapath_area=datapath_area,
                        hw_names=list(partition.hw_names),
                        saving=saving)
        plans.append(plan)
        moved.update(partition.hw_names)
        total_saving += saving
        if not partition.hw_names:
            break

    if sw_time_all is None:
        from repro.swmodel.estimator import application_software_time

        sw_time_all = application_software_time(bsbs, processor)
    hybrid_time = sw_time_all - total_saving
    return MultiAsicResult(
        asics=plans,
        sw_time_all=sw_time_all,
        hybrid_time=hybrid_time,
        speedup=speedup_percent(sw_time_all, hybrid_time),
    )
