"""The paper's four benchmark applications.

Table 1 evaluates the allocation algorithm on ``straight`` (straight-
line DSP code from the LYCOS paper [9]), ``hal`` (the Paulin-Knight
differential-equation benchmark [11]), ``man`` (Mandelbrot set [12]) and
``eigen`` (eigenvector computation for cloud-motion interpolation [8]).
The original sources are unpublished; these reimplementations in the
mini-C frontend preserve the documented characteristics (size, operation
mix, the constant-loading BSB of ``man``, the division-heavy blocks of
``eigen``) — see DESIGN.md's substitution notes.
"""

from repro.apps.registry import (
    load_application,
    application_names,
    application_spec,
    ApplicationSpec,
)

__all__ = [
    "load_application",
    "application_names",
    "application_spec",
    "ApplicationSpec",
]
