"""``straight``: straight-line DSP code from the LYCOS paper [9].

A sample-processing pipeline dominated by straight-line arithmetic: an
unrolled 8-tap FIR filter, a biquad section, a polynomial waveshaper
and an energy accumulator, with small saturation conditionals between
the stages.  The structure (a few large, highly parallel basic blocks
plus small control blocks) is what gives the paper's balanced result:
both the data-path and the controllers get a substantial share, and the
heuristic allocation matches the best allocation.

Paper row (Table 1): 146 lines, SU/SU(best) = 1610%/1610%, Size 62%,
HW/SW 58%/42%.
"""

NAME = "straight"

SOURCE = """\
// Straight-line DSP pipeline: FIR -> biquad -> waveshaper -> energy.
// Q8 fixed point throughout (1.0 == 256).
input n;
input seed;
output energy;
output peak;
output last;

int s0; int s1; int s2; int s3;
int s4; int s5; int s6; int s7;
int c0; int c1; int c2; int c3;
int c4; int c5; int c6; int c7;
int acc; int fir; int x;
int b0; int b1; int b2; int a1; int a2;
int w; int w1; int w2; int biq;
int p1; int p2; int p3; int shaped;
int t0; int t1; int t2; int t3;
int t4; int t5; int t6; int t7;
int i; int rnd;

// Filter coefficient block: one straight-line group of constant loads.
c0 = 12;
c1 = 34;
c2 = 78;
c3 = 120;
c4 = 120;
c5 = 78;
c6 = 34;
c7 = 12;
b0 = 64;
b1 = 128;
b2 = 64;
a1 = 90;
a2 = 40;

// State initialisation.
s0 = 0; s1 = 0; s2 = 0; s3 = 0;
s4 = 0; s5 = 0; s6 = 0; s7 = 0;
w1 = 0; w2 = 0;
energy = 0;
peak = 0;
rnd = seed;

for (i = 0; i < n; i = i + 1) {
    // Pseudo-random input sample (linear congruential step).
    rnd = (rnd * 1103 + 12345) & 32767;
    x = rnd - 16384;

    // Shift the delay line (pure moves, fully parallel).
    s7 = s6;
    s6 = s5;
    s5 = s4;
    s4 = s3;
    s3 = s2;
    s2 = s1;
    s1 = s0;
    s0 = x;

    // Unrolled 8-tap FIR: eight multiplies feeding an adder tree.
    t0 = (c0 * s0) >> 8;
    t1 = (c1 * s1) >> 8;
    t2 = (c2 * s2) >> 8;
    t3 = (c3 * s3) >> 8;
    t4 = (c4 * s4) >> 8;
    t5 = (c5 * s5) >> 8;
    t6 = (c6 * s6) >> 8;
    t7 = (c7 * s7) >> 8;
    fir = ((t0 + t1) + (t2 + t3)) + ((t4 + t5) + (t6 + t7));

    // Direct-form-II biquad section.
    w = fir - (((a1 * w1) >> 8) + ((a2 * w2) >> 8));
    biq = ((b0 * w) >> 8) + ((b1 * w1) >> 8) + ((b2 * w2) >> 8);
    w2 = w1;
    w1 = w;

    // Cubic waveshaper: shaped = biq - biq^3 / 3 (Q8; the division by
    // three is strength-reduced to a multiply by 85/256).
    p1 = (biq * biq) >> 8;
    p2 = (p1 * biq) >> 8;
    p3 = (p2 * 85) >> 8;
    shaped = biq - p3;

    // Saturation control block.
    if (shaped > 8192) {
        shaped = 8192;
    } else {
        if (shaped < -8192) {
            shaped = -8192;
        }
    }

    // Peak tracking.
    if (shaped > peak) {
        peak = shaped;
    }

    // Energy accumulation.
    acc = (shaped * shaped) >> 8;
    energy = energy + (acc >> 4);
    last = shaped;
}
"""

#: Profiling inputs: 64 samples of pseudo-random input.
INPUTS = {
    "n": 64,
    "seed": 7,
}

#: ASIC area for the Table 1 experiment (gate equivalents).
TOTAL_AREA = 15000.0

#: Budget for the exhaustive search.
MAX_EVALUATIONS = 12000


def load():
    """Compile and profile the application."""
    from repro.cdfg.builder import compile_source

    return compile_source(SOURCE, name=NAME, inputs=INPUTS)
