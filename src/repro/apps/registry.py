"""Application registry: load benchmarks by name, with Table 1 metadata."""

from dataclasses import dataclass

from repro.apps import eigen, hal, mandelbrot, straight
from repro.errors import ReproError

_MODULES = {
    "straight": straight,
    "hal": hal,
    "man": mandelbrot,
    "eigen": eigen,
}


@dataclass(frozen=True)
class ApplicationSpec:
    """Experiment parameters and paper-reported values for one benchmark.

    Attributes:
        name: Benchmark name (Table 1's Example column).
        total_area: ASIC area used in our Table 1 reproduction.
        max_evaluations: Exhaustive-search budget.
        paper_lines: The paper's Lines column.
        paper_su: The paper's SU for the algorithm's allocation (%).
        paper_su_best: The paper's SU for the best allocation (%).
        paper_size_percent: The paper's Size column (%).
        paper_hw_percent: The paper's HW share of the HW/SW column (%).
    """

    name: str
    total_area: float
    max_evaluations: int
    paper_lines: int
    paper_su: float
    paper_su_best: float
    paper_size_percent: float
    paper_hw_percent: float


_PAPER_ROWS = {
    "straight": ApplicationSpec("straight", straight.TOTAL_AREA,
                                straight.MAX_EVALUATIONS,
                                146, 1610.0, 1610.0, 62.0, 58.0),
    "hal": ApplicationSpec("hal", hal.TOTAL_AREA, hal.MAX_EVALUATIONS,
                           61, 4173.0, 4173.0, 93.0, 80.0),
    "man": ApplicationSpec("man", mandelbrot.TOTAL_AREA,
                           mandelbrot.MAX_EVALUATIONS,
                           103, 30.0, 3081.0, 92.0, 8.0),
    "eigen": ApplicationSpec("eigen", eigen.TOTAL_AREA,
                             eigen.MAX_EVALUATIONS,
                             488, 20.0, 311.0, 82.0, 19.0),
}


def application_names():
    """The benchmark names, in Table 1 order."""
    return ["straight", "hal", "man", "eigen"]


def load_application(name):
    """Compile and profile the named benchmark; returns a Program."""
    try:
        module = _MODULES[name]
    except KeyError:
        raise ReproError(
            "unknown application %r (expected one of %s)"
            % (name, ", ".join(application_names()))) from None
    return module.load()


def application_source(name):
    """The (source text, profiling inputs) identity of one benchmark.

    This is everything the frontend compile depends on, available
    *without* compiling — the persistent program store fingerprints it
    to decide whether a stored compiled program may stand in for a
    fresh :func:`load_application` call.
    """
    try:
        module = _MODULES[name]
    except KeyError:
        raise ReproError(
            "unknown application %r (expected one of %s)"
            % (name, ", ".join(application_names()))) from None
    return module.SOURCE, dict(module.INPUTS)


def application_spec(name):
    """Experiment parameters / paper values for the named benchmark."""
    try:
        return _PAPER_ROWS[name]
    except KeyError:
        raise ReproError(
            "unknown application %r (expected one of %s)"
            % (name, ", ".join(application_names()))) from None
