"""``man``: Mandelbrot-set computation [12].

Structure (mirroring the paper's description of the benchmark):

* a per-pixel *palette block* that loads a long row of constant
  coefficients — "a lot of parallel loading of constant values for
  multiplication ... situated in a single BSB".  Its ASAP schedule is
  one control step, so the ECA estimate is tiny and the block's CONST
  urgency is enormous: the allocation algorithm moves it first and then
  keeps granting it constant generators, exactly the failure mode the
  paper reports (SU 30% vs best 3081% before one design iteration);
* the escape-time iteration — a small, extremely compute-intensive BSB
  (the "8% of the application" that carries nearly all the runtime);
* per-row and per-pixel coordinate setup, palette selection branches
  and statistics blocks that account for the bulk of the static code.

Values are Q8 fixed point (1.0 == 256).

Paper row (Table 1): 103 lines, SU/SU(best) = 30%/3081%, Size 92%,
HW/SW 8%/92%.
"""

NAME = "man"

SOURCE = """\
// Mandelbrot set, Q8 fixed point.  Region [-2,1] x [-1.5,1.5].
input width;
input height;
input maxiter;
output total;
output inside;
output maxcolor;

int px; int py; int cr; int ci;
int zr; int zi; int zr2; int zi2; int tmp;
int it; int esc; int color; int bright;
int k0; int k1; int k2; int k3; int k4; int k5;
int k6; int k7; int k8; int k9; int k10; int k11;
int k12; int k13; int k14; int k15; int k16; int k17;
int k18; int k19; int k20; int k21; int k22; int k23;
int rowbase; int rowstep; int colstep;

total = 0;
inside = 0;
maxcolor = 0;
rowstep = 768 / height;
colstep = 768 / width;

for (py = 0; py < height; py = py + 1) {
    // Row setup block.
    rowbase = py * rowstep;
    ci = rowbase - 384;

    for (px = 0; px < width; px = px + 1) {
        cr = px * colstep - 512;
        zr = 0;
        zi = 0;
        it = 0;
        esc = 0;

        // Escape-time iteration: the compute-intensive core.
        while ((it < maxiter) & (esc == 0)) {
            zr2 = (zr * zr) >> 8;
            zi2 = (zi * zi) >> 8;
            if (zr2 + zi2 > 1024) {
                esc = 1;
            } else {
                tmp = zr2 - zi2 + cr;
                zi = ((2 * (zr * zi)) >> 8) + ci;
                zr = tmp;
                it = it + 1;
            }
        }

        // Palette block: parallel loading of constant values for the
        // colour multiplications below (one BSB, ASAP length 1).
        k0 = 17;  k1 = 31;  k2 = 9;   k3 = 27;
        k4 = 45;  k5 = 13;  k6 = 57;  k7 = 3;
        k8 = 23;  k9 = 39;  k10 = 11; k11 = 29;
        k12 = 51; k13 = 7;  k14 = 61; k15 = 19;
        k16 = 37; k17 = 5;  k18 = 43; k19 = 15;
        k20 = 53; k21 = 25; k22 = 47; k23 = 33;

        // Palette selection: Horner chains keep the multiplications
        // serial (the constants, not the products, are parallel).
        if (esc == 1) {
            color = ((((((k0 * it) >> 4) + k1) * it) >> 5) + k2) * it;
            color = (color >> 6) + ((k3 * it) >> 3) + k4;
            bright = ((((k5 * it) >> 4) + k6) * it) >> 5;
            color = color + bright + k7 + k8 + k9;
        } else {
            color = k10 + k11 + ((k12 * it) >> 6);
            bright = ((((k13 * it) >> 5) + k14) * it) >> 6;
            color = color + bright + k15 + k16;
            inside = inside + 1;
        }

        // Statistics block.
        color = color + ((k17 + k18 + k19 + k20 + k21 + k22 + k23) >> 3);
        total = total + color;
        if (color > maxcolor) {
            maxcolor = color;
        }
    }
}
"""

#: Profiling inputs: a 20x20 grid, 24 iterations max.
INPUTS = {
    "width": 20,
    "height": 20,
    "maxiter": 24,
}

#: ASIC area for the Table 1 experiment (gate equivalents) — tight, so
#: wasted constant generators crowd out controllers (the paper's story).
TOTAL_AREA = 5200.0

#: Budget for the exhaustive search (the constant-generator axis makes
#: the space large; sampling mirrors the paper's eigen footnote).
MAX_EVALUATIONS = 4000


def load():
    """Compile and profile the application."""
    from repro.cdfg.builder import compile_source

    return compile_source(SOURCE, name=NAME, inputs=INPUTS)
