"""``eigen``: Jacobi eigenvector computation [8].

The original application computes eigenvectors inside an algorithm that
interpolates cloud-motion pictures from a stream of meteo-satellite
images.  This reimplementation keeps that pipeline:

1. *feature extraction* — two synthetic image frames (linear
   congruential texture) are reduced to a 4-dimensional feature vector
   per window;
2. *covariance accumulation* — the 4x4 symmetric covariance matrix of
   the features, built with load/store traffic over the window loop;
3. *Jacobi eigen-solver* — cyclic sweeps over the pivot pairs.  The
   rotation-angle block computes fixed-point divisions and Newton
   square roots and ends with *two independent divisions on the same
   denominator* (cosine and sine normalisation) — the parallel-division
   pattern that makes the allocator grant a second divider (1800 gate
   equivalents) whose area crowds out controller room;
4. *motion interpolation* — the dominant eigenvector weights the pixel
   displacement written back per window.

The rotation updates use the Numerical-Recipes form ``a' = a -
s*(b + h*a)`` whose multiplications chain through the subtraction, so
the ASAP multiplier parallelism (and hence the multiplier restriction
cap) stays low; the parallel resource pressure of this benchmark is in
its divisions — which is why the paper's fix is "one design iteration
where only the number of allocated resources that executes division was
reduced by one".

Values are Q8 fixed point (1.0 == 256).

Paper row (Table 1): 488 lines, SU/SU(best) = 20%/311%, Size 82%,
HW/SW 19%/81%.
"""

NAME = "eigen"

SOURCE = """\
// Eigenvector computation for cloud-motion interpolation.
// Q8 fixed point (1.0 == 256), 4x4 covariance, cyclic Jacobi sweeps.
input frames;
input seed;
output trace;
output motion;
output v0out;

int img1[64];
int img2[64];
int a[16];
int v[16];
int feat[4];
int disp[16];

int f; int i; int j; int k; int p; int q;
int rnd; int pix; int diff;
int sweep; int apq; int app; int aqq;
int num; int den; int theta;
int x; int s; int r; int t;
int x2; int s2; int c; int sn; int h;
int akp; int akq; int vkp; int vkq;
int trace; int motion; int v0out;
int w0; int w1; int w2; int w3; int wsum;

motion = 0;
rnd = seed;

for (f = 0; f < frames; f = f + 1) {
    // ---- Feature extraction: synthesise two 8x8 frames. ----
    for (i = 0; i < 64; i = i + 1) {
        rnd = (rnd * 1103 + 12345) & 32767;
        img1[i] = rnd & 255;
        rnd = (rnd * 1103 + 12345) & 32767;
        img2[i] = rnd & 255;
    }

    // ---- Covariance accumulation over the window. ----
    for (i = 0; i < 16; i = i + 1) {
        a[i] = 0;
    }
    for (i = 0; i < 16; i = i + 1) {
        // Four features per window position: values and gradients.
        pix = (i << 2);
        feat[0] = img1[pix];
        feat[1] = img2[pix];
        feat[2] = img1[pix + 1] - img1[pix];
        feat[3] = img2[pix + 1] - img2[pix];
        for (j = 0; j < 4; j = j + 1) {
            for (k = 0; k < 4; k = k + 1) {
                a[(j << 2) + k] = a[(j << 2) + k]
                    + ((feat[j] * feat[k]) >> 8);
            }
        }
    }
    // Diagonal loading keeps the matrix well conditioned.
    for (i = 0; i < 4; i = i + 1) {
        a[(i << 2) + i] = a[(i << 2) + i] + 256 + 128 * i;
    }

    // ---- Eigenvector accumulator starts as the identity. ----
    for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 4; j = j + 1) {
            if (i == j) {
                v[(i << 2) + j] = 256;
            } else {
                v[(i << 2) + j] = 0;
            }
        }
    }

    // ---- Cyclic Jacobi sweeps. ----
    for (sweep = 0; sweep < 2; sweep = sweep + 1) {
        for (p = 0; p < 3; p = p + 1) {
            for (q = p + 1; q < 4; q = q + 1) {
                apq = a[(p << 2) + q];
                if (apq != 0) {
                    // Rotation angle: theta = (aqq - app) / (2 apq).
                    app = a[(p << 2) + p];
                    aqq = a[(q << 2) + q];
                    num = aqq - app;
                    den = 2 * apq;
                    theta = (num << 8) / den;
                    // r = sqrt(theta^2 + 1), three Newton steps.
                    x = ((theta * theta) >> 8) + 256;
                    s = (x >> 1) + 128;
                    s = (s + (x << 8) / s) >> 1;
                    s = (s + (x << 8) / s) >> 1;
                    s = (s + (x << 8) / s) >> 1;
                    if (theta < 0) {
                        r = theta - s;
                    } else {
                        r = theta + s;
                    }
                    t = (256 << 8) / r;
                    // s2 = sqrt(1 + t^2), three Newton steps.
                    x2 = ((t * t) >> 8) + 256;
                    s2 = (x2 >> 1) + 128;
                    s2 = (s2 + (x2 << 8) / s2) >> 1;
                    s2 = (s2 + (x2 << 8) / s2) >> 1;
                    s2 = (s2 + (x2 << 8) / s2) >> 1;
                    // Two independent divisions on s2: cos and sin.
                    c = (256 << 8) / s2;
                    sn = (t << 8) / s2;
                    h = (sn << 8) / (256 + c);

                    // Diagonal and pivot updates.
                    a[(p << 2) + p] = app - ((t * apq) >> 8);
                    a[(q << 2) + q] = aqq + ((t * apq) >> 8);
                    a[(p << 2) + q] = 0;
                    a[(q << 2) + p] = 0;

                    // Row/column rotation (Numerical-Recipes form:
                    // multiplications chain through the update).
                    for (k = 0; k < 4; k = k + 1) {
                        if ((k != p) & (k != q)) {
                            akp = a[(k << 2) + p];
                            akq = a[(k << 2) + q];
                            a[(k << 2) + p] = akp
                                - ((sn * (akq + ((h * akp) >> 8))) >> 8);
                            a[(k << 2) + q] = akq
                                + ((sn * (akp - ((h * akq) >> 8))) >> 8);
                            a[(p << 2) + k] = a[(k << 2) + p];
                            a[(q << 2) + k] = a[(k << 2) + q];
                        }
                    }
                    // Eigenvector accumulator rotation.
                    for (k = 0; k < 4; k = k + 1) {
                        vkp = v[(k << 2) + p];
                        vkq = v[(k << 2) + q];
                        v[(k << 2) + p] = vkp
                            - ((sn * (vkq + ((h * vkp) >> 8))) >> 8);
                        v[(k << 2) + q] = vkq
                            + ((sn * (vkp - ((h * vkq) >> 8))) >> 8);
                    }
                }
            }
        }
    }

    // ---- Motion interpolation with the dominant eigenvector. ----
    w0 = v[0];
    w1 = v[4];
    w2 = v[8];
    w3 = v[12];
    wsum = (w0 + w1 + w2 + w3) >> 2;
    for (i = 0; i < 16; i = i + 1) {
        diff = img2[(i << 2)] - img1[(i << 2)];
        disp[i] = (diff * wsum) >> 8;
        motion = motion + disp[i];
    }
}

// Convergence trace: sum of the diagonal after the last frame.
trace = a[0] + a[5] + a[10] + a[15];
v0out = v[0];
"""

#: Profiling inputs: two frames through the pipeline.
INPUTS = {
    "frames": 2,
    "seed": 99,
}

#: ASIC area for the Table 1 experiment (gate equivalents) — sized so
#: the allocator grants a *second* divider (1800 GE) whose area crowds
#: out controller room; the design iteration's first step removes it.
TOTAL_AREA = 15000.0

#: The full space is too large to exhaust (the paper's footnote makes
#: the same point); the search samples within this budget.
MAX_EVALUATIONS = 3000


def load():
    """Compile and profile the application."""
    from repro.cdfg.builder import compile_source

    return compile_source(SOURCE, name=NAME, inputs=INPUTS)
