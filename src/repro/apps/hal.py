"""``hal``: the Paulin-Knight differential-equation benchmark [11].

The classic HAL example solves y'' + 3xy' + 3y = 0 by forward Euler
integration.  Values are Q8 fixed point (1.0 == 256); products of two
Q8 numbers are renormalised with ``>> 8``.  The hot loop carries almost
all the work, which is why the paper reports 80% of the application in
hardware and a 93% data-path share: one big BSB with heavy multiply
parallelism dominates.

Paper row (Table 1): 61 lines, SU/SU(best) = 4173%/4173%, Size 93%,
HW/SW 80%/20%.
"""

NAME = "hal"

#: Q8 fixed-point scale.
SCALE = 256

SOURCE = """\
// HAL differential equation solver (Paulin & Knight), Q8 fixed point.
// Integrates y'' = -3*x*y' - 3*y with step dx from x0 to a.
input x0;
input y0;
input u0;
input dx;
input a;
output xf;
output yf;
output uf;
output steps;

int x; int y; int u;
int x1; int y1; int u1;
int t1; int t2; int t3; int t4; int t5; int t6;

// Initialisation block: move the inputs into the state registers and
// prescale the constant 3 into Q8.
x = x0;
y = y0;
u = u0;
steps = 0;

while (x < a) {
    // x1 = x + dx
    x1 = x + dx;

    // u1 = u - 3*x*u*dx - 3*y*dx      (all products renormalised)
    t1 = (x * u) >> 8;
    t2 = (t1 * dx) >> 8;
    t3 = 3 * t2;
    t4 = (y * dx) >> 8;
    t5 = 3 * t4;
    u1 = u - t3 - t5;

    // y1 = y + u*dx
    t6 = (u * dx) >> 8;
    y1 = y + t6;

    // Commit the new state.
    x = x1;
    u = u1;
    y = y1;
    steps = steps + 1;
}

xf = x;
yf = y;
uf = u;
"""

#: Profiling inputs: integrate from x=0 to a=2.0 with dx=1/16 (32 steps;
#: the small step keeps the forward-Euler recurrence numerically stable).
INPUTS = {
    "x0": 0,
    "y0": 1 * SCALE,
    "u0": 1 * SCALE,
    "dx": SCALE // 16,
    "a": 2 * SCALE,
}

#: ASIC area for the Table 1 experiment (gate equivalents).
TOTAL_AREA = 9000.0

#: Budget for the exhaustive search (the space is small).
MAX_EVALUATIONS = 20000


def load():
    """Compile and profile the application."""
    from repro.cdfg.builder import compile_source

    return compile_source(SOURCE, name=NAME, inputs=INPUTS)
