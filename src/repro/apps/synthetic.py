"""Synthetic BSB-array generators for benchmarking and stress tests.

Section 4.4's complexity discussion is parameterised by L (BSB count)
and k (operations per BSB); these generators produce deterministic
pseudo-random BSB arrays at any (L, k) point, used by the complexity
benchmark, the PACE scaling benchmark and fuzz-style tests.
"""

from repro.bsb.bsb import LeafBSB
from repro.ir.dfg import DFG
from repro.ir.ops import OpType

#: Operation mix of the generic generator (weighted towards arithmetic).
_DEFAULT_MIX = [OpType.ADD, OpType.ADD, OpType.MUL, OpType.SUB,
                OpType.CONST, OpType.SHIFT, OpType.CMP]


class _Lcg:
    """Tiny deterministic linear congruential generator."""

    def __init__(self, seed):
        self.state = (seed * 2654435761) % (2 ** 31) or 1

    def next(self, bound):
        self.state = (self.state * 1103515245 + 12345) % (2 ** 31)
        return self.state % bound


def synthetic_bsb(ops, seed=1, name="synth", chain_probability=0.5,
                  mix=None, profile=1):
    """One synthetic leaf BSB with ``ops`` operations.

    ``chain_probability`` (per mille-free: evaluated as x/100 on a
    0..99 draw) controls how often an operation depends on its
    predecessor — 0 yields fully parallel blocks (maximum FURO), 1
    yields chains (zero FURO).
    """
    rng = _Lcg(seed)
    mix = list(mix or _DEFAULT_MIX)
    dfg = DFG(name)
    previous = None
    threshold = int(chain_probability * 100)
    for index in range(ops):
        op = dfg.new_operation(mix[rng.next(len(mix))],
                               label="o%d" % index)
        if previous is not None and rng.next(100) < threshold:
            dfg.add_dependency(previous, op)
        previous = op
    return LeafBSB(dfg, profile_count=profile, name=name,
                   reads={"in_%s" % name}, writes={"out_%s" % name})


def synthetic_bsb_array(bsb_count, ops_per_bsb, seed=7,
                        chain_probability=0.5, mix=None):
    """A deterministic array of ``bsb_count`` synthetic BSBs.

    Profile counts ramp linearly (1, 2, ..., L) so priorities are
    non-trivial; reads/writes chain each BSB to its successor so the
    communication model sees realistic sequences.
    """
    bsbs = []
    for index in range(bsb_count):
        bsb = synthetic_bsb(ops_per_bsb, seed=seed + index,
                            name="S%d" % index,
                            chain_probability=chain_probability,
                            mix=mix, profile=index + 1)
        bsbs.append(bsb)
    # Chain dataflow: each BSB reads what its predecessor wrote.
    for previous, current in zip(bsbs, bsbs[1:]):
        current.reads = frozenset({next(iter(previous.writes))})
    return bsbs
