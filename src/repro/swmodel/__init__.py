"""Software execution model: the processor side of the target.

In the co-processor target architecture, operations mapped to software
execute serially on the processor.  The model assigns each operation
type a cycle count; the software time of a BSB is its profile count
times the sum of its operations' cycles.
"""

from repro.swmodel.processor import Processor, default_processor
from repro.swmodel.estimator import (
    bsb_software_time,
    application_software_time,
)

__all__ = [
    "Processor",
    "default_processor",
    "bsb_software_time",
    "application_software_time",
]
