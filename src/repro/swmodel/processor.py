"""Processor model: per-operation software cycle counts."""

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.ir.ops import OpType


def _default_cycle_table():
    """Cycle counts of a simple embedded RISC core.

    Multiplication and division are the expensive operations — the
    imbalance that makes hardware data-paths attractive in the first
    place and that the paper's benchmarks (Mandelbrot, eigen) stress.
    """
    return {
        OpType.ADD: 2,
        OpType.SUB: 2,
        OpType.MUL: 18,
        OpType.DIV: 40,
        OpType.MOD: 40,
        OpType.CONST: 1,
        OpType.CMP: 2,
        OpType.SHIFT: 2,
        OpType.AND: 1,
        OpType.OR: 1,
        OpType.XOR: 1,
        OpType.NOT: 1,
        OpType.NEG: 2,
        OpType.MOV: 1,
        OpType.LOAD: 4,
        OpType.STORE: 4,
    }


@dataclass(frozen=True)
class Processor:
    """A processor with a per-operation-type cycle table.

    Attributes:
        name: Identifier of the core.
        cycle_table: Mapping :class:`OpType` -> cycles per execution.
        sequential_overhead: Cycles added per operation for fetch/decode
            and register traffic (models the serial instruction stream).
        energy_per_cycle: Energy the core dissipates per executed cycle
            (arbitrary energy units) — software operations are priced
            as their cycle count times this knob.
    """

    name: str = "risc-core"
    cycle_table: dict = field(default_factory=_default_cycle_table)
    sequential_overhead: int = 2
    energy_per_cycle: float = 0.5

    def cycles_for(self, optype):
        """Software cycles to execute one operation of ``optype``."""
        try:
            base = self.cycle_table[optype]
        except KeyError:
            raise ReproError("processor %r has no cycle count for %s"
                             % (self.name, optype)) from None
        return base + self.sequential_overhead

    def validate(self):
        """Raise ``ReproError`` on non-positive cycle counts."""
        for optype, cycles in self.cycle_table.items():
            if cycles < 1:
                raise ReproError("cycle count for %s must be >= 1, got %r"
                                 % (optype, cycles))
        if self.sequential_overhead < 0:
            raise ReproError("sequential overhead must be >= 0")
        if self.energy_per_cycle <= 0:
            raise ReproError("energy per cycle must be positive")
        return self


def default_processor():
    """The processor model used by the reproduction's experiments."""
    return Processor().validate()
