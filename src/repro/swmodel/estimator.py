"""Software time estimation for BSBs and whole applications."""


def bsb_software_time(bsb, processor):
    """Cycles to execute ``bsb`` in software, over the whole run.

    Software executes operations serially, so the time is the plain sum
    of per-operation cycles, scaled by the profile count.
    """
    per_execution = sum(processor.cycles_for(op.optype)
                        for op in bsb.dfg.operations())
    return bsb.profile_count * per_execution


def application_software_time(bsbs, processor):
    """Cycles for the all-software implementation of the application."""
    return sum(bsb_software_time(bsb, processor) for bsb in bsbs)


def bsb_software_energy(bsb, processor):
    """Energy to execute ``bsb`` in software, over the whole run.

    Priced as the serial cycle count times the processor's per-cycle
    energy, so the software side of the energy model shares every
    cycle-accounting decision (per-op tables, sequential overhead,
    profile scaling) with the time estimate above.
    """
    return bsb_software_time(bsb, processor) * processor.energy_per_cycle
