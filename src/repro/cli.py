"""Command-line driver: regenerate the paper's tables and figures.

Usage (after ``pip install -e .``)::

    lycos-repro table1              # Table 1 (runs the exhaustive search)
    lycos-repro table1 --apps hal   # a subset of the benchmarks
    lycos-repro fig3 --app hal      # Figure 3's trade-off sweep
    lycos-repro s51 --app man       # section 5.1 controller optimism
    lycos-repro iterate --app eigen # the man/eigen design-iteration fix
    lycos-repro apps                # benchmark inventory
    lycos-repro allocate --app hal  # just run Algorithm 1, with trace
    lycos-repro sweep --apps hal man --fractions 0.5 1.0 --workers 4
                                    # engine-cached design-space sweep
    lycos-repro sweep --apps hal --cache-dir .lycos-cache
                                    # persistent store: reruns are warm
    lycos-repro cache info --cache-dir .lycos-cache
                                    # inspect / clear the store
    lycos-repro cache compact --cache-dir .lycos-cache --max-bytes 2000000
                                    # LRU-evict down to a size budget
    lycos-repro serve --cache-dir .lycos-cache --workers 2
                                    # exploration service over one store
    lycos-repro serve --host 0.0.0.0 --token-file /run/secret --scheduler fair \
                      --queue-cap 8192 --job-ttl 3600 --max-jobs 64
                                    # hardened multi-tenant service
    lycos-repro serve --join host:7421 --token-file /run/secret --slots 2
                                    # contribute this machine's CPU as a
                                    # remote engine of that coordinator
    lycos-repro submit --apps hal --fractions 0.5 1.0 --wait
                                    # queue a grid on the service
    lycos-repro status --job job-1  # poll a submitted job
    lycos-repro results --job job-1 # stream a job's results
    lycos-repro cancel --job job-1  # cancel its pending points
    lycos-repro report --apps hal --cache-dir .lycos-cache -o report.html
                                    # self-contained HTML sweep report
    lycos-repro export --what cdfg --cache-dir .lycos-cache
                                    # warm DOT export (0 compiles)
    lycos-repro status --http http://127.0.0.1:8421 --html dash.html
                                    # snapshot the live dashboard

or ``python -m repro <command>``.  Every command that runs the engine
accepts ``--cache-dir`` (table1, fig3, s51, iterate, allocate,
multiasic, sweep, serve): point them at one directory and they share a
persistent warm store — compiled programs included, so a second
process's ``table1``/``sweep`` performs zero frontend compiles
(``cache info`` lists the ``programs`` shard; the store-backed
commands print a ``frontend compiles`` line the CI asserts on).
"""

import argparse
import sys

from repro.apps.registry import application_names, application_spec
from repro.core.allocator import allocate
from repro.core.exhaustive import SEARCH_MODES
from repro.core.objective import OBJECTIVE_NAMES
from repro.hwlib.library import default_library
from repro.report.experiments import (
    design_iteration_report,
    fig3_sweep,
    render_fig3,
    render_s51,
    render_table1,
    s51_controller_rows,
    table1_rows,
)


def _add_app_argument(parser, default="hal"):
    parser.add_argument("--app", default=default,
                        choices=application_names(),
                        help="benchmark application (default: %(default)s)")


def _add_cache_dir_argument(parser):
    parser.add_argument("--cache-dir", default=None,
                        help="persistent engine store directory "
                             "(reruns replay cached stages from disk)")


def _add_service_address(parser):
    parser.add_argument("--host", default="127.0.0.1",
                        help="service address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=7421,
                        help="service port (default: %(default)s)")


def _add_token_arguments(parser):
    parser.add_argument("--token", default=None,
                        help="shared auth token (prefer --token-file: "
                             "argv is visible to other processes)")
    parser.add_argument("--token-file", default=None,
                        help="file holding the shared auth token "
                             "(stripped of surrounding whitespace)")


def _add_http_client_arguments(parser):
    parser.add_argument("--http", default=None, metavar="URL",
                        help="talk to the HTTP gateway at this URL "
                             "(e.g. http://127.0.0.1:8421) instead of "
                             "the TCP service; --host/--port/--token "
                             "are then ignored")
    parser.add_argument("--api-key", default=None,
                        help="API key for a keyed HTTP gateway "
                             "(prefer --api-key-file: argv is visible "
                             "to other processes)")
    parser.add_argument("--api-key-file", default=None,
                        help="file holding the gateway API key "
                             "(stripped of surrounding whitespace)")


def _resolve_api_key(args):
    """The API key of --api-key/--api-key-file, or None."""
    if args.api_key is not None and args.api_key_file is not None:
        raise SystemExit("pass --api-key or --api-key-file, not both")
    if args.api_key_file is not None:
        try:
            with open(args.api_key_file, "r",
                      encoding="utf-8") as handle:
                key = handle.read().strip()
        except OSError as exc:
            raise SystemExit("cannot read --api-key-file: %s" % exc)
        if not key:
            raise SystemExit("--api-key-file %s is empty"
                             % args.api_key_file)
        return key
    if args.api_key is not None and not args.api_key:
        raise SystemExit("--api-key must not be empty")
    return args.api_key


def _resolve_token(args):
    """The shared token of --token/--token-file, or None."""
    if args.token is not None and args.token_file is not None:
        raise SystemExit("pass --token or --token-file, not both")
    if args.token_file is not None:
        try:
            with open(args.token_file, "r", encoding="utf-8") as handle:
                token = handle.read().strip()
        except OSError as exc:
            raise SystemExit("cannot read --token-file: %s" % exc)
        if not token:
            raise SystemExit("--token-file %s is empty"
                             % args.token_file)
        return token
    if args.token is not None and not args.token:
        raise SystemExit("--token must not be empty")
    return args.token


def _session(args):
    """A session honouring the command's ``--cache-dir``."""
    from repro.engine.session import Session

    return Session(cache_dir=args.cache_dir)


def _grid_points(apps, fractions, policies, quanta):
    """The DesignPoint grid the sweep/submit commands share."""
    from repro.engine import DesignPoint

    points = []
    for app in (apps or application_names()):
        spec = application_spec(app)
        for fraction in fractions:
            for policy in policies:
                points.append(DesignPoint(
                    app=app,
                    area=fraction * spec.total_area,
                    policy=None if policy == "none" else policy,
                    quanta=quanta))
    return points


def _check_grid_args(args):
    if args.quanta < 1:
        raise SystemExit("--quanta must be >= 1")
    if not args.fractions:
        raise SystemExit("--fractions needs at least one value")
    if any(fraction <= 0 for fraction in args.fractions):
        raise SystemExit("--fractions must be positive")
    if not args.policies:
        raise SystemExit("--policies needs at least one value")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="lycos-repro",
        description="Reproduction of the LYCOS hardware resource "
                    "allocation system (DATE 1998).")
    commands = parser.add_subparsers(dest="command", required=True)

    table1 = commands.add_parser(
        "table1", help="regenerate Table 1 (allocation quality)")
    table1.add_argument("--apps", nargs="*", default=None,
                        choices=application_names(),
                        help="subset of benchmarks (default: all four)")
    table1.add_argument("--budget", type=int, default=None,
                        help="override the exhaustive-search budget")
    table1.add_argument("--workers", type=int, default=1,
                        help="worker processes for the exhaustive "
                             "search (default: serial)")
    table1.add_argument("--cache-dir", default=None,
                        help="persistent engine store directory "
                             "(reruns replay cached stages from disk)")
    table1.add_argument("--search", choices=SEARCH_MODES, default="brute",
                        help="exhaustive-search mode: brute enumerates "
                             "every candidate, pruned walks the same "
                             "space branch-and-bound (identical winner)")
    table1.add_argument("--objective", choices=OBJECTIVE_NAMES,
                        default="speedup",
                        help="ranking tournament for the exhaustive "
                             "best: speedup (the paper's contract), "
                             "area, energy, or pareto (default plus "
                             "the non-dominated front) "
                             "(default: %(default)s)")

    fig3 = commands.add_parser(
        "fig3", help="regenerate Figure 3's data-path budget sweep")
    _add_app_argument(fig3)
    _add_cache_dir_argument(fig3)

    s51 = commands.add_parser(
        "s51", help="section 5.1: controller-estimate optimism")
    _add_app_argument(s51, default="man")
    _add_cache_dir_argument(s51)

    iterate = commands.add_parser(
        "iterate", help="the reduce-only design iteration (man/eigen fix)")
    _add_app_argument(iterate, default="man")
    _add_cache_dir_argument(iterate)

    commands.add_parser("apps", help="list the benchmark applications")

    alloc = commands.add_parser(
        "allocate", help="run Algorithm 1 on one benchmark, with trace")
    _add_app_argument(alloc)
    alloc.add_argument("--area", type=float, default=None,
                       help="override the ASIC area (gate equivalents)")
    _add_cache_dir_argument(alloc)

    multi = commands.add_parser(
        "multiasic", help="multi-ASIC co-design (future-work extension)")
    _add_app_argument(multi, default="eigen")
    multi.add_argument("--chips", type=int, default=2,
                       help="number of ASICs to split the area across")
    _add_cache_dir_argument(multi)

    overheads = commands.add_parser(
        "overheads",
        help="interconnect/storage charging (future-work extension)")
    _add_app_argument(overheads, default="man")

    export = commands.add_parser(
        "export", help="export Graphviz DOT for a benchmark")
    _add_app_argument(export)
    export.add_argument("--what", default="bsb",
                        choices=["dfg", "cdfg", "bsb"],
                        help="graph to export (dfg = hottest BSB's DFG)")
    _add_cache_dir_argument(export)

    sweep = commands.add_parser(
        "sweep", help="design-space sweep through the cached "
                      "exploration engine")
    sweep.add_argument("--apps", nargs="*", default=None,
                       choices=application_names(),
                       help="benchmarks to sweep (default: all four)")
    sweep.add_argument("--fractions", nargs="*", type=float,
                       default=[0.5, 0.75, 1.0],
                       help="ASIC areas as fractions of each app's "
                            "Table 1 area (default: %(default)s)")
    sweep.add_argument("--policies", nargs="*", default=["none"],
                       choices=["none", "fastest", "cheapest", "balanced"],
                       help="module-selection policies; 'none' is the "
                            "paper's designated-unit Algorithm 1")
    sweep.add_argument("--quanta", type=int, default=150,
                       help="PACE area resolution (default: %(default)s)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (default: serial)")
    sweep.add_argument("--cache-dir", default=None,
                       help="persistent engine store directory shared "
                            "by all workers; a second run replays the "
                            "pipeline stages from disk")
    sweep.add_argument("--objective", choices=OBJECTIVE_NAMES,
                       default="speedup",
                       help="ranking of the swept points: speedup "
                            "(default, the historical best line), "
                            "area, energy, or pareto (adds the "
                            "non-dominated front and its hypervolume)")

    report = commands.add_parser(
        "report", help="render a design-space sweep into one "
                       "self-contained static HTML report")
    report.add_argument("--apps", nargs="*", default=None,
                        choices=application_names(),
                        help="benchmarks to sweep (default: all four)")
    report.add_argument("--fractions", nargs="*", type=float,
                        default=[0.5, 0.75, 1.0],
                        help="ASIC areas as fractions of each app's "
                             "Table 1 area (default: %(default)s)")
    report.add_argument("--policies", nargs="*", default=["none"],
                        choices=["none", "fastest", "cheapest",
                                 "balanced"],
                        help="module-selection policies; 'none' is the "
                             "paper's designated-unit Algorithm 1")
    report.add_argument("--quanta", type=int, default=150,
                        help="PACE area resolution (default: "
                             "%(default)s)")
    report.add_argument("--workers", type=int, default=1,
                        help="worker processes (default: serial)")
    report.add_argument("--cache-dir", default=None,
                        help="persistent engine store directory; the "
                             "report's analytics replay against it and "
                             "cold/warm runs render identical bytes")
    report.add_argument("-o", "--output", default="report.html",
                        help="HTML file to write (default: "
                             "%(default)s)")
    report.add_argument("--title", default="LYCOS design-space report",
                        help="report headline (default: %(default)s)")

    cache = commands.add_parser(
        "cache", help="inspect, compact or clear a persistent engine "
                      "store")
    cache.add_argument("action", choices=["info", "compact", "clear"],
                       help="info: per-stage entry counts and sizes; "
                            "compact: LRU-evict to a size/age budget; "
                            "clear: delete every shard")
    cache.add_argument("--cache-dir", required=True,
                       help="store directory to operate on")
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="compact: evict least-recently-used "
                            "entries until the store fits this many "
                            "bytes")
    cache.add_argument("--max-age", type=float, default=None,
                       metavar="SECONDS",
                       help="compact: evict entries not used for this "
                            "many seconds")

    serve = commands.add_parser(
        "serve", help="run the exploration service: concurrent clients "
                      "submit design points against one shared store")
    _add_cache_dir_argument(serve)
    _add_service_address(serve)
    serve.add_argument("--workers", type=int, default=1,
                       help="evaluation workers; 1 runs in-process, "
                            ">1 keeps a persistent process pool "
                            "(default: %(default)s)")
    serve.add_argument("--flush-interval", type=float, default=2.0,
                       help="seconds between store flushes while busy "
                            "(default: %(default)s)")
    serve.add_argument("--scheduler", default="fifo",
                       choices=["fifo", "sjf", "fair"],
                       help="queue policy: fifo (submission order), "
                            "sjf (smallest job first), fair "
                            "(per-client weighted round-robin) "
                            "(default: %(default)s)")
    serve.add_argument("--queue-cap", type=int, default=None,
                       help="max admitted-but-unfinished points; an "
                            "over-cap submit is rejected with a "
                            "retry-after hint (default: unbounded)")
    serve.add_argument("--job-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="drop finished jobs (and their results) "
                            "this long after completion (default: "
                            "keep forever)")
    serve.add_argument("--max-jobs", type=int, default=None,
                       help="retain at most this many finished jobs, "
                            "oldest evicted first (default: "
                            "unbounded)")
    serve.add_argument("--local-engines", type=int, default=1,
                       help="local engines of the coordinator; 0 makes "
                            "a pure coordinator that only schedules "
                            "for joined workers (default: %(default)s)")
    serve.add_argument("--steal-delay", type=float, default=0.25,
                       metavar="SECONDS",
                       help="how long a placed point must wait before "
                            "an idle engine may steal it off its "
                            "affine engine's lane (default: "
                            "%(default)s)")
    serve.add_argument("--engine-timeout", type=float, default=60.0,
                       metavar="SECONDS",
                       help="seconds of silence before a joined engine "
                            "is declared dead and its points re-queued "
                            "(default: %(default)s)")
    serve.add_argument("--join", default=None, metavar="HOST:PORT",
                       help="worker mode: instead of serving clients, "
                            "join the coordinator at this address as a "
                            "remote engine (lease points, evaluate "
                            "locally, ship results and store deltas "
                            "home)")
    serve.add_argument("--label", default=None,
                       help="worker mode: suggested engine name (the "
                            "coordinator uniquifies it)")
    serve.add_argument("--slots", type=int, default=None,
                       help="worker mode: points leased at once "
                            "(default: --workers)")
    serve.add_argument("--http", type=int, default=None,
                       metavar="PORT",
                       help="also mount the REST/JSON gateway on this "
                            "port (same host): POST/GET /v1/jobs with "
                            "strong-ETag conditional caching")
    serve.add_argument("--api-keys-file", default=None, metavar="PATH",
                       help="JSON file mapping API key -> client id "
                            "(or {client, weight, quota}); arms "
                            "gateway auth, fair-scheduler identity "
                            "and per-key in-flight quotas (required "
                            "for --http beyond loopback)")
    _add_token_arguments(serve)

    submit = commands.add_parser(
        "submit", help="submit a design-point grid to a running "
                       "service")
    submit.add_argument("--apps", nargs="*", default=None,
                        choices=application_names(),
                        help="benchmarks to submit (default: all four)")
    submit.add_argument("--fractions", nargs="*", type=float,
                        default=[0.5, 0.75, 1.0],
                        help="ASIC areas as fractions of each app's "
                             "Table 1 area (default: %(default)s)")
    submit.add_argument("--policies", nargs="*", default=["none"],
                        choices=["none", "fastest", "cheapest",
                                 "balanced"],
                        help="module-selection policies; 'none' is the "
                             "paper's designated-unit Algorithm 1")
    submit.add_argument("--quanta", type=int, default=150,
                        help="PACE area resolution (default: "
                             "%(default)s)")
    submit.add_argument("--wait", action="store_true",
                        help="stream the results instead of returning "
                             "after the job id")
    submit.add_argument("--weight", type=int, default=1,
                        help="fair-scheduler share of this client "
                             "(default: %(default)s)")
    submit.add_argument("--objective", choices=OBJECTIVE_NAMES,
                        default="speedup",
                        help="objective recorded on the job (travels "
                             "with it, shown by status; per-point "
                             "evaluation is objective-independent) "
                             "(default: %(default)s)")
    _add_service_address(submit)
    _add_token_arguments(submit)
    _add_http_client_arguments(submit)

    status = commands.add_parser(
        "status", help="poll a service job (or the service itself)")
    status.add_argument("--job", default=None,
                        help="job id; omitted, pings the service and "
                             "lists every job")
    status.add_argument("--html", default=None, metavar="PATH",
                        help="fetch the gateway's HTML document "
                             "instead: the job report with --job, the "
                             "live dashboard without; requires --http")
    _add_service_address(status)
    _add_token_arguments(status)
    _add_http_client_arguments(status)

    results = commands.add_parser(
        "results", help="stream a service job's per-point results")
    results.add_argument("--job", required=True, help="job id")
    _add_service_address(results)
    _add_token_arguments(results)
    _add_http_client_arguments(results)

    cancel = commands.add_parser(
        "cancel", help="cancel a service job's pending points")
    cancel.add_argument("--job", required=True, help="job id")
    _add_service_address(cancel)
    _add_token_arguments(cancel)
    _add_http_client_arguments(cancel)
    return parser


def cmd_table1(args):
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    session = _session(args) if args.cache_dir is not None else None
    rows = table1_rows(names=args.apps, max_evaluations=args.budget,
                       workers=args.workers, session=session,
                       search=args.search, objective=args.objective)
    print(render_table1(rows))
    for row in rows:
        print()
        print("%s: allocation      %s" % (row.name, row.allocation))
        print("%s: best allocation %s" % (row.name, row.best_allocation))
    # Grouped after every allocation line so the CI brute-vs-pruned
    # check can byte-compare everything before the first stats line.
    print()
    for row in rows:
        print("%s: search stats    search=%s evaluations=%d space=%d "
              "subtrees_pruned=%d bound_evaluations=%d"
              % (row.name, row.search, row.evaluations, row.space,
                 row.subtrees_pruned, row.bound_evaluations))
    # Objective-specific reporting is strictly additive and gated on a
    # non-default objective, so the default (and --objective speedup)
    # output stays byte-identical to what it always was.
    if args.objective == "energy":
        print()
        for row in rows:
            print("%s: best energy     %.2f" % (row.name,
                                                row.best_energy))
    elif args.objective == "pareto":
        print()
        for row in rows:
            front = row.front
            if front is None:
                continue
            print("%s: pareto front    %d point(s), hypervolume %.3f"
                  % (row.name, len(front), front.hypervolume()))
            for (speedup, neg_area, neg_energy), _ in front.points():
                print("%s:   su %.1f%%  data-path %.0f  energy %.2f"
                      % (row.name, speedup, -neg_area, -neg_energy))
    if session is not None:
        # Store-backed runs report their cache economy (the CI warm
        # rerun, the program-store check and the compaction check all
        # parse these lines).
        stats = session.stats
        print()
        print("overall hit rate: %.1f%% (%d hits / %d lookups)"
              % (100.0 * stats.overall_hit_rate(), stats.hit_count(),
                 stats.hit_count() + stats.miss_count()))
        print("frontend compiles: %d (program store hits: %d)"
              % (stats.miss_count("compile"),
                 stats.hit_count("compile")))


def cmd_fig3(args):
    session = _session(args)
    points = fig3_sweep(name=args.app, session=session)
    session.save_store()
    print(render_fig3(points, name=args.app))


def cmd_s51(args):
    session = _session(args)
    rows = s51_controller_rows(args.app, session=session)
    session.save_store()
    print(render_s51(rows, args.app))
    optimistic = sum(1 for row in rows if row["ratio"] > 1.0)
    print("\n%d of %d BSBs have an actual controller larger than the "
          "optimistic ECA." % (optimistic, len(rows)))


def cmd_iterate(args):
    session = _session(args)
    report = design_iteration_report(args.app, session=session)
    session.save_store()
    print("Design iteration on %s" % report["name"])
    print("  initial allocation: %s" % report["initial_allocation"])
    print("  initial speed-up:   %.0f%%" % report["initial_speedup"])
    for step in report["steps"]:
        print("  step: %s" % step)
    print("  final allocation:   %s" % report["final_allocation"])
    print("  final speed-up:     %.0f%%" % report["final_speedup"])


def cmd_apps(args):
    from repro.apps.registry import load_application

    for name in application_names():
        spec = application_spec(name)
        program = load_application(name)
        ops = sum(len(bsb.dfg) for bsb in program.bsbs)
        print("%-9s %4d lines  %3d BSBs  %5d operations  "
              "ASIC area %.0f  (paper: SU %.0f%%/%.0f%%)"
              % (name, program.source_lines(), len(program.bsbs), ops,
                 spec.total_area, spec.paper_su, spec.paper_su_best))


def cmd_allocate(args):
    # Routed through a session for the store: warm sub-stage memos
    # (restrictions, FURO, ECA) replay from --cache-dir, while the
    # trace-carrying top-level run itself stays live.
    session = _session(args)
    library = session.library
    spec = application_spec(args.app)
    area = args.area if args.area is not None else spec.total_area
    program = session.program(args.app)
    result = allocate(program.bsbs, library, area=area, keep_trace=True,
                      cache=session.cache)
    session.save_store()
    print("Algorithm 1 on %s (area %.0f):" % (args.app, area))
    for line in result.trace_lines():
        print("  " + line)
    print("allocation:      %s" % result.allocation)
    print("pseudo partition: %d of %d BSBs in hardware"
          % (len(result.hw_bsb_names), len(program.bsbs)))
    print("area: datapath %.0f + controllers %.0f, remaining %.0f"
          % (result.datapath_area, result.controller_area,
             result.remaining_area))
    print("runtime: %.3f s" % result.runtime_seconds)


def cmd_multiasic(args):
    from repro.partition.multi_asic import multi_asic_codesign

    session = _session(args)
    library = session.library
    spec = application_spec(args.app)
    if args.chips < 1:
        raise SystemExit("--chips must be >= 1")
    program = session.program(args.app)
    areas = [spec.total_area / args.chips] * args.chips
    result = multi_asic_codesign(program.bsbs, library, areas,
                                 session=session)
    session.save_store()
    print("%s across %d ASIC(s) of %.0f GE each:"
          % (args.app, args.chips, areas[0]))
    for plan in result.asics:
        print("  ASIC %d: %d BSBs, data-path %.0f GE, saving %.0f "
              "cycles" % (plan.index + 1, len(plan.hw_names),
                          plan.datapath_area, plan.saving))
        print("          %s" % plan.allocation)
    print("total speed-up: %.0f%%" % result.speedup)


def cmd_overheads(args):
    from repro.apps.registry import load_application
    from repro.core.iteration import design_iteration
    from repro.hwlib.overheads import OverheadModel
    from repro.partition.evaluate import evaluate_allocation
    from repro.partition.model import TargetArchitecture

    library = default_library()
    spec = application_spec(args.app)
    program = load_application(args.app)
    architecture = TargetArchitecture(library=library,
                                      total_area=spec.total_area)
    allocation = allocate(program.bsbs, library,
                          area=spec.total_area).allocation
    model = OverheadModel()
    plain = evaluate_allocation(program.bsbs, allocation, architecture)
    charged = evaluate_allocation(program.bsbs, allocation, architecture,
                                  overhead_model=model)
    print("%s allocation: %s" % (args.app, allocation))
    print("SU ignoring interconnect/storage: %.0f%%" % plain.speedup)
    print("SU charging %.0f GE of overheads:  %.0f%%"
          % (charged.overhead_area, charged.speedup))
    iterated = design_iteration(program.bsbs, allocation, architecture,
                                overhead_model=model)
    print("overhead-aware design iteration -> %.0f%%:"
          % iterated.final_evaluation.speedup)
    for step in iterated.steps:
        print("  %s" % step)


def cmd_sweep(args):
    from repro.report.tables import render_table

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    _check_grid_args(args)
    session = _session(args)
    points = _grid_points(args.apps, args.fractions, args.policies,
                          args.quanta)
    results = session.explore(points, workers=args.workers)

    headers = ["App", "Area", "Policy", "Data-path", "HW BSBs", "Speed-up"]
    rows = [[result.point.app,
             "%.0f" % result.point.area,
             result.point.policy or "designated",
             "%.0f" % result.datapath_area,
             len(result.hw_names),
             "%.0f%%" % result.speedup] for result in results]
    print(render_table(headers, rows,
                       title="Design-space sweep (%d points, %d worker%s)"
                             % (len(points), args.workers,
                                "" if args.workers == 1 else "s")))
    best = max(results, key=lambda result: result.speedup)
    print("\nbest point: %s area %.0f policy %s -> SU %.0f%%"
          % (best.point.app, best.point.area,
             best.point.policy or "designated", best.speedup))
    _sweep_objective_report(args, results)
    # Worker accounting is merged into the parent session, so the
    # summary is real for parallel sweeps too.
    print("\nengine cache:")
    print(session.stats.summary())
    stats = session.stats
    print("overall hit rate: %.1f%% (%d hits / %d lookups)"
          % (100.0 * stats.overall_hit_rate(), stats.hit_count(),
             stats.hit_count() + stats.miss_count()))
    print("frontend compiles: %d (program store hits: %d)"
          % (stats.miss_count("compile"), stats.hit_count("compile")))


def _sweep_objective_report(args, results):
    """Extra sweep reporting for a non-default ``--objective``.

    Additive and gated, so the default sweep output is byte-identical
    to the historical one.  Points rank on the result's own metrics
    (speed-up, data-path area, modelled energy); failed points carry
    zeros and never win a minimising objective, so they are excluded.
    """
    from repro.report.tables import render_table

    if args.objective == "speedup":
        return
    ranked = [result for result in results if result.error is None]
    if not ranked:
        print("\nobjective %s: no successful points" % args.objective)
        return
    if args.objective == "pareto":
        from repro.core.objective import get_objective

        front = get_objective("pareto").new_front()
        for result in ranked:
            front.add((result.speedup, -result.datapath_area,
                       -result.energy), result)
        headers = ["App", "Area", "Policy", "Speed-up", "Data-path",
                   "Energy"]
        rows = [[payload.point.app,
                 "%.0f" % payload.point.area,
                 payload.point.policy or "designated",
                 "%.0f%%" % speedup,
                 "%.0f" % -neg_area,
                 "%.2f" % -neg_energy]
                for (speedup, neg_area, neg_energy), payload
                in front.points()]
        print()
        print(render_table(headers, rows,
                           title="Pareto front (speed-up, -area, "
                                 "-energy): %d of %d points"
                                 % (len(front), len(ranked))))
        print("hypervolume: %.3f" % front.hypervolume())
        return
    if args.objective == "area":
        def rank(result):
            return (-result.datapath_area, result.speedup)
    else:  # energy
        def rank(result):
            return (-result.energy, result.speedup,
                    -result.datapath_area)
    best = max(ranked, key=rank)
    print("best by %s: %s area %.0f policy %s -> SU %.0f%% "
          "data-path %.0f energy %.2f"
          % (args.objective, best.point.app, best.point.area,
             best.point.policy or "designated", best.speedup,
             best.datapath_area, best.energy))


def cmd_cache(args):
    import os

    from repro.engine.store import CacheStore

    if args.action == "compact":
        if args.max_bytes is None and args.max_age is None:
            raise SystemExit("compact needs --max-bytes and/or "
                             "--max-age")
        if args.max_bytes is not None and args.max_bytes < 0:
            raise SystemExit("--max-bytes must be >= 0")
        if args.max_age is not None and args.max_age < 0:
            raise SystemExit("--max-age must be >= 0")
    store = CacheStore(args.cache_dir)
    if not os.path.isdir(store.root):
        # Never create the directory from an inspection command — a
        # typo'd path should stay visible, not become an empty store.
        print("no store directory at %s" % store.root)
        return
    if args.action == "clear":
        removed = store.clear()
        print("cleared %d shard(s) from %s" % (removed, store.root))
        return
    if args.action == "compact":
        report = store.compact(max_bytes=args.max_bytes,
                               max_age_seconds=args.max_age)
        for stage in sorted(report["stages"]):
            kept, dropped = report["stages"][stage]
            print("%-12s kept %6d  dropped %6d" % (stage, kept,
                                                   dropped))
        print("compacted %s: %d kept, %d dropped, %d -> %d bytes"
              % (store.root, report["kept"], report["dropped"],
                 report["bytes_before"], report["bytes_after"]))
        return
    report = store.info()
    if not report:
        print("empty store at %s" % store.root)
        return
    total_entries = 0
    total_bytes = 0
    for stage in sorted(report):
        entries, size = report[stage]
        total_entries += entries
        total_bytes += size
        print("%-12s %7d entries  %9d bytes" % (stage, entries, size))
    print("%-12s %7d entries  %9d bytes" % ("total", total_entries,
                                            total_bytes))
    # Fabric observability: per-engine compression economy of absorbed
    # store deltas.  Only printed for a store a coordinator absorbed
    # remote deltas into, so a purely local store's info output is
    # unchanged.
    deltas = store.delta_stats()
    if deltas:
        print()
        print("absorbed store deltas (wire compression):")
        for engine, stats in deltas.items():
            raw = stats["raw_bytes"]
            compressed = stats["compressed_bytes"]
            saved = (100.0 * (1.0 - compressed / raw)) if raw else 0.0
            print("%-12s %5d frame(s)  %9d -> %9d bytes (%.1f%% saved)"
                  % (engine, stats["frames"], raw, compressed, saved))
    # Only printed for stores that were ever compacted, so an untouched
    # store's info output is unchanged.
    history = store.compaction_history()
    if history:
        print()
        print("compaction history (%d most recent):" % len(history))
        for event in history:
            print("  %6d kept  %6d dropped  %9d -> %9d bytes"
                  % (event.get("kept", 0), event.get("dropped", 0),
                     event.get("bytes_before", 0),
                     event.get("bytes_after", 0)))


def cmd_serve(args):
    from repro.service.server import LOOPBACK_HOSTS, serve

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.flush_interval < 0:
        raise SystemExit("--flush-interval must be >= 0")
    if args.queue_cap is not None and args.queue_cap < 1:
        raise SystemExit("--queue-cap must be >= 1")
    if args.job_ttl is not None and args.job_ttl < 0:
        raise SystemExit("--job-ttl must be >= 0")
    if args.max_jobs is not None and args.max_jobs < 0:
        raise SystemExit("--max-jobs must be >= 0")
    if args.local_engines < 0:
        raise SystemExit("--local-engines must be >= 0")
    if args.steal_delay < 0:
        raise SystemExit("--steal-delay must be >= 0")
    if args.engine_timeout <= 0:
        raise SystemExit("--engine-timeout must be > 0")
    if args.slots is not None and args.slots < 1:
        raise SystemExit("--slots must be >= 1")
    if args.http is not None and not 0 < args.http < 65536:
        raise SystemExit("--http must be a port number (1-65535)")
    api_keys = None
    if args.api_keys_file is not None:
        if args.http is None:
            raise SystemExit("--api-keys-file only makes sense with "
                             "--http")
        from repro.errors import ReproError
        from repro.service.http import load_api_keys

        try:
            api_keys = load_api_keys(args.api_keys_file)
        except ReproError as exc:
            raise SystemExit(str(exc))
    token = _resolve_token(args)
    if args.join is not None:
        return _cmd_serve_join(args, token)
    if token is None and args.host not in LOOPBACK_HOSTS:
        raise SystemExit("refusing to bind %s without --token/"
                         "--token-file; an open service beyond "
                         "loopback hands the store to the network"
                         % args.host)
    if args.http is not None and api_keys is None \
            and args.host not in LOOPBACK_HOSTS:
        raise SystemExit("refusing to mount the HTTP gateway on %s "
                         "without --api-keys-file; an open gateway "
                         "beyond loopback hands the queue to the "
                         "network" % args.host)
    serve(cache_dir=args.cache_dir, workers=args.workers,
          host=args.host, port=args.port,
          flush_interval=args.flush_interval, token=token,
          scheduler=args.scheduler, queue_cap=args.queue_cap,
          job_ttl=args.job_ttl, max_jobs=args.max_jobs,
          local_engines=args.local_engines,
          steal_delay=args.steal_delay,
          engine_timeout=args.engine_timeout,
          http_port=args.http, api_keys=api_keys)


def _cmd_serve_join(args, token):
    """serve --join: run this process as one remote engine."""
    from repro.service.worker import join_coordinator

    host, _, port_text = args.join.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not 0 < port < 65536:
        raise SystemExit("--join expects HOST:PORT, got %r" % args.join)
    slots = args.slots if args.slots is not None else args.workers
    evaluated = join_coordinator(host, port, token=token,
                                 label=args.label or "",
                                 slots=slots,
                                 cache_dir=args.cache_dir)
    print("worker done: %d point(s) evaluated" % evaluated)


def _print_point_line(index, result):
    if result is None:
        print("point %3d: cancelled" % index)
        return
    point = result.point
    # area=None means "the app's Table 1 spec area" — say so rather
    # than misreporting it as 0.
    area_text = ("default" if point.area is None
                 else "%.0f" % point.area)
    label = "%s area %s %s" % (point.app, area_text,
                               point.policy or "designated")
    if result.error is not None:
        print("point %3d: %s -> ERROR %s" % (index, label, result.error))
    else:
        print("point %3d: %s -> SU %.0f%% data-path %.0f"
              % (index, label, result.speedup, result.datapath_area))


def _print_job_status(status):
    print("job %s: %s  (%d done / %d total, %d errors, %d cancelled)"
          % (status["job"], status["state"], status["done"],
             status["total"], status["errors"], status["cancelled"]))
    # Non-default objectives are worth a line; the default stays
    # silent so historical status output is byte-identical.
    if status.get("objective", "speedup") != "speedup":
        print("objective: %s" % status["objective"])
    lookups = status["hits"] + status["misses"]
    print("hit rate: %.1f%% (%d hits / %d lookups)"
          % (100.0 * status["hit_rate"], status["hits"], lookups))
    if status.get("expires_in") is not None:
        print("retention: expires in %.1fs (completed-job GC)"
              % status["expires_in"])


def _service_client(args):
    if getattr(args, "http", None) is not None:
        from repro.service.http_client import HttpServiceClient

        return HttpServiceClient(url=args.http,
                                 api_key=_resolve_api_key(args))
    from repro.service.client import ServiceClient

    return ServiceClient(host=args.host, port=args.port,
                         token=_resolve_token(args))


def cmd_submit(args):
    _check_grid_args(args)
    if args.weight < 1:
        raise SystemExit("--weight must be >= 1")
    points = _grid_points(args.apps, args.fractions, args.policies,
                          args.quanta)
    client = _service_client(args)
    weight = args.weight
    if getattr(args, "http", None) is not None and weight == 1:
        # Over the keyed gateway the API key's configured weight is
        # the default; the un-passed CLI default of 1 must not lower
        # it.  An explicit --weight below the key's still does.
        weight = None
    job = client.submit(points, weight=weight,
                        objective=args.objective)
    if client.last_submit_rejections:
        print("admitted after %d queue-full rejection(s)"
              % client.last_submit_rejections)
    print("submitted %s (%d points)" % (job, len(points)))
    if not args.wait:
        return
    for index, result in client.results(job):
        _print_point_line(index, result)
    _print_job_status(client.last_status)


def cmd_status(args):
    if args.html is not None:
        if getattr(args, "http", None) is None:
            raise SystemExit("--html needs --http: the HTML documents "
                             "are served by the REST gateway")
        client = _service_client(args)
        page = (client.report(args.job) if args.job is not None
                else client.dashboard())
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(page)
        print("wrote %s (%d bytes)" % (args.html, len(page)))
        return
    client = _service_client(args)
    if args.job is not None:
        _print_job_status(client.status(args.job))
        return
    info = client.ping()
    cap = info.get("queue_cap")
    print("service up: protocol v%d, %d worker(s), %d job(s), "
          "scheduler %s, depth %d/%s"
          % (info["protocol"], info["workers"], info["jobs"],
             info.get("scheduler", "fifo"), info.get("depth", 0),
             "unbounded" if cap is None else cap))
    if "program_compiles" in info:
        print("programs: %d frontend compile(s), %d program store "
              "hit(s)" % (info["program_compiles"],
                          info.get("program_store_hits", 0)))
    # Roster observability (additive — the lines above are unchanged,
    # so a single-engine service still prints exactly what it used to
    # plus its one roster line).
    for engine in info.get("engines", []):
        # The delta-bytes suffix is appended at the end of the line so
        # anything parsing the historical prefix still matches.
        print("engine %-12s %s%-6s %d slot(s), %d queued, %d in "
              "flight, %d done (%d stolen), hit rate %.1f%%, "
              "%d delta(s)/%d entr(ies) absorbed, %d -> %d delta "
              "byte(s)"
              % (engine["engine"], engine["kind"],
                 "" if engine.get("alive", True) else " DEAD",
                 engine["slots"], engine["queued"],
                 engine["in_flight"], engine["done"],
                 engine.get("stolen", 0),
                 100.0 * engine.get("hit_rate", 0.0),
                 engine.get("deltas_absorbed", 0),
                 engine.get("delta_entries", 0),
                 engine.get("delta_raw_bytes", 0),
                 engine.get("delta_compressed_bytes", 0)))
    for status in client.jobs():
        _print_job_status(status)


def cmd_results(args):
    client = _service_client(args)
    for index, result in client.results(args.job):
        _print_point_line(index, result)
    _print_job_status(client.last_status)


def cmd_cancel(args):
    client = _service_client(args)
    _print_job_status(client.cancel(args.job))


def cmd_export(args):
    from repro.cdfg.builder import frontend_compile_count
    from repro.viz.dot import bsb_hierarchy_to_dot, cdfg_to_dot, dfg_to_dot

    compiles_before = frontend_compile_count()
    session = _session(args)
    program = session.program(args.app)
    if args.what == "cdfg":
        cdfg = program.cdfg
        if cdfg is None:
            # A store document written before programs carried their
            # CDFG: fall back to a cold compile for this graph only.
            from repro.apps.registry import load_application

            cdfg = load_application(args.app).cdfg
        print(cdfg_to_dot(cdfg, name=args.app))
    elif args.what == "bsb":
        print(bsb_hierarchy_to_dot(program.bsb_root, name=args.app))
    else:
        hottest = session.hottest_bsb(args.app)
        print(dfg_to_dot(hottest.dfg, name="%s_%s"
                         % (args.app, hottest.name)))
    session.save_store()
    # The standard accounting line — on stderr, so stdout stays pure
    # DOT (CI byte-compares cold and warm exports).  The compile count
    # is this command's delta of the process-global counter, which
    # also covers the legacy-store CDFG fallback above.
    stats = session.stats
    print("frontend compiles: %d (program store hits: %d)"
          % (frontend_compile_count() - compiles_before,
             stats.hit_count("compile")),
          file=sys.stderr)


def cmd_report(args):
    from repro.engine.session import Session
    from repro.report.html import (
        gantt_documents,
        render_html,
        store_analytics,
        sweep_document,
    )

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    _check_grid_args(args)
    session = _session(args)
    points = _grid_points(args.apps, args.fractions, args.policies,
                          args.quanta)
    results = session.explore(points, workers=args.workers)
    session.save_store()
    # The document's analytics come from a *replay*: a fresh session
    # re-resolves every point against the persisted store, so the
    # rendered hit rates are a function of the store alone — a cold
    # and a warm run of this command write byte-identical reports (and
    # the replay itself performs zero frontend compiles on any store
    # this run just populated).
    replay = (Session(cache_dir=args.cache_dir)
              if args.cache_dir is not None else session)
    replay_results = replay.explore(points, workers=1)
    apps = list(dict.fromkeys(point.app for point in points))
    gantts = gantt_documents(replay, apps)
    document = sweep_document(replay_results, stats=replay.stats,
                              store=store_analytics(replay.store),
                              gantts=gantts, title=args.title)
    page = render_html(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(page)
    pareto = document["pareto"]
    print("report: %d point(s), %d on the Pareto front, "
          "hypervolume %.3f"
          % (len(points), len(pareto["points"]),
             pareto["hypervolume"]))
    print("wrote %s (%d bytes)" % (args.output, len(page)))
    # The standard accounting lines describe the *sweep* session (the
    # replay's numbers are in the report itself).
    stats = session.stats
    print("overall hit rate: %.1f%% (%d hits / %d lookups)"
          % (100.0 * stats.overall_hit_rate(), stats.hit_count(),
             stats.hit_count() + stats.miss_count()))
    print("frontend compiles: %d (program store hits: %d)"
          % (stats.miss_count("compile"), stats.hit_count("compile")))


_COMMANDS = {
    "table1": cmd_table1,
    "fig3": cmd_fig3,
    "s51": cmd_s51,
    "iterate": cmd_iterate,
    "apps": cmd_apps,
    "allocate": cmd_allocate,
    "multiasic": cmd_multiasic,
    "overheads": cmd_overheads,
    "export": cmd_export,
    "sweep": cmd_sweep,
    "report": cmd_report,
    "cache": cmd_cache,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "results": cmd_results,
    "cancel": cmd_cancel,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
