"""Serialisation: JSON persistence for allocations and evaluations.

Lets a design flow save Algorithm 1's output, reload it in a later
session (or a different tool) and re-evaluate — the "allocation as a
design artefact" workflow LYCOS's interactive environment supported.
"""

from repro.io.serialize import (
    allocation_to_dict,
    allocation_from_dict,
    allocation_result_to_dict,
    evaluation_to_dict,
    save_json,
    load_json,
)

__all__ = [
    "allocation_to_dict",
    "allocation_from_dict",
    "allocation_result_to_dict",
    "evaluation_to_dict",
    "save_json",
    "load_json",
]
