"""JSON (de)serialisation of allocation artefacts.

Formats are plain dictionaries with a ``kind`` discriminator and a
``version`` field so future layout changes stay detectable.  Only data
is serialised — libraries and applications are code, and a loaded
allocation is re-validated against the library it is applied to.
"""

import json

from repro.core.rmap import RMap
from repro.engine.design_point import DesignPoint, PointError, PointResult
from repro.errors import ReproError

FORMAT_VERSION = 1


def allocation_to_dict(allocation):
    """Serialise an RMap (or dict) allocation."""
    allocation = RMap._coerce(allocation)
    return {
        "kind": "allocation",
        "version": FORMAT_VERSION,
        "units": allocation.as_dict(),
    }


def allocation_from_dict(data, library=None):
    """Deserialise an allocation; optionally validate against a library.

    Raises :class:`ReproError` for wrong kinds, versions, or (when a
    library is given) resource names the library does not know.
    """
    if not isinstance(data, dict) or data.get("kind") != "allocation":
        raise ReproError("not an allocation document: %r" % (data,))
    if data.get("version") != FORMAT_VERSION:
        raise ReproError("unsupported allocation format version %r"
                         % (data.get("version"),))
    units = data.get("units", {})
    if not isinstance(units, dict):
        raise ReproError("allocation units must be a mapping")
    allocation = RMap({str(name): int(count)
                       for name, count in units.items()})
    if library is not None:
        for name in allocation.names():
            library.get(name)  # raises ResourceError when unknown
    return allocation


def allocation_result_to_dict(result):
    """Serialise an :class:`~repro.core.allocator.AllocationResult`."""
    return {
        "kind": "allocation-result",
        "version": FORMAT_VERSION,
        "allocation": allocation_to_dict(result.allocation),
        "hw_bsbs": list(result.hw_bsb_names),
        "remaining_area": result.remaining_area,
        "datapath_area": result.datapath_area,
        "controller_area": result.controller_area,
        "restrictions": result.restrictions.as_dict(),
        "runtime_seconds": result.runtime_seconds,
        "trace": [str(event) for event in result.events],
    }


def evaluation_to_dict(evaluation):
    """Serialise an AllocationEvaluation (PACE outcome included)."""
    partition = evaluation.partition
    return {
        "kind": "evaluation",
        "version": FORMAT_VERSION,
        "allocation": allocation_to_dict(evaluation.allocation),
        "datapath_area": evaluation.datapath_area,
        "overhead_area": evaluation.overhead_area,
        "available_controller_area":
            evaluation.available_controller_area,
        "energy": evaluation.energy,
        "speedup": partition.speedup,
        "sw_time_all": partition.sw_time_all,
        "hybrid_time": partition.hybrid_time,
        "hw_bsbs": list(partition.hw_names),
        "hw_sequences": [list(pair) for pair in partition.hw_sequences],
        "controller_area_used": partition.controller_area_used,
        "hw_fraction": partition.hw_fraction,
    }


def evaluation_from_dict(data, library=None):
    """Deserialise an evaluation document back into live objects.

    The flattened PACE fields are folded back into a
    :class:`~repro.partition.pace.PartitionResult` (its
    ``available_area`` is the evaluation's controller budget — the
    same number the evaluator handed PACE).  Raises
    :class:`ReproError` on wrong kinds, versions or malformed numbers.
    """
    from repro.partition.evaluate import AllocationEvaluation
    from repro.partition.pace import PartitionResult

    if not isinstance(data, dict) or data.get("kind") != "evaluation":
        raise ReproError("not an evaluation document: %r" % (data,))
    if data.get("version") != FORMAT_VERSION:
        raise ReproError("unsupported evaluation format version %r"
                         % (data.get("version"),))
    sequences = data.get("hw_sequences", [])
    if not isinstance(sequences, (list, tuple)):
        raise ReproError("evaluation hw_sequences must be a list")
    try:
        partition = PartitionResult(
            hw_sequences=[(int(pair[0]), int(pair[1]))
                          for pair in sequences],
            hw_names=[str(name) for name in data.get("hw_bsbs", [])],
            sw_time_all=float(data.get("sw_time_all", 0.0)),
            hybrid_time=float(data.get("hybrid_time", 0.0)),
            speedup=float(data.get("speedup", 0.0)),
            controller_area_used=float(
                data.get("controller_area_used", 0.0)),
            available_area=float(
                data.get("available_controller_area", 0.0)),
            hw_fraction=float(data.get("hw_fraction", 0.0)))
        return AllocationEvaluation(
            allocation=allocation_from_dict(data.get("allocation"),
                                            library=library),
            datapath_area=float(data.get("datapath_area", 0.0)),
            available_controller_area=float(
                data.get("available_controller_area", 0.0)),
            partition=partition,
            overhead_area=float(data.get("overhead_area", 0.0)),
            energy=float(data.get("energy", 0.0)))
    except (TypeError, ValueError, IndexError) as exc:
        raise ReproError("malformed evaluation: %s" % (exc,)) from None


def exhaustive_result_to_dict(result):
    """Serialise an :class:`~repro.core.exhaustive.ExhaustiveResult`.

    The history is deliberately dropped (it can be candidate-count
    sized); the embedded best evaluation uses the same layout as
    :func:`evaluation_to_dict`, and a Pareto front — when the search
    collected one — travels as its insertion-ordered (vector,
    evaluation) pairs so a round trip preserves dominance *and* the
    scan-order tie-breaks.
    """
    front = None
    if result.front is not None:
        front = [{"vector": list(vector),
                  "evaluation": (None if payload is None
                                 else evaluation_to_dict(payload))}
                 for vector, payload in result.front.items()]
    return {
        "kind": "exhaustive-result",
        "version": FORMAT_VERSION,
        "best_allocation": allocation_to_dict(result.best_allocation),
        "best_evaluation": evaluation_to_dict(result.best_evaluation),
        "evaluations": result.evaluations,
        "space": result.space,
        "sampled": result.sampled,
        "skipped_infeasible": result.skipped_infeasible,
        "search": result.search,
        "history_order": result.history_order,
        "subtrees_pruned": result.subtrees_pruned,
        "bound_evaluations": result.bound_evaluations,
        "pruned_leaves": result.pruned_leaves,
        "objective": result.objective,
        "front": front,
    }


def exhaustive_result_from_dict(data, library=None):
    """Deserialise an exhaustive-result document.

    The history is gone by design (the writer drops it); everything
    else — search mode, prune counters, objective name, and the Pareto
    front when one was collected — comes back as live objects.
    """
    from repro.core.exhaustive import ExhaustiveResult
    from repro.core.objective import ParetoFront

    if not isinstance(data, dict) \
            or data.get("kind") != "exhaustive-result":
        raise ReproError("not an exhaustive-result document: %r"
                         % (data,))
    if data.get("version") != FORMAT_VERSION:
        raise ReproError("unsupported exhaustive-result format "
                         "version %r" % (data.get("version"),))
    front_doc = data.get("front")
    front = None
    if front_doc is not None:
        if not isinstance(front_doc, (list, tuple)):
            raise ReproError("exhaustive-result front must be a list")
        front = ParetoFront()
        for entry in front_doc:
            if not isinstance(entry, dict):
                raise ReproError("front entries must be mappings")
            payload = entry.get("evaluation")
            front.add(tuple(float(value)
                            for value in entry.get("vector", ())),
                      None if payload is None
                      else evaluation_from_dict(payload,
                                                library=library))
    try:
        return ExhaustiveResult(
            best_allocation=allocation_from_dict(
                data.get("best_allocation"), library=library),
            best_evaluation=evaluation_from_dict(
                data.get("best_evaluation"), library=library),
            evaluations=int(data.get("evaluations", 0)),
            space=int(data.get("space", 0)),
            sampled=bool(data.get("sampled", False)),
            skipped_infeasible=int(data.get("skipped_infeasible", 0)),
            search=str(data.get("search", "brute")),
            history_order=str(data.get("history_order", "scan")),
            subtrees_pruned=int(data.get("subtrees_pruned", 0)),
            bound_evaluations=int(data.get("bound_evaluations", 0)),
            pruned_leaves=int(data.get("pruned_leaves", 0)),
            objective=str(data.get("objective", "speedup")),
            front=front)
    except (TypeError, ValueError) as exc:
        raise ReproError("malformed exhaustive result: %s"
                         % (exc,)) from None


def design_point_to_dict(point):
    """Serialise a :class:`~repro.engine.design_point.DesignPoint`."""
    return {
        "kind": "design-point",
        "version": FORMAT_VERSION,
        "app": point.app,
        "area": point.area,
        "policy": point.policy,
        "quanta": point.quanta,
        "comm_cycles_per_word": point.comm_cycles_per_word,
    }


def design_point_from_dict(data):
    """Deserialise a design point; :class:`ReproError` on bad shape.

    Validation is structural only (types, ranges, known policy names);
    whether ``app`` names a real benchmark is decided when the point is
    evaluated — that is the per-point error contract of the batch and
    service APIs, where one unknown app must not poison its batch.
    """
    if not isinstance(data, dict) or data.get("kind") != "design-point":
        raise ReproError("not a design-point document: %r" % (data,))
    if data.get("version") != FORMAT_VERSION:
        raise ReproError("unsupported design-point format version %r"
                         % (data.get("version"),))
    area = data.get("area")
    try:
        return DesignPoint(
            app=data.get("app"),
            area=None if area is None else float(area),
            policy=data.get("policy"),
            quanta=int(data.get("quanta", 150)),
            comm_cycles_per_word=float(
                data.get("comm_cycles_per_word", 4.0)))
    except (TypeError, ValueError) as exc:
        raise ReproError("malformed design point %r: %s"
                         % (data, exc)) from None


def point_result_to_dict(result):
    """Serialise a :class:`~repro.engine.design_point.PointResult`.

    The embedded ``evaluation`` object is deliberately *not* carried
    (it is a live object graph; :func:`evaluation_to_dict` exists for
    callers that want its numbers) — the wire format round-trips the
    point, the allocation, the headline metrics and the per-point
    error.
    """
    error = result.error
    return {
        "kind": "point-result",
        "version": FORMAT_VERSION,
        "point": design_point_to_dict(result.point),
        "allocation": (None if result.allocation is None
                       else allocation_to_dict(result.allocation)),
        "speedup": result.speedup,
        "datapath_area": result.datapath_area,
        "energy": result.energy,
        "hw_bsbs": list(result.hw_names),
        "error": (None if error is None
                  else {"kind": error.kind, "message": error.message}),
    }


def point_result_from_dict(data, library=None):
    """Deserialise a point result (``evaluation`` stays ``None``)."""
    if not isinstance(data, dict) or data.get("kind") != "point-result":
        raise ReproError("not a point-result document: %r" % (data,))
    if data.get("version") != FORMAT_VERSION:
        raise ReproError("unsupported point-result format version %r"
                         % (data.get("version"),))
    allocation = data.get("allocation")
    error = data.get("error")
    if error is not None:
        if not isinstance(error, dict):
            raise ReproError("point-result error must be a mapping")
        error = PointError(kind=str(error.get("kind", "Exception")),
                           message=str(error.get("message", "")))
    hw_bsbs = data.get("hw_bsbs", [])
    if not isinstance(hw_bsbs, (list, tuple)):
        raise ReproError("point-result hw_bsbs must be a list")
    try:
        return PointResult(
            point=design_point_from_dict(data.get("point")),
            allocation=(None if allocation is None else
                        allocation_from_dict(allocation, library=library)),
            speedup=float(data.get("speedup", 0.0)),
            datapath_area=float(data.get("datapath_area", 0.0)),
            energy=float(data.get("energy", 0.0)),
            hw_names=tuple(str(name) for name in hw_bsbs),
            error=error)
    except (TypeError, ValueError) as exc:
        raise ReproError("malformed point result: %s" % (exc,)) from None


# ----------------------------------------------------------------------
# Compiled programs: the persistent program store's document format
# ----------------------------------------------------------------------
def bsb_to_dict(node):
    """Serialise one BSB hierarchy node (leaves carry DFG payloads)."""
    from repro.bsb.bsb import (
        BranchBSB,
        ControlBSB,
        LeafBSB,
        LoopBSB,
    )

    if isinstance(node, LeafBSB):
        return {
            "kind": "leaf",
            "name": node.name,
            "profile": node.profile_count,
            "reads": sorted(node.reads),
            "writes": sorted(node.writes),
            "dfg": node.dfg.to_payload(),
        }
    if isinstance(node, LoopBSB):
        return {
            "kind": "loop",
            "name": node.name,
            "test": None if node.test is None else bsb_to_dict(node.test),
            "body": [bsb_to_dict(child) for child in node.body],
        }
    if isinstance(node, BranchBSB):
        return {
            "kind": "branch",
            "name": node.name,
            "test": None if node.test is None else bsb_to_dict(node.test),
            "branches": [[bsb_to_dict(child) for child in branch]
                         for branch in node.branches],
        }
    if isinstance(node, ControlBSB):
        return {
            "kind": node.kind,
            "name": node.name,
            "children": [bsb_to_dict(child) for child in node.children],
        }
    raise ReproError("cannot serialise BSB node %r" % (node,))


def bsb_from_dict(data):
    """Rebuild a BSB hierarchy node with **fresh uids**.

    Names, profile counts, reads/writes and DFG structure are restored
    verbatim (so :func:`repro.engine.store.bsb_fingerprint` of a loaded
    leaf equals the original's), while every node and operation uid is
    re-assigned from this process's counters — a hydrated hierarchy
    slots into the live uid space without colliding with freshly built
    graphs.  Raises :class:`ReproError` on malformed documents.
    """
    from repro.bsb.bsb import (
        BranchBSB,
        FunctionBSB,
        LeafBSB,
        LoopBSB,
        SequenceBSB,
        WaitBSB,
    )
    from repro.errors import CdfgError
    from repro.ir.dfg import DFG

    if not isinstance(data, dict):
        raise ReproError("BSB document must be a mapping, got %r"
                         % (data,))
    kind = data.get("kind")
    name = str(data.get("name", ""))
    try:
        if kind == "leaf":
            return LeafBSB(DFG.from_payload(data["dfg"]),
                           profile_count=int(data.get("profile", 1)),
                           name=name,
                           reads=[str(each) for each in
                                  data.get("reads", ())],
                           writes=[str(each) for each in
                                   data.get("writes", ())])
        if kind == "loop":
            test = data.get("test")
            return LoopBSB(None if test is None else bsb_from_dict(test),
                           [bsb_from_dict(child)
                            for child in data.get("body", ())],
                           name=name)
        if kind == "branch":
            test = data.get("test")
            return BranchBSB(
                None if test is None else bsb_from_dict(test),
                [[bsb_from_dict(child) for child in branch]
                 for branch in data.get("branches", ())],
                name=name)
        node_class = {"seq": SequenceBSB, "func": FunctionBSB,
                      "wait": WaitBSB}.get(kind)
        if node_class is not None:
            return node_class([bsb_from_dict(child)
                               for child in data.get("children", ())],
                              name=name)
    except CdfgError as exc:
        raise ReproError("malformed BSB document: %s" % (exc,)) from None
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError("malformed BSB document: %s" % (exc,)) from None
    raise ReproError("unknown BSB document kind %r" % (kind,))


def program_to_dict(program):
    """Serialise a compiled :class:`~repro.cdfg.builder.Program`.

    Everything the allocate -> PACE -> evaluate pipeline reads survives
    the round trip: the BSB hierarchy with its DFGs and profile counts,
    the source text (for the Lines column), the profiled
    inputs/finals/outputs, and a neutral uid-free CDFG document so
    ``export --what cdfg`` renders from the store without recompiling.
    Only the AST — a frontend artefact nothing downstream touches — is
    dropped; a hydrated program carries ``None`` for it.
    """
    cdfg = getattr(program, "cdfg", None)
    return {
        "kind": "program",
        "version": FORMAT_VERSION,
        "name": program.name,
        "source": program.source,
        "inputs": dict(program.inputs),
        "final_values": dict(program.final_values),
        "outputs": dict(program.outputs),
        "root": bsb_to_dict(program.bsb_root),
        "cdfg": None if cdfg is None else cdfg.to_payload(),
    }


def program_from_dict(data):
    """Deserialise a program document; fresh uids throughout.

    The flattened ``bsbs`` array is recomputed from the rebuilt
    hierarchy with the same empty-leaf filter the cold compile applies,
    so a hydrated program is positionally identical to its cold twin.
    Documents written before the ``cdfg`` field existed hydrate with
    ``cdfg=None`` (the PR-5 behaviour); a malformed embedded CDFG is
    damage like any other.  Raises :class:`ReproError` on malformed
    documents (the program store treats that as damage and falls back
    to a cold compile).
    """
    from repro.bsb.hierarchy import leaf_array
    from repro.cdfg.builder import Program
    from repro.cdfg.nodes import cdfg_from_payload
    from repro.errors import CdfgError

    if not isinstance(data, dict) or data.get("kind") != "program":
        raise ReproError("not a program document: %r" % (data,))
    if data.get("version") != FORMAT_VERSION:
        raise ReproError("unsupported program format version %r"
                         % (data.get("version"),))
    root = bsb_from_dict(data.get("root"))
    for field in ("inputs", "final_values", "outputs"):
        if not isinstance(data.get(field, {}), dict):
            raise ReproError("program %s must be a mapping" % field)
    cdfg_doc = data.get("cdfg")
    try:
        cdfg = None if cdfg_doc is None else cdfg_from_payload(cdfg_doc)
    except CdfgError as exc:
        raise ReproError("malformed program CDFG: %s" % (exc,)) from None
    return Program(
        name=str(data.get("name", "")),
        source=str(data.get("source", "")),
        ast=None,
        cdfg=cdfg,
        bsb_root=root,
        bsbs=[bsb for bsb in leaf_array(root) if len(bsb.dfg)],
        inputs=dict(data.get("inputs", {})),
        final_values=dict(data.get("final_values", {})),
        outputs=dict(data.get("outputs", {})),
    )


def save_json(document, path):
    """Write a serialised document to ``path`` (pretty-printed)."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path):
    """Read a serialised document from ``path``."""
    with open(path) as handle:
        return json.load(handle)
