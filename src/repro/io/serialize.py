"""JSON (de)serialisation of allocation artefacts.

Formats are plain dictionaries with a ``kind`` discriminator and a
``version`` field so future layout changes stay detectable.  Only data
is serialised — libraries and applications are code, and a loaded
allocation is re-validated against the library it is applied to.
"""

import json

from repro.core.rmap import RMap
from repro.errors import ReproError

FORMAT_VERSION = 1


def allocation_to_dict(allocation):
    """Serialise an RMap (or dict) allocation."""
    allocation = RMap._coerce(allocation)
    return {
        "kind": "allocation",
        "version": FORMAT_VERSION,
        "units": allocation.as_dict(),
    }


def allocation_from_dict(data, library=None):
    """Deserialise an allocation; optionally validate against a library.

    Raises :class:`ReproError` for wrong kinds, versions, or (when a
    library is given) resource names the library does not know.
    """
    if not isinstance(data, dict) or data.get("kind") != "allocation":
        raise ReproError("not an allocation document: %r" % (data,))
    if data.get("version") != FORMAT_VERSION:
        raise ReproError("unsupported allocation format version %r"
                         % (data.get("version"),))
    units = data.get("units", {})
    if not isinstance(units, dict):
        raise ReproError("allocation units must be a mapping")
    allocation = RMap({str(name): int(count)
                       for name, count in units.items()})
    if library is not None:
        for name in allocation.names():
            library.get(name)  # raises ResourceError when unknown
    return allocation


def allocation_result_to_dict(result):
    """Serialise an :class:`~repro.core.allocator.AllocationResult`."""
    return {
        "kind": "allocation-result",
        "version": FORMAT_VERSION,
        "allocation": allocation_to_dict(result.allocation),
        "hw_bsbs": list(result.hw_bsb_names),
        "remaining_area": result.remaining_area,
        "datapath_area": result.datapath_area,
        "controller_area": result.controller_area,
        "restrictions": result.restrictions.as_dict(),
        "runtime_seconds": result.runtime_seconds,
        "trace": [str(event) for event in result.events],
    }


def evaluation_to_dict(evaluation):
    """Serialise an AllocationEvaluation (PACE outcome included)."""
    partition = evaluation.partition
    return {
        "kind": "evaluation",
        "version": FORMAT_VERSION,
        "allocation": allocation_to_dict(evaluation.allocation),
        "datapath_area": evaluation.datapath_area,
        "overhead_area": evaluation.overhead_area,
        "available_controller_area":
            evaluation.available_controller_area,
        "speedup": partition.speedup,
        "sw_time_all": partition.sw_time_all,
        "hybrid_time": partition.hybrid_time,
        "hw_bsbs": list(partition.hw_names),
        "hw_sequences": [list(pair) for pair in partition.hw_sequences],
        "controller_area_used": partition.controller_area_used,
        "hw_fraction": partition.hw_fraction,
    }


def exhaustive_result_to_dict(result):
    """Serialise an :class:`~repro.core.exhaustive.ExhaustiveResult`.

    The history is deliberately dropped (it can be candidate-count
    sized); the embedded best evaluation uses the same layout as
    :func:`evaluation_to_dict`.
    """
    return {
        "kind": "exhaustive-result",
        "version": FORMAT_VERSION,
        "best_allocation": allocation_to_dict(result.best_allocation),
        "best_evaluation": evaluation_to_dict(result.best_evaluation),
        "evaluations": result.evaluations,
        "space": result.space,
        "sampled": result.sampled,
        "skipped_infeasible": result.skipped_infeasible,
    }


def save_json(document, path):
    """Write a serialised document to ``path`` (pretty-printed)."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path):
    """Read a serialised document from ``path``."""
    with open(path) as handle:
        return json.load(handle)
