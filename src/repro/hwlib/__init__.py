"""Hardware resource library: functional units, areas and technology.

The allocation algorithm allocates *resources* (adders, multipliers,
dividers, constant generators, ...) to the ASIC data-path.  Each resource
has an area in gate equivalents and a latency in control steps; the
technology object provides the gate areas used by the Estimated
Controller Area formula.
"""

from repro.hwlib.technology import Technology
from repro.hwlib.resources import Resource
from repro.hwlib.library import ResourceLibrary, default_library

__all__ = ["Technology", "Resource", "ResourceLibrary", "default_library"]
