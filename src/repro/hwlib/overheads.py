"""Interconnect and storage area estimates (future-work extension).

The paper: "aspects such as incorporating interconnect and storage size
estimates would be interesting to look into" — the core algorithm
"considers only the functional resources, i.e. interconnect and storage
resources are not considered" (section 4).

This module supplies first-order estimates so the evaluation can charge
them against the ASIC area:

* **Interconnect**: every functional unit has two operand inputs, each
  fed by a multiplexer whose fan-in grows with the number of value
  sources (all other units).  An n:1 multiplexer costs ``n - 1`` 2:1
  multiplexers per bit; a 2:1 mux-bit is one AND + one OR + one
  inverter in the technology's gate areas.  The quadratic growth in the
  unit count is the classic reason over-allocation hurts beyond the
  units' own area.
* **Storage**: operation results that live across control steps need
  registers.  The ASAP peak step width (results produced in one step)
  over the BSBs bounds the simultaneously-live values; each costs a
  word register.

Both models are deliberately simple, parameterised and documented —
the point of the extension is to let the evaluation *see* these costs,
not to be a floorplanner.
"""

from dataclasses import dataclass

from repro.hwlib.technology import DEFAULT_TECHNOLOGY
from repro.ir.ops import OpType
from repro.sched.asap import asap_schedule

#: Operand inputs per operation type: constant generators have none
#: (they are sources), unary units one, everything else two.
_ZERO_INPUT_TYPES = frozenset({OpType.CONST})
_ONE_INPUT_TYPES = frozenset({OpType.NOT, OpType.NEG, OpType.MOV,
                              OpType.LOAD, OpType.SHIFT})


@dataclass(frozen=True)
class OverheadModel:
    """Parameters of the interconnect/storage estimate.

    Attributes:
        word_width_factor: Scales mux-bit cost to the data-path word
            width (1.0 = per-bit abstract units; the 0.1 default keeps
            overheads subordinate to functional areas, matching the
            paper's implicit assumption that they matter but do not
            dominate).
        register_words: Extra architectural registers (state that lives
            across BSBs) always present.
    """

    word_width_factor: float = 0.1
    register_words: int = 4

    def mux_bit_area(self, technology):
        """Area of one 2:1 multiplexer bit."""
        return (technology.and_gate_area + technology.or_gate_area
                + technology.inverter_area)


DEFAULT_OVERHEAD_MODEL = OverheadModel()


def _operand_inputs(resource):
    """Muxed operand inputs of one instance of ``resource``."""
    worst = 0
    for optype in resource.optypes:
        if optype in _ZERO_INPUT_TYPES:
            inputs = 0
        elif optype in _ONE_INPUT_TYPES:
            inputs = 1
        else:
            inputs = 2
        if inputs > worst:
            worst = inputs
    return worst


def interconnect_area(allocation, library, model=None):
    """Multiplexer area implied by an allocation.

    With ``u`` total units (value sources), each operand input needs a
    ``u``:1 mux = ``u - 1`` 2:1 mux-bits (times the word factor).
    Constant generators contribute sources but no inputs, so an
    allocation stuffed with them still pays for the widened muxes in
    front of every arithmetic unit — the quadratic growth that makes
    over-allocation hurt beyond the units' own area.
    """
    model = model or DEFAULT_OVERHEAD_MODEL
    technology = library.technology
    units = 0
    inputs = 0
    for name, count in allocation.items():
        resource = library.get(name)
        units += count
        inputs += count * _operand_inputs(resource)
    if units <= 1 or inputs == 0:
        return 0.0
    mux_bits_per_input = units - 1
    return (inputs * mux_bits_per_input
            * model.mux_bit_area(technology) * model.word_width_factor)


def storage_area(bsbs, library, model=None):
    """Register area for values live inside hardware BSBs."""
    model = model or DEFAULT_OVERHEAD_MODEL
    technology = library.technology
    peak_live = 0
    for bsb in bsbs:
        if not len(bsb.dfg):
            continue
        schedule = asap_schedule(bsb.dfg, library=library)
        for step in range(1, schedule.length + 1):
            width = len(schedule.operations_starting_at(step))
            if width > peak_live:
                peak_live = width
    words = peak_live + model.register_words
    return words * technology.register_area * model.word_width_factor


def total_overhead_area(allocation, bsbs, library, model=None):
    """Interconnect plus storage area for an allocation."""
    return (interconnect_area(allocation, library, model=model)
            + storage_area(bsbs, library, model=model))
