"""Functional-unit resources allocatable to the hardware data-path."""

from dataclasses import dataclass, field

from repro.errors import ResourceError
from repro.ir.ops import OpType


@dataclass(frozen=True)
class Resource:
    """A functional unit type that can be allocated to the data-path.

    Attributes:
        name: Unique name within a :class:`~repro.hwlib.library.ResourceLibrary`
            (e.g. ``"adder"``).
        optypes: The operation types this unit can execute.  The core
            algorithm of the paper assumes a one-to-one mapping between
            operation types and resources; multi-function units (ALUs)
            are supported as the paper's "future work" extension and are
            exercised by the module-selection ablation.
        area: Data-path area of one instance, in gate equivalents.
        latency: Execution latency in control steps (>= 1).
        energy: Optional energy per executed operation (arbitrary
            energy units).  ``None`` defers to the technology's
            area-proportional default (see
            :meth:`~repro.hwlib.library.ResourceLibrary.energy_of`).
    """

    name: str
    optypes: frozenset = field(default_factory=frozenset)
    area: float = 1.0
    latency: int = 1
    energy: float = None

    def __post_init__(self):
        if not self.name:
            raise ResourceError("resource must have a non-empty name")
        if not self.optypes:
            raise ResourceError("resource %r executes no operation types"
                                % self.name)
        for optype in self.optypes:
            if not isinstance(optype, OpType):
                raise ResourceError(
                    "resource %r optypes must be OpType values, got %r"
                    % (self.name, optype))
        if self.area <= 0:
            raise ResourceError("resource %r has non-positive area %r"
                                % (self.name, self.area))
        if self.latency < 1:
            raise ResourceError("resource %r has latency %r < 1"
                                % (self.name, self.latency))
        if self.energy is not None and self.energy < 0:
            raise ResourceError("resource %r has negative energy %r"
                                % (self.name, self.energy))

    def executes(self, optype):
        """True if this resource can execute operations of ``optype``."""
        return optype in self.optypes

    def __str__(self):
        ops = ",".join(sorted(op.value for op in self.optypes))
        return "%s(area=%g, latency=%d, ops=%s)" % (
            self.name, self.area, self.latency, ops)


def single_function(name, optype, area, latency=1, energy=None):
    """Create a resource that executes exactly one operation type."""
    return Resource(name=name, optypes=frozenset({optype}),
                    area=area, latency=latency, energy=energy)
