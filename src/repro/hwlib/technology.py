"""Technology description: areas of the primitive gates.

The Estimated Controller Area formula of the paper (section 4.2, taken
from Knudsen's thesis [6]) is expressed in the areas of a register, an
and-gate, an or-gate and an inverter:

    ECA = A_R + A_AG + A_OG + log2(N) * A_R + (N - 1) * (A_IG + 2 * A_AG)

All areas in this library are in *gate equivalents* of the chosen
technology.  The default constants treat each term of the formula as a
datapath-width macro (a state register is a registered one-hot/encoded
word with its clocking, not a single flip-flop), which puts controller
areas on the same scale as functional units — the proportion the
paper's Figure 2 depicts and the one that makes the data-path vs
controller-room trade-off (Figure 3) a real tension.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Gate areas (gate equivalents) of a target ASIC technology.

    Attributes:
        name: Identifier of the technology.
        register_area: Area of a 1-bit state register (A_R).
        and_gate_area: Area of a 2-input and-gate (A_AG).
        or_gate_area: Area of a 2-input or-gate (A_OG).
        inverter_area: Area of an inverter (A_IG).
        energy_per_gate_cycle: Energy one gate equivalent dissipates
            over one active control step (arbitrary energy units).  A
            resource without an explicit energy rating is priced as
            ``area * latency * energy_per_gate_cycle`` per executed
            operation — bigger and slower units burn more.
    """

    name: str = "generic-ge"
    register_area: float = 64.0
    and_gate_area: float = 8.0
    or_gate_area: float = 8.0
    inverter_area: float = 4.0
    energy_per_gate_cycle: float = 0.01

    def validate(self):
        """Raise ``ValueError`` if any gate area is non-positive."""
        for attr in ("register_area", "and_gate_area",
                     "or_gate_area", "inverter_area",
                     "energy_per_gate_cycle"):
            if getattr(self, attr) <= 0:
                raise ValueError("%s must be positive, got %r"
                                 % (attr, getattr(self, attr)))
        return self


#: The technology used throughout the reproduction unless overridden.
DEFAULT_TECHNOLOGY = Technology()
