"""Resource libraries: the catalogue the allocator draws units from.

The library answers the two questions the allocation algorithm asks:

* ``resource_for(optype)`` — which unit executes a given operation type
  (the paper's core algorithm assumes a designated unit per type);
* ``candidates_for(optype)`` — all units able to execute the type (used
  by the module-selection extension the paper lists as future work).
"""

from repro.errors import ResourceError
from repro.hwlib.resources import Resource, single_function
from repro.hwlib.technology import DEFAULT_TECHNOLOGY, Technology
from repro.ir.ops import OpType


class ResourceLibrary:
    """A named collection of :class:`~repro.hwlib.resources.Resource`.

    Each operation type has exactly one *default* resource (the first
    registered unit executing it, unless overridden via
    :meth:`set_default`); additional units executing the same type are
    retained as module-selection candidates.
    """

    def __init__(self, name="library", technology=None):
        self.name = name
        self.technology = (technology if technology is not None
                           else DEFAULT_TECHNOLOGY)
        if not isinstance(self.technology, Technology):
            raise ResourceError("technology must be a Technology instance")
        self._resources = {}
        self._defaults = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, resource):
        """Register a resource; returns it for chaining."""
        if not isinstance(resource, Resource):
            raise ResourceError("expected a Resource, got %r" % (resource,))
        if resource.name in self._resources:
            raise ResourceError("duplicate resource name %r in library %r"
                                % (resource.name, self.name))
        self._resources[resource.name] = resource
        for optype in resource.optypes:
            self._defaults.setdefault(optype, resource.name)
        return resource

    def add_single(self, name, optype, area, latency=1, energy=None):
        """Register a single-function resource."""
        return self.add(single_function(name, optype, area,
                                        latency=latency, energy=energy))

    def set_default(self, optype, resource_name):
        """Make ``resource_name`` the designated unit for ``optype``."""
        resource = self.get(resource_name)
        if not resource.executes(optype):
            raise ResourceError("resource %r cannot execute %s"
                                % (resource_name, optype))
        self._defaults[optype] = resource_name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, name):
        """Return the resource with the given name."""
        try:
            return self._resources[name]
        except KeyError:
            raise ResourceError("no resource named %r in library %r"
                                % (name, self.name)) from None

    def __contains__(self, name):
        return name in self._resources

    def __iter__(self):
        return iter(self.resources())

    def __len__(self):
        return len(self._resources)

    def resources(self):
        """All resources in deterministic (name) order."""
        return [self._resources[name] for name in sorted(self._resources)]

    def resource_for(self, optype):
        """The designated resource executing ``optype``.

        Raises :class:`ResourceError` if the library has no unit for the
        type — the application then simply cannot be moved to hardware.
        """
        try:
            return self._resources[self._defaults[optype]]
        except KeyError:
            raise ResourceError(
                "library %r has no resource executing %s"
                % (self.name, optype)) from None

    def supports(self, optype):
        """True if some resource executes ``optype``."""
        return optype in self._defaults

    def candidates_for(self, optype):
        """All resources executing ``optype`` (module-selection extension)."""
        return [resource for resource in self.resources()
                if resource.executes(optype)]

    def area_of(self, resource_name):
        """Area of one instance of the named resource."""
        return self.get(resource_name).area

    def energy_of(self, resource_name):
        """Energy per executed operation on the named resource.

        Resources without an explicit :attr:`Resource.energy` rating
        are priced by the technology's area-proportional default —
        ``area * latency * energy_per_gate_cycle`` — so a multiplier or
        divider in hardware costs visibly *more* energy per operation
        than its software emulation, which is what makes the energy
        objective trade against speed-up instead of shadowing it.
        """
        resource = self.get(resource_name)
        if resource.energy is not None:
            return resource.energy
        return (resource.area * resource.latency
                * self.technology.energy_per_gate_cycle)

    def optypes_covered(self):
        """All operation types executable by some resource."""
        return set(self._defaults)

    def __repr__(self):
        return "ResourceLibrary(name=%r, resources=%d)" % (
            self.name, len(self._resources))


def default_library(technology=None):
    """The resource library used by the paper reproduction.

    Areas are in gate equivalents, calibrated so that a multiplier is an
    order of magnitude larger than an adder and a divider larger still —
    the relative magnitudes that drive the paper's trade-off (section 2).
    Latencies are control steps at the data-path clock.
    """
    library = ResourceLibrary(name="lycos-default", technology=technology)
    library.add_single("adder", OpType.ADD, area=120.0, latency=1)
    library.add_single("subtractor", OpType.SUB, area=120.0, latency=1)
    library.add_single("multiplier", OpType.MUL, area=1000.0, latency=2)
    library.add_single("divider", OpType.DIV, area=1800.0, latency=4)
    library.add_single("mod-unit", OpType.MOD, area=1800.0, latency=4)
    library.add_single("constgen", OpType.CONST, area=16.0, latency=1)
    library.add_single("comparator", OpType.CMP, area=60.0, latency=1)
    library.add_single("shifter", OpType.SHIFT, area=80.0, latency=1)
    library.add_single("and-unit", OpType.AND, area=30.0, latency=1)
    library.add_single("or-unit", OpType.OR, area=30.0, latency=1)
    library.add_single("xor-unit", OpType.XOR, area=35.0, latency=1)
    library.add_single("not-unit", OpType.NOT, area=12.0, latency=1)
    library.add_single("negator", OpType.NEG, area=60.0, latency=1)
    library.add_single("mover", OpType.MOV, area=20.0, latency=1)
    library.add_single("mem-read", OpType.LOAD, area=90.0, latency=2)
    library.add_single("mem-write", OpType.STORE, area=90.0, latency=2)
    return library
