"""Operation types and operation nodes of a data-flow graph.

An *operation type* is what the allocation algorithm reasons about: the
FURO urgency metric is computed per operation type, and each hardware
resource in the library declares the set of operation types it can
execute ("an adder executes ADD", "an ALU executes ADD, SUB and CMP").
"""

import enum
import itertools
from dataclasses import dataclass, field


class OpType(enum.Enum):
    """The operation types that may appear in a leaf-BSB data-flow graph.

    The set mirrors what the paper's examples need: arithmetic (the HAL
    differential-equation benchmark), constant generation (the Mandelbrot
    benchmark "loads a lot of constant values for multiplication"),
    division (the eigen benchmark) plus comparison, shifting, bitwise
    logic and memory traffic for general C-like programs.
    """

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    CONST = "const"
    CMP = "cmp"
    SHIFT = "shift"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    NEG = "neg"
    MOV = "mov"
    LOAD = "load"
    STORE = "store"

    def __repr__(self):
        return "OpType.%s" % self.name


#: Human-readable names used in reports and rendered tables.
OP_CATEGORY_NAMES = {
    OpType.ADD: "addition",
    OpType.SUB: "subtraction",
    OpType.MUL: "multiplication",
    OpType.DIV: "division",
    OpType.MOD: "modulo",
    OpType.CONST: "constant load",
    OpType.CMP: "comparison",
    OpType.SHIFT: "shift",
    OpType.AND: "bitwise and",
    OpType.OR: "bitwise or",
    OpType.XOR: "bitwise xor",
    OpType.NOT: "bitwise not",
    OpType.NEG: "negation",
    OpType.MOV: "move",
    OpType.LOAD: "memory load",
    OpType.STORE: "memory store",
}

_op_id_counter = itertools.count(1)


def _next_op_id():
    return next(_op_id_counter)


@dataclass(frozen=True)
class Operation:
    """A single operation node in a data-flow graph.

    Attributes:
        uid: Unique integer identity (graph node key).  Two operations
            with the same type and label are still distinct nodes.
        optype: The :class:`OpType` executed by this node.
        label: Optional human-readable label, e.g. the source variable
            the operation defines (used in traces and error messages).
        value: For ``CONST`` operations, the constant being generated;
            for ``LOAD``/``STORE``, the array name being accessed.
    """

    uid: int = field(default_factory=_next_op_id)
    optype: OpType = OpType.MOV
    label: str = ""
    value: object = None

    def __str__(self):
        if self.label:
            return "%s#%d(%s)" % (self.optype.value, self.uid, self.label)
        return "%s#%d" % (self.optype.value, self.uid)


def make_op(optype, label="", value=None):
    """Create a fresh :class:`Operation` with an auto-assigned uid."""
    return Operation(uid=_next_op_id(), optype=optype, label=label, value=value)
