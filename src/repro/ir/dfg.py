"""Data-flow graphs: DAGs of operations with data-dependency edges.

The DFG is the contents of a leaf Basic Scheduling Block.  It is the
structure consumed by the ASAP/ALAP schedulers, the FURO metric and the
hardware time estimators.  Edges point from a producer operation to the
consumer that uses its result; the graph must stay acyclic.
"""

import networkx as nx

from repro.errors import CdfgError
from repro.ir.ops import Operation, OpType, make_op


class DFG:
    """A data-flow graph of :class:`~repro.ir.ops.Operation` nodes.

    The graph is backed by a :class:`networkx.DiGraph` keyed by operation
    uid, which keeps hashing cheap while letting callers retrieve the full
    :class:`Operation` dataclass via :meth:`operation`.
    """

    def __init__(self, name=""):
        self.name = name
        self._graph = nx.DiGraph()
        self._ops = {}
        self._topo_cache = None
        self._pred_cache = {}
        self._succ_cache = {}
        self._signature_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, operation):
        """Add an operation node; returns the operation for chaining."""
        if not isinstance(operation, Operation):
            raise CdfgError("DFG nodes must be Operation instances, got %r"
                            % (operation,))
        if operation.uid in self._ops:
            raise CdfgError("duplicate operation uid %d in DFG %r"
                            % (operation.uid, self.name))
        self._ops[operation.uid] = operation
        self._graph.add_node(operation.uid)
        self._invalidate_query_caches()
        return operation

    def new_operation(self, optype, label="", value=None):
        """Create and add a fresh operation of the given type."""
        return self.add_operation(make_op(optype, label=label, value=value))

    def add_dependency(self, producer, consumer):
        """Add a data-dependency edge producer -> consumer.

        Raises :class:`CdfgError` if either endpoint is unknown or if the
        edge would create a cycle.
        """
        for op in (producer, consumer):
            if op.uid not in self._ops:
                raise CdfgError("operation %s is not part of DFG %r"
                                % (op, self.name))
        if producer.uid == consumer.uid:
            raise CdfgError("self-dependency on %s" % producer)
        self._graph.add_edge(producer.uid, consumer.uid)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(producer.uid, consumer.uid)
            raise CdfgError("dependency %s -> %s creates a cycle"
                            % (producer, consumer))
        self._invalidate_query_caches()

    def _invalidate_query_caches(self):
        self._topo_cache = None
        self._pred_cache.clear()
        self._succ_cache.clear()
        self._signature_cache = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def operation(self, uid):
        """Return the :class:`Operation` with the given uid."""
        try:
            return self._ops[uid]
        except KeyError:
            raise CdfgError("no operation with uid %d in DFG %r"
                            % (uid, self.name)) from None

    def operations(self):
        """All operations, in deterministic (uid) order."""
        return [self._ops[uid] for uid in sorted(self._ops)]

    def __len__(self):
        return len(self._ops)

    def __iter__(self):
        return iter(self.operations())

    def __contains__(self, operation):
        return getattr(operation, "uid", None) in self._ops

    def predecessors(self, operation):
        """Direct data-dependency predecessors of an operation.

        Memoised per node (schedulers query adjacency in inner loops);
        callers must not mutate the returned list.
        """
        uid = operation.uid
        cached = self._pred_cache.get(uid)
        if cached is None:
            cached = [self._ops[each] for each in
                      sorted(self._graph.predecessors(uid))]
            self._pred_cache[uid] = cached
        return cached

    def successors(self, operation):
        """Direct data-dependency successors of an operation.

        Memoised per node; callers must not mutate the returned list.
        """
        uid = operation.uid
        cached = self._succ_cache.get(uid)
        if cached is None:
            cached = [self._ops[each] for each in
                      sorted(self._graph.successors(uid))]
            self._succ_cache[uid] = cached
        return cached

    def transitive_successors(self, operation):
        """All operations reachable from ``operation`` (Succ(i) in Def. 2)."""
        return {self._ops[uid] for uid in
                nx.descendants(self._graph, operation.uid)}

    def transitive_predecessors(self, operation):
        """All operations that reach ``operation``."""
        return {self._ops[uid] for uid in
                nx.ancestors(self._graph, operation.uid)}

    def sources(self):
        """Operations with no predecessors."""
        return [self._ops[uid] for uid in sorted(self._graph.nodes)
                if self._graph.in_degree(uid) == 0]

    def sinks(self):
        """Operations with no successors."""
        return [self._ops[uid] for uid in sorted(self._graph.nodes)
                if self._graph.out_degree(uid) == 0]

    def topological_order(self):
        """Operations in a deterministic topological order.

        The order is memoised (and invalidated by mutation): every
        scheduler walk starts here, and the graphs are immutable once
        the frontend built them.  Callers must not mutate the returned
        list.
        """
        if self._topo_cache is None:
            self._topo_cache = [
                self._ops[uid] for uid in
                nx.lexicographical_topological_sort(self._graph)]
        return self._topo_cache

    def op_types(self):
        """The set of operation types present in this DFG."""
        return {op.optype for op in self._ops.values()}

    def count_by_type(self):
        """Mapping op type -> number of operations of that type."""
        counts = {}
        for op in self._ops.values():
            counts[op.optype] = counts.get(op.optype, 0) + 1
        return counts

    def operations_of_type(self, optype):
        """All operations of a given type, in uid order."""
        return [op for op in self.operations() if op.optype == optype]

    def structural_signature(self):
        """A uid-independent, hashable description of the graph.

        Operations are numbered by creation order (uids are assigned
        from a monotone counter, so sorted-uid order is creation order)
        and edges reported against those dense indices.  Two DFGs built
        by the same deterministic construction — the same application
        compiled in two different processes, say — therefore share one
        signature even though their operation uids differ, which is
        what lets the persistent engine store address schedules and
        costs by content instead of by process-local identity.
        """
        if self._signature_cache is None:
            index_of = {uid: index for index, uid in
                        enumerate(sorted(self._ops))}
            nodes = tuple((op.optype.value, op.value)
                          for op in self.operations())
            edges = tuple(sorted((index_of[producer], index_of[consumer])
                                 for producer, consumer
                                 in self._graph.edges))
            self._signature_cache = (self.name, nodes, edges)
        return self._signature_cache

    # ------------------------------------------------------------------
    # Persistence: neutral payloads with uid re-assignment on load
    # ------------------------------------------------------------------
    def to_payload(self):
        """A uid-free, JSON-compatible description of this graph.

        Operations are listed in creation order (sorted-uid order) and
        edges refer to those dense indices — the same translation
        :meth:`structural_signature` performs — so the payload of a
        graph is identical no matter which process built it.  Load it
        back with :meth:`from_payload`, which assigns *fresh* uids from
        the current process's counter.
        """
        operations = self.operations()
        index_of = {op.uid: index for index, op in enumerate(operations)}
        return {
            "name": self.name,
            "ops": [[op.optype.value, op.label, op.value]
                    for op in operations],
            "edges": sorted([index_of[producer], index_of[consumer]]
                            for producer, consumer in self._graph.edges),
        }

    @classmethod
    def from_payload(cls, payload):
        """Rebuild a graph from :meth:`to_payload` output.

        Every operation gets a **fresh uid** from this process's
        monotone counter, so a loaded graph can never collide with
        graphs already live here — this is the uid re-assignment that
        lets compiled programs cross the process boundary.  Because
        creation order is preserved, :meth:`structural_signature` of
        the clone equals the original's, which is what keeps the
        content-addressed store keys stable.  Raises
        :class:`CdfgError` on any malformed payload.
        """
        if not isinstance(payload, dict):
            raise CdfgError("DFG payload must be a mapping, got %r"
                            % (payload,))
        try:
            name = payload["name"]
            op_rows = payload["ops"]
            edge_rows = payload["edges"]
        except (KeyError, TypeError):
            raise CdfgError("DFG payload missing name/ops/edges") from None
        if not isinstance(op_rows, (list, tuple)) \
                or not isinstance(edge_rows, (list, tuple)):
            raise CdfgError("DFG payload ops/edges must be sequences")
        dfg = cls(name=str(name))
        operations = []
        try:
            for type_value, label, value in op_rows:
                operations.append(dfg.new_operation(
                    OpType(type_value), label=str(label), value=value))
        except (TypeError, ValueError) as exc:
            raise CdfgError("bad DFG payload operation: %s"
                            % (exc,)) from None
        for row in edge_rows:
            try:
                producer_index, consumer_index = row
            except (TypeError, ValueError):
                raise CdfgError("bad DFG payload edge %r" % (row,)) \
                    from None
            # Explicit bounds (no Python negative indexing): a
            # corrupted index must fail here — and fall back to a cold
            # compile — never silently hydrate a different graph.
            if not all(isinstance(index, int)
                       and 0 <= index < len(operations)
                       for index in (producer_index, consumer_index)):
                raise CdfgError("bad DFG payload edge %r" % (row,))
            if producer_index == consumer_index:
                raise CdfgError("self-dependency in DFG payload")
            dfg._graph.add_edge(operations[producer_index].uid,
                                operations[consumer_index].uid)
        # Edges went in unchecked for speed (loading is the warm path);
        # one acyclicity check at the end keeps the DAG contract.
        if not nx.is_directed_acyclic_graph(dfg._graph):
            raise CdfgError("DFG payload %r contains a cycle" % (name,))
        dfg._invalidate_query_caches()
        return dfg

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self, name=None):
        """Deep-enough copy: same Operation objects, fresh graph."""
        clone = DFG(name=self.name if name is None else name)
        for op in self.operations():
            clone.add_operation(op)
        for producer_uid, consumer_uid in self._graph.edges:
            clone._graph.add_edge(producer_uid, consumer_uid)
        return clone

    def nx_graph(self):
        """A read-only view of the underlying networkx graph."""
        return self._graph.copy(as_view=True)

    def __repr__(self):
        return "DFG(name=%r, ops=%d, edges=%d)" % (
            self.name, len(self._ops), self._graph.number_of_edges())


def chain(dfg, operations):
    """Convenience: add dependencies forming a chain through ``operations``."""
    for producer, consumer in zip(operations, operations[1:]):
        dfg.add_dependency(producer, consumer)
    return operations


def parallel_ops(dfg, optype, count, label_prefix=""):
    """Convenience: add ``count`` independent operations of one type."""
    return [dfg.new_operation(optype,
                              label="%s%d" % (label_prefix, index))
            for index in range(count)]
