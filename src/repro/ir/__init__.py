"""Intermediate representation: operation types and data-flow graphs.

The leaf Basic Scheduling Blocks of a LYCOS application contain single
data-flow graphs (DFGs).  A DFG is a directed acyclic graph of
:class:`~repro.ir.ops.Operation` nodes whose edges express data
dependencies; this is the structure the FURO metric, the schedulers and
the allocation algorithm all consume.
"""

from repro.ir.ops import OpType, Operation, OP_CATEGORY_NAMES
from repro.ir.dfg import DFG

__all__ = ["OpType", "Operation", "OP_CATEGORY_NAMES", "DFG"]
