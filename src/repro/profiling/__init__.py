"""Profiling: execute the application, count BSB executions.

The allocation algorithm's priority function "is also based on profiling
information" (section 4.1): the FURO of a BSB is scaled by its profile
count p_k.  This package interprets the CDFG on concrete inputs and
annotates every leaf with its execution count.
"""

from repro.profiling.interpreter import profile_cdfg, ProfileRun
from repro.profiling.profiler import hotspots, profile_summary

__all__ = ["profile_cdfg", "ProfileRun", "hotspots", "profile_summary"]
