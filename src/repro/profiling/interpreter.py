"""CDFG interpreter with C-like integer semantics.

Executes the CDFG produced by :mod:`repro.cdfg.builder` on concrete
input values, counting how many times each leaf (basic block) runs.
Arithmetic follows C conventions for integers: division and modulo
truncate toward zero, comparisons yield 0/1, shifts require
non-negative counts.
"""

from dataclasses import dataclass, field

from repro.cdfg.nodes import CdfgBranch, CdfgLeaf, CdfgLoop, CdfgSeq, CdfgWait
from repro.errors import InterpreterError
from repro.lang import ast_nodes as ast


@dataclass
class ProfileRun:
    """Result of one profiled execution.

    Attributes:
        scalars: Final scalar variable values.
        arrays: Final array contents.
        inputs: The input values that were applied.
        steps: Number of statement/condition evaluations performed.
        leaf_counts: Mapping leaf uid -> execution count.
    """

    scalars: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    inputs: dict = field(default_factory=dict)
    steps: int = 0
    leaf_counts: dict = field(default_factory=dict)


class _Interpreter:
    def __init__(self, program_ast, inputs, max_steps):
        self.max_steps = max_steps
        self.steps = 0
        self.scalars = {}
        self.arrays = {name: [0] * size
                       for name, size in program_ast.arrays.items()}
        self.counts = {}
        self.inputs = {}
        declared = set(program_ast.inputs)
        inputs = dict(inputs or {})
        unknown = set(inputs) - declared
        if unknown:
            raise InterpreterError(
                "values supplied for undeclared inputs: %s"
                % ", ".join(sorted(unknown)))
        for name in declared:
            value = int(inputs.get(name, 0))
            self.scalars[name] = value
            self.inputs[name] = value

    # ------------------------------------------------------------------
    def run(self, node):
        if isinstance(node, CdfgSeq):
            for child in node.children:
                self.run(child)
        elif isinstance(node, CdfgLeaf):
            self.execute_leaf(node)
        elif isinstance(node, CdfgLoop):
            while self.execute_leaf(node.test):
                self.run(node.body)
        elif isinstance(node, CdfgBranch):
            if self.execute_leaf(node.test):
                self.run(node.then_body)
            elif node.else_body is not None:
                self.run(node.else_body)
        elif isinstance(node, CdfgWait):
            pass
        else:
            raise InterpreterError("cannot execute CDFG node %r" % (node,))

    def execute_leaf(self, leaf):
        """Run a leaf's statements; returns its condition's truth value."""
        self.counts[leaf.uid] = self.counts.get(leaf.uid, 0) + 1
        for statement in leaf.statements:
            self.tick(statement.line)
            self.assign(statement)
        if leaf.cond is None:
            return True
        self.tick(getattr(leaf.cond, "line", 0))
        return bool(self.eval(leaf.cond))

    def tick(self, line):
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpreterError(
                "profiling exceeded %d steps (infinite loop near line %d?)"
                % (self.max_steps, line))

    # ------------------------------------------------------------------
    def assign(self, statement):
        value = self.eval(statement.expr)
        target = statement.target
        if isinstance(target, ast.VarRef):
            self.scalars[target.name] = value
        elif isinstance(target, ast.ArrayRef):
            self.array_store(target, value)
        else:
            raise InterpreterError("cannot assign to %r" % (target,))

    def array_store(self, ref, value):
        array = self.array_of(ref)
        index = self.check_index(ref, array)
        array[index] = value

    def array_of(self, ref):
        try:
            return self.arrays[ref.name]
        except KeyError:
            raise InterpreterError(
                "array %r used at line %d but never declared"
                % (ref.name, ref.line)) from None

    def check_index(self, ref, array):
        index = self.eval(ref.index)
        if not 0 <= index < len(array):
            raise InterpreterError(
                "index %d out of range for array %r (size %d) at line %d"
                % (index, ref.name, len(array), ref.line))
        return index

    # ------------------------------------------------------------------
    def eval(self, expr):
        if isinstance(expr, ast.NumberLiteral):
            return expr.value
        if isinstance(expr, ast.VarRef):
            return self.scalars.get(expr.name, 0)
        if isinstance(expr, ast.ArrayRef):
            array = self.array_of(expr)
            return array[self.check_index(expr, array)]
        if isinstance(expr, ast.UnaryOp):
            operand = self.eval(expr.operand)
            if expr.op == "-":
                return -operand
            if expr.op == "~":
                return ~operand
            raise InterpreterError("unknown unary operator %r" % expr.op)
        if isinstance(expr, ast.BinaryOp):
            return self.binary(expr)
        raise InterpreterError("cannot evaluate %r" % (expr,))

    def binary(self, expr):
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return c_div(left, right, expr.line)
        if op == "%":
            return c_mod(left, right, expr.line)
        if op == "<<":
            return left << self.shift_count(right, expr.line)
        if op == ">>":
            return left >> self.shift_count(right, expr.line)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        raise InterpreterError("unknown binary operator %r" % op)

    @staticmethod
    def shift_count(count, line):
        if count < 0 or count > 63:
            raise InterpreterError(
                "shift count %d out of range at line %d" % (count, line))
        return count


def c_div(left, right, line=0):
    """C integer division: truncate toward zero."""
    if right == 0:
        raise InterpreterError("division by zero at line %d" % line)
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


def c_mod(left, right, line=0):
    """C modulo: result has the sign of the dividend."""
    if right == 0:
        raise InterpreterError("modulo by zero at line %d" % line)
    return left - c_div(left, right, line) * right


def profile_cdfg(cdfg, program_ast, inputs=None, max_steps=5_000_000):
    """Execute a lowered CDFG, annotate leaves with execution counts."""
    interpreter = _Interpreter(program_ast, inputs, max_steps)
    interpreter.run(cdfg)
    for leaf in cdfg.leaves():
        leaf.exec_count = interpreter.counts.get(leaf.uid, 0)
    return ProfileRun(
        scalars=dict(interpreter.scalars),
        arrays={name: list(values)
                for name, values in interpreter.arrays.items()},
        inputs=dict(interpreter.inputs),
        steps=interpreter.steps,
        leaf_counts=dict(interpreter.counts),
    )
