"""Profile analysis helpers built on top of the interpreter."""

from repro.swmodel.estimator import bsb_software_time


def hotspots(program, processor, top=5):
    """The BSBs dominating software execution time, hottest first.

    Returns a list of (bsb, sw_time, share) tuples where ``share`` is
    the fraction of total all-software time the BSB accounts for.  This
    is the view that motivates the paper's Mandelbrot discussion: 8% of
    the application can hold nearly all the runtime.
    """
    times = [(bsb, bsb_software_time(bsb, processor))
             for bsb in program.bsbs]
    total = sum(time for _, time in times) or 1
    times.sort(key=lambda pair: (-pair[1], pair[0].name))
    return [(bsb, time, time / total) for bsb, time in times[:top]]


def profile_summary(program):
    """Per-BSB profile table rows: (name, ops, profile count, weighted)."""
    rows = []
    for bsb in program.bsbs:
        rows.append((bsb.name, len(bsb.dfg), bsb.profile_count,
                     len(bsb.dfg) * bsb.profile_count))
    return rows
