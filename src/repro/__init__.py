"""Reproduction of the LYCOS hardware resource allocation system.

Grode, Knudsen, Madsen: "Hardware Resource Allocation for Hardware/
Software Partitioning in the LYCOS System", DATE 1998.

Public API tour
---------------

Frontend and application model::

    from repro import compile_source, leaf_array
    program = compile_source(source_code)       # mini-C -> CDFG -> BSBs
    bsbs = program.bsbs                          # the leaf-BSB array

The allocation algorithm (the paper's contribution)::

    from repro import default_library, allocate
    library = default_library()
    result = allocate(bsbs, library, area=20000.0)
    result.allocation                            # RMap: units per resource

Evaluation via PACE partitioning::

    from repro import TargetArchitecture, evaluate_allocation
    arch = TargetArchitecture(library=library, total_area=20000.0)
    evaluation = evaluate_allocation(bsbs, result.allocation, arch)
    evaluation.speedup                           # the paper's SU metric
"""

from repro.ir import OpType, Operation, DFG
from repro.bsb import (
    LeafBSB,
    SequenceBSB,
    LoopBSB,
    BranchBSB,
    FunctionBSB,
    WaitBSB,
    leaf_array,
)
from repro.hwlib import Technology, Resource, ResourceLibrary, default_library
from repro.sched import (
    asap_schedule,
    alap_schedule,
    list_schedule,
    mobility,
    interval_overlap,
)
from repro.swmodel import Processor, default_processor
from repro.core import (
    RMap,
    allocate,
    AllocationResult,
    estimated_controller_area,
    furo,
    UrgencyState,
    prioritize,
    asap_restrictions,
    exhaustive_best_allocation,
    design_iteration,
)
from repro.partition import (
    TargetArchitecture,
    evaluate_allocation,
    pace_partition,
    speedup_percent,
)
from repro.core.module_selection import (
    allocate_with_selection,
    FastestPolicy,
    CheapestPolicy,
    BalancedPolicy,
)
from repro.partition.multi_asic import multi_asic_codesign
from repro.hwlib.overheads import OverheadModel
from repro.engine import DesignPoint, EvalCache, Session, explore_grid

__version__ = "1.1.0"

__all__ = [
    "OpType",
    "Operation",
    "DFG",
    "LeafBSB",
    "SequenceBSB",
    "LoopBSB",
    "BranchBSB",
    "FunctionBSB",
    "WaitBSB",
    "leaf_array",
    "Technology",
    "Resource",
    "ResourceLibrary",
    "default_library",
    "asap_schedule",
    "alap_schedule",
    "list_schedule",
    "mobility",
    "interval_overlap",
    "Processor",
    "default_processor",
    "RMap",
    "allocate",
    "AllocationResult",
    "estimated_controller_area",
    "furo",
    "UrgencyState",
    "prioritize",
    "asap_restrictions",
    "exhaustive_best_allocation",
    "design_iteration",
    "TargetArchitecture",
    "evaluate_allocation",
    "pace_partition",
    "speedup_percent",
    "allocate_with_selection",
    "FastestPolicy",
    "CheapestPolicy",
    "BalancedPolicy",
    "multi_asic_codesign",
    "OverheadModel",
    "DesignPoint",
    "EvalCache",
    "Session",
    "explore_grid",
    "compile_source",
    "compile_vhdl",
    "load_application",
    "__version__",
]


def compile_source(source, name="app", inputs=None):
    """Compile mini-C source into a :class:`~repro.cdfg.builder.Program`.

    Imported lazily so the core algorithm stays importable even if the
    frontend is not needed.
    """
    from repro.cdfg.builder import compile_source as _compile
    return _compile(source, name=name, inputs=inputs)


def load_application(name):
    """Load one of the paper's benchmark applications by name.

    Valid names: ``straight``, ``hal``, ``man``, ``eigen``.
    """
    from repro.apps.registry import load_application as _load
    return _load(name)


def compile_vhdl(source, name="design", inputs=None):
    """Compile behavioural VHDL (the paper's other input language)."""
    from repro.lang.vhdl import compile_vhdl as _compile
    return _compile(source, name=name, inputs=inputs)
