"""CDFG node classes.

Leaves hold the AST statements of one basic block (plus, for test
leaves, the controlling condition expression); inner nodes mirror the
control constructs.  Profile counts land on the leaves during
profiling and travel with them into the BSB hierarchy.
"""

import itertools

_cdfg_id_counter = itertools.count(1)


class CdfgNode:
    """Base class for CDFG nodes."""

    kind = "node"

    def __init__(self, name=""):
        self.uid = next(_cdfg_id_counter)
        self.name = name or "%s%d" % (self.kind, self.uid)

    def leaves(self):
        """All CDFG leaves below (or at) this node, in program order."""
        raise NotImplementedError

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)


class CdfgLeaf(CdfgNode):
    """A basic block: assignments, optionally ending in a condition.

    Attributes:
        statements: The ``Assign`` statements of the block, in order.
        cond: For test leaves, the controlling condition expression.
        exec_count: Filled in by the profiler (executions per run).
        dfg: Filled in by the DFG lowering pass.
        reads / writes: Live-in and defined variable names, filled in by
            the lowering pass.
    """

    kind = "dfg"

    def __init__(self, statements=None, cond=None, name=""):
        super().__init__(name=name)
        self.statements = list(statements or [])
        self.cond = cond
        self.exec_count = 0
        self.dfg = None
        self.reads = set()
        self.writes = set()

    def leaves(self):
        return [self]

    def is_empty(self):
        return not self.statements and self.cond is None

    def __repr__(self):
        return "CdfgLeaf(name=%r, stmts=%d, cond=%s, count=%d)" % (
            self.name, len(self.statements),
            "yes" if self.cond is not None else "no", self.exec_count)


class CdfgSeq(CdfgNode):
    """Sequential composition."""

    kind = "seq"

    def __init__(self, children=None, name=""):
        super().__init__(name=name)
        self.children = list(children or [])

    def leaves(self):
        result = []
        for child in self.children:
            result.extend(child.leaves())
        return result


class CdfgLoop(CdfgNode):
    """A loop: a test leaf plus a body."""

    kind = "loop"

    def __init__(self, test, body, name=""):
        super().__init__(name=name)
        self.test = test
        self.body = body

    def leaves(self):
        return self.test.leaves() + self.body.leaves()


class CdfgBranch(CdfgNode):
    """A conditional: a test leaf plus then/else bodies."""

    kind = "branch"

    def __init__(self, test, then_body, else_body=None, name=""):
        super().__init__(name=name)
        self.test = test
        self.then_body = then_body
        self.else_body = else_body

    def leaves(self):
        result = self.test.leaves() + self.then_body.leaves()
        if self.else_body is not None:
            result.extend(self.else_body.leaves())
        return result


class CdfgWait(CdfgNode):
    """A wait statement."""

    kind = "wait"

    def __init__(self, cycles, name=""):
        super().__init__(name=name)
        self.cycles = cycles

    def leaves(self):
        return []
