"""CDFG node classes.

Leaves hold the AST statements of one basic block (plus, for test
leaves, the controlling condition expression); inner nodes mirror the
control constructs.  Profile counts land on the leaves during
profiling and travel with them into the BSB hierarchy.

Every node also serialises to a **neutral, uid-free payload**
(:meth:`CdfgNode.to_payload` / :func:`cdfg_from_payload`), mirroring
:meth:`repro.ir.dfg.DFG.to_payload`: names, structure, statement
counts, test markers and profile counts survive, uids do not.  A
hydrated tree gets fresh uids in the same construction order the
frontend builder uses (children before parents), so visualisations of
a stored CDFG are byte-identical to the cold compile's.  The AST is a
frontend artefact no downstream stage reads — hydrated leaves carry
:data:`HYDRATED_STATEMENT` placeholders (count preserved, which is
all the viz layer consumes) and :data:`HYDRATED_COND` for test
leaves.
"""

import itertools

from repro.errors import CdfgError

_cdfg_id_counter = itertools.count(1)

#: Placeholder for one AST statement of a hydrated leaf: the document
#: keeps only the count, never the (frontend-only) statement objects.
HYDRATED_STATEMENT = "<hydrated-statement>"

#: Placeholder condition of a hydrated test leaf (only its presence
#: matters downstream: ``cond is not None``).
HYDRATED_COND = "<hydrated-cond>"


class CdfgNode:
    """Base class for CDFG nodes."""

    kind = "node"

    def __init__(self, name=""):
        self.uid = next(_cdfg_id_counter)
        self.name = name or "%s%d" % (self.kind, self.uid)

    def leaves(self):
        """All CDFG leaves below (or at) this node, in program order."""
        raise NotImplementedError

    def to_payload(self):
        """A uid-free, JSON-compatible description of this subtree."""
        raise NotImplementedError

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)


class CdfgLeaf(CdfgNode):
    """A basic block: assignments, optionally ending in a condition.

    Attributes:
        statements: The ``Assign`` statements of the block, in order.
        cond: For test leaves, the controlling condition expression.
        exec_count: Filled in by the profiler (executions per run).
        dfg: Filled in by the DFG lowering pass.
        reads / writes: Live-in and defined variable names, filled in by
            the lowering pass.
    """

    kind = "dfg"

    def __init__(self, statements=None, cond=None, name=""):
        super().__init__(name=name)
        self.statements = list(statements or [])
        self.cond = cond
        self.exec_count = 0
        self.dfg = None
        self.reads = set()
        self.writes = set()

    def leaves(self):
        return [self]

    def is_empty(self):
        return not self.statements and self.cond is None

    def to_payload(self):
        return {
            "kind": self.kind,
            "name": self.name,
            "statements": len(self.statements),
            "test": self.cond is not None,
            "count": self.exec_count,
        }

    def __repr__(self):
        return "CdfgLeaf(name=%r, stmts=%d, cond=%s, count=%d)" % (
            self.name, len(self.statements),
            "yes" if self.cond is not None else "no", self.exec_count)


class CdfgSeq(CdfgNode):
    """Sequential composition."""

    kind = "seq"

    def __init__(self, children=None, name=""):
        super().__init__(name=name)
        self.children = list(children or [])

    def leaves(self):
        result = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def to_payload(self):
        return {
            "kind": self.kind,
            "name": self.name,
            "children": [child.to_payload() for child in self.children],
        }


class CdfgLoop(CdfgNode):
    """A loop: a test leaf plus a body."""

    kind = "loop"

    def __init__(self, test, body, name=""):
        super().__init__(name=name)
        self.test = test
        self.body = body

    def leaves(self):
        return self.test.leaves() + self.body.leaves()

    def to_payload(self):
        return {
            "kind": self.kind,
            "name": self.name,
            "test": self.test.to_payload(),
            "body": self.body.to_payload(),
        }


class CdfgBranch(CdfgNode):
    """A conditional: a test leaf plus then/else bodies."""

    kind = "branch"

    def __init__(self, test, then_body, else_body=None, name=""):
        super().__init__(name=name)
        self.test = test
        self.then_body = then_body
        self.else_body = else_body

    def leaves(self):
        result = self.test.leaves() + self.then_body.leaves()
        if self.else_body is not None:
            result.extend(self.else_body.leaves())
        return result

    def to_payload(self):
        return {
            "kind": self.kind,
            "name": self.name,
            "test": self.test.to_payload(),
            "then": self.then_body.to_payload(),
            "else": (self.else_body.to_payload()
                     if self.else_body is not None else None),
        }


class CdfgWait(CdfgNode):
    """A wait statement."""

    kind = "wait"

    def __init__(self, cycles, name=""):
        super().__init__(name=name)
        self.cycles = cycles

    def leaves(self):
        return []

    def to_payload(self):
        return {"kind": self.kind, "name": self.name, "cycles": self.cycles}


def _hydrate_leaf(doc):
    statement_count = doc.get("statements")
    if not isinstance(statement_count, int) or statement_count < 0:
        raise CdfgError("bad CDFG leaf statement count: %r"
                        % (statement_count,))
    exec_count = doc.get("count")
    if not isinstance(exec_count, int) or exec_count < 0:
        raise CdfgError("bad CDFG leaf exec count: %r" % (exec_count,))
    leaf = CdfgLeaf(
        statements=[HYDRATED_STATEMENT] * statement_count,
        cond=HYDRATED_COND if doc.get("test") else None,
        name=str(doc["name"]))
    leaf.exec_count = exec_count
    return leaf


def cdfg_from_payload(doc):
    """Rebuild a CDFG tree from :meth:`CdfgNode.to_payload` output.

    Children are rebuilt before their parents — the same order the
    frontend builder constructs them — and every node gets a **fresh
    uid** from this process's counter, so a hydrated tree can never
    collide with trees already live here.  Stored names are restored
    verbatim (they embed the *original* process's uids, which is what
    keeps warm visualisations byte-identical to cold ones).  Hydrated
    leaves carry placeholder statements/conditions: only the statement
    count and test flag survive, which is all any post-frontend
    consumer reads.  Raises :class:`CdfgError` on malformed documents.
    """
    if not isinstance(doc, dict):
        raise CdfgError("CDFG payload must be a mapping, got %r" % (doc,))
    try:
        kind = doc["kind"]
        name = str(doc["name"])
    except (KeyError, TypeError):
        raise CdfgError("CDFG payload missing kind/name") from None
    try:
        if kind == "dfg":
            return _hydrate_leaf(doc)
        if kind == "seq":
            children = [cdfg_from_payload(child)
                        for child in doc["children"]]
            return CdfgSeq(children, name=name)
        if kind == "loop":
            test = cdfg_from_payload(doc["test"])
            body = cdfg_from_payload(doc["body"])
            return CdfgLoop(test, body, name=name)
        if kind == "branch":
            test = cdfg_from_payload(doc["test"])
            then_body = cdfg_from_payload(doc["then"])
            else_doc = doc["else"]
            else_body = (cdfg_from_payload(else_doc)
                         if else_doc is not None else None)
            return CdfgBranch(test, then_body, else_body, name=name)
        if kind == "wait":
            cycles = doc["cycles"]
            if not isinstance(cycles, int) or cycles < 0:
                raise CdfgError("bad CDFG wait cycles: %r" % (cycles,))
            return CdfgWait(cycles, name=name)
    except (KeyError, TypeError) as exc:
        raise CdfgError("malformed %r CDFG payload: %s"
                        % (kind, exc)) from None
    raise CdfgError("unknown CDFG payload kind %r" % (kind,))
