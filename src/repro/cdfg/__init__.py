"""Control Data Flow Graphs (Figure 4's left-hand side).

The CDFG expresses "loops, conditionals, wait-statements, functional
hierarchy and actual computation (the Data Flow Graphs)".  The builder
converts the mini-C AST into a CDFG whose leaves are maximal basic
blocks, then lowers each leaf into a DFG and the whole CDFG into the
BSB hierarchy used by the allocator and partitioner.
"""

from repro.cdfg.nodes import (
    CdfgNode,
    CdfgLeaf,
    CdfgSeq,
    CdfgLoop,
    CdfgBranch,
    CdfgWait,
    cdfg_from_payload,
)
from repro.cdfg.builder import build_cdfg, compile_source, Program

__all__ = [
    "CdfgNode",
    "CdfgLeaf",
    "CdfgSeq",
    "CdfgLoop",
    "CdfgBranch",
    "CdfgWait",
    "cdfg_from_payload",
    "build_cdfg",
    "compile_source",
    "Program",
]
