"""AST -> CDFG -> BSB pipeline and the Program container.

The builder performs the Figure-4 translation: basic blocks of the AST
become CDFG leaves; loops, conditionals and waits become inner nodes.
Lowering then gives every leaf a DFG, profiling gives it an execution
count, and the final pass mirrors the CDFG into the BSB hierarchy whose
flattened leaf array feeds the allocator and PACE.
"""

from dataclasses import dataclass, field

from repro.bsb.bsb import (
    BranchBSB,
    LeafBSB,
    LoopBSB,
    SequenceBSB,
    WaitBSB,
)
from repro.bsb.hierarchy import leaf_array
from repro.cdfg.lowering import lower_all_leaves
from repro.cdfg.nodes import (
    CdfgBranch,
    CdfgLeaf,
    CdfgLoop,
    CdfgSeq,
    CdfgWait,
)
from repro.errors import SemanticError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse

#: Process-wide count of frontend compiles (every ``compile_source``
#: call).  This is the counter the persistent program store is judged
#: against: a warm session resolving every application through the
#: store must leave it untouched, and the parity tests/CI assert
#: exactly that instead of trusting per-session accounting.
_frontend_compiles = 0


def frontend_compile_count():
    """Number of frontend compiles performed by this process so far."""
    return _frontend_compiles


class _CdfgBuilder:
    """Builds the CDFG, numbering leaves B1, B2, ... in program order."""

    def __init__(self):
        self.leaf_count = 0

    def _new_leaf(self, statements, cond=None):
        self.leaf_count += 1
        return CdfgLeaf(statements=statements, cond=cond,
                        name="B%d" % self.leaf_count)

    def build_sequence(self, statements, name=""):
        """Build a CdfgSeq from a statement list."""
        children = []
        buffer = []

        def flush():
            if buffer:
                children.append(self._new_leaf(list(buffer)))
                buffer.clear()

        for statement in statements:
            if isinstance(statement, ast.Assign):
                buffer.append(statement)
            elif isinstance(statement, (ast.VarDecl, ast.InputDecl,
                                        ast.OutputDecl)):
                continue  # declarations produce no operations
            elif isinstance(statement, ast.Block):
                for nested in statement.statements:
                    if isinstance(nested, ast.Assign):
                        buffer.append(nested)
                    elif isinstance(nested, (ast.VarDecl, ast.InputDecl,
                                             ast.OutputDecl)):
                        continue
                    else:
                        flush()
                        children.append(self.build_statement(nested))
            elif isinstance(statement, ast.For):
                # The init assignment runs once, with the preceding code.
                buffer.append(statement.init)
                flush()
                children.append(self.build_for(statement))
            else:
                flush()
                children.append(self.build_statement(statement))
        flush()
        return CdfgSeq(children, name=name)

    def build_statement(self, statement):
        if isinstance(statement, ast.If):
            return self.build_if(statement)
        if isinstance(statement, ast.While):
            return self.build_while(statement)
        if isinstance(statement, ast.For):
            return self.build_for(statement)
        if isinstance(statement, ast.Wait):
            return CdfgWait(statement.cycles)
        raise SemanticError("unsupported statement %r at line %d"
                            % (type(statement).__name__, statement.line))

    def build_if(self, statement):
        test = self._new_leaf([], cond=statement.cond)
        then_body = self.build_sequence(statement.then_body.statements)
        else_body = None
        if statement.else_body is not None:
            else_body = self.build_sequence(statement.else_body.statements)
        return CdfgBranch(test, then_body, else_body)

    def build_while(self, statement):
        test = self._new_leaf([], cond=statement.cond)
        body = self.build_sequence(statement.body.statements)
        return CdfgLoop(test, body)

    def build_for(self, statement):
        # for (init; cond; update) body  ==  init; while (cond) {body; update}
        # (init was already emitted into the preceding basic block).
        test = self._new_leaf([], cond=statement.cond)
        body_statements = list(statement.body.statements) + [statement.update]
        body = self.build_sequence(body_statements)
        return CdfgLoop(test, body)


def build_cdfg(program_ast, name="main"):
    """Build the CDFG of a parsed program."""
    return _CdfgBuilder().build_sequence(program_ast.statements, name=name)


def cdfg_to_bsb(node):
    """Mirror a CDFG (with lowered, profiled leaves) into BSB nodes."""
    if isinstance(node, CdfgLeaf):
        return LeafBSB(node.dfg, profile_count=node.exec_count,
                       name=node.name, reads=node.reads, writes=node.writes)
    if isinstance(node, CdfgSeq):
        return SequenceBSB([cdfg_to_bsb(child) for child in node.children],
                           name=node.name)
    if isinstance(node, CdfgLoop):
        return LoopBSB(cdfg_to_bsb(node.test), [cdfg_to_bsb(node.body)],
                       name=node.name)
    if isinstance(node, CdfgBranch):
        branches = [[cdfg_to_bsb(node.then_body)]]
        if node.else_body is not None:
            branches.append([cdfg_to_bsb(node.else_body)])
        return BranchBSB(cdfg_to_bsb(node.test), branches, name=node.name)
    if isinstance(node, CdfgWait):
        return WaitBSB([], name=node.name)
    raise SemanticError("cannot convert CDFG node %r" % (node,))


@dataclass
class Program:
    """A compiled, profiled application ready for allocation.

    A Program is built by :func:`compile_source` (a cold compile) or
    hydrated from the persistent program store
    (:func:`repro.io.serialize.program_from_dict`).  Hydrated programs
    carry ``ast=None`` and ``cdfg=None``: those are frontend artefacts
    the allocate -> PACE -> evaluate pipeline never reads, and only a
    cold compile rebuilds them (the ``export`` visualisations load
    applications directly for this reason).

    Attributes:
        name: Application name.
        source: The mini-C source text.
        ast: The parsed program (``None`` for hydrated programs).
        cdfg: The CDFG root, a CdfgSeq (``None`` for hydrated
            programs).
        bsb_root: The BSB hierarchy root.
        bsbs: The flattened leaf-BSB array (empty leaves dropped).
        inputs: The input values used for profiling.
        final_values: Scalar variable values after the profiled run.
        outputs: Values of the declared ``output`` variables.
    """

    name: str
    source: str
    ast: object
    cdfg: object
    bsb_root: object
    bsbs: list
    inputs: dict = field(default_factory=dict)
    final_values: dict = field(default_factory=dict)
    outputs: dict = field(default_factory=dict)

    def source_lines(self):
        """Number of non-blank source lines (the paper's Lines column)."""
        return sum(1 for line in self.source.splitlines() if line.strip())

    def bsb_by_name(self, name):
        for bsb in self.bsbs:
            if bsb.name == name:
                return bsb
        raise KeyError("no BSB named %r in %s" % (name, self.name))


def compile_source(source, name="app", inputs=None, max_steps=5_000_000):
    """Full pipeline: parse, build CDFG, lower, profile, build BSBs.

    Args:
        source: Mini-C source text.
        name: Application name.
        inputs: Mapping of ``input``-declared names to integer values
            used for the profiling run (missing names default to 0).
        max_steps: Profiling execution budget (statement evaluations).
    """
    from repro.profiling.interpreter import profile_cdfg

    global _frontend_compiles
    _frontend_compiles += 1
    program_ast = parse(source)
    cdfg = build_cdfg(program_ast, name=name)
    lower_all_leaves(cdfg)
    run = profile_cdfg(cdfg, program_ast, inputs=inputs,
                       max_steps=max_steps)
    bsb_root = cdfg_to_bsb(cdfg)
    bsbs = [bsb for bsb in leaf_array(bsb_root) if len(bsb.dfg)]
    outputs = {name_: run.scalars.get(name_, 0)
               for name_ in program_ast.outputs}
    return Program(
        name=name,
        source=source,
        ast=program_ast,
        cdfg=cdfg,
        bsb_root=bsb_root,
        bsbs=bsbs,
        inputs=dict(run.inputs),
        final_values=dict(run.scalars),
        outputs=outputs,
    )
