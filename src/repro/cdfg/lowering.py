"""Lowering of CDFG leaves to data-flow graphs.

Each leaf (basic block) becomes one DFG: expressions turn into operation
nodes, data dependencies follow def-use chains within the block, and
array traffic is serialised through LOAD/STORE dependencies.  Variables
read before any in-block definition form the leaf's ``reads`` set
(live-in); variables the block defines form its ``writes`` set — the
sets the communication model charges at HW/SW boundaries.
"""

from repro.errors import SemanticError
from repro.ir.dfg import DFG
from repro.ir.ops import OpType
from repro.lang import ast_nodes as ast

#: Binary operator -> operation type.
BINARY_OPTYPES = {
    "+": OpType.ADD,
    "-": OpType.SUB,
    "*": OpType.MUL,
    "/": OpType.DIV,
    "%": OpType.MOD,
    "<<": OpType.SHIFT,
    ">>": OpType.SHIFT,
    "&": OpType.AND,
    "|": OpType.OR,
    "^": OpType.XOR,
    "<": OpType.CMP,
    "<=": OpType.CMP,
    ">": OpType.CMP,
    ">=": OpType.CMP,
    "==": OpType.CMP,
    "!=": OpType.CMP,
}

UNARY_OPTYPES = {
    "-": OpType.NEG,
    "~": OpType.NOT,
}


def constant_value(expr):
    """Value of a compile-time-constant expression, else ``None``.

    The lowering folds constant subtrees into a single CONST operation —
    what any real frontend does — so literal arithmetic like
    ``(256 << 8)`` does not masquerade as data-path work.
    """
    from repro.profiling.interpreter import c_div, c_mod

    if isinstance(expr, ast.NumberLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp):
        value = constant_value(expr.operand)
        if value is None:
            return None
        return -value if expr.op == "-" else ~value
    if isinstance(expr, ast.BinaryOp):
        left = constant_value(expr.left)
        right = constant_value(expr.right)
        if left is None or right is None:
            return None
        try:
            return _fold_binary(expr.op, left, right, c_div, c_mod)
        except Exception:
            return None
    return None


def _fold_binary(op, left, right, c_div, c_mod):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return c_div(left, right)
    if op == "%":
        return c_mod(left, right)
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    raise SemanticError("unknown binary operator %r" % op)


class _LeafLowering:
    """Single-leaf lowering state."""

    def __init__(self, leaf):
        self.leaf = leaf
        self.dfg = DFG(name=leaf.name)
        self.defs = {}            # scalar name -> producing Operation
        self.reads = set()        # live-in scalar/array names
        self.writes = set()       # defined scalar/array names
        self.last_store = {}      # array name -> last STORE op
        self.loads_since_store = {}  # array name -> LOAD ops after store

    # ------------------------------------------------------------------
    def lower(self):
        for statement in self.leaf.statements:
            self._lower_assign(statement)
        if self.leaf.cond is not None:
            self._lower_expr(self.leaf.cond)
        self.leaf.dfg = self.dfg
        self.leaf.reads = set(self.reads)
        self.leaf.writes = set(self.writes)
        return self.leaf

    # ------------------------------------------------------------------
    def _lower_assign(self, statement):
        if not isinstance(statement, ast.Assign):
            raise SemanticError(
                "leaf blocks may only contain assignments, got %r near "
                "line %d" % (type(statement).__name__, statement.line))
        value_op = self._lower_expr(statement.expr)
        target = statement.target
        if isinstance(target, ast.VarRef):
            if value_op is None:
                # Plain copy of an external value: y = x;
                value_op = self.dfg.new_operation(
                    OpType.MOV, label=target.name)
            self.defs[target.name] = value_op
            self.writes.add(target.name)
        elif isinstance(target, ast.ArrayRef):
            index_op = self._lower_expr(target.index)
            store = self.dfg.new_operation(OpType.STORE, label=target.name,
                                           value=target.name)
            for dependency in (value_op, index_op):
                if dependency is not None:
                    self.dfg.add_dependency(dependency, store)
            self._serialize_store(target.name, store)
            self.writes.add(target.name)
        else:
            raise SemanticError("cannot assign to %r" % (target,))

    def _serialize_store(self, array, store):
        previous = self.last_store.get(array)
        if previous is not None:
            self.dfg.add_dependency(previous, store)
        for load in self.loads_since_store.get(array, []):
            self.dfg.add_dependency(load, store)
        self.last_store[array] = store
        self.loads_since_store[array] = []

    # ------------------------------------------------------------------
    def _lower_expr(self, expr):
        """Lower an expression; returns its producing op.

        Returns ``None`` for a bare reference to an external scalar —
        the value arrives through a register, not an operation.
        """
        if isinstance(expr, ast.NumberLiteral):
            return self.dfg.new_operation(OpType.CONST,
                                          label=str(expr.value),
                                          value=expr.value)
        if isinstance(expr, ast.VarRef):
            if expr.name in self.defs:
                return self.defs[expr.name]
            self.reads.add(expr.name)
            return None
        if isinstance(expr, ast.ArrayRef):
            index_op = self._lower_expr(expr.index)
            load = self.dfg.new_operation(OpType.LOAD, label=expr.name,
                                          value=expr.name)
            if index_op is not None:
                self.dfg.add_dependency(index_op, load)
            previous_store = self.last_store.get(expr.name)
            if previous_store is not None:
                self.dfg.add_dependency(previous_store, load)
            else:
                self.reads.add(expr.name)
            self.loads_since_store.setdefault(expr.name, []).append(load)
            return load
        if isinstance(expr, ast.UnaryOp):
            folded = constant_value(expr)
            if folded is not None:
                return self.dfg.new_operation(OpType.CONST,
                                              label=str(folded),
                                              value=folded)
            operand_op = self._lower_expr(expr.operand)
            optype = UNARY_OPTYPES.get(expr.op)
            if optype is None:
                raise SemanticError("unknown unary operator %r" % expr.op)
            op = self.dfg.new_operation(optype, label=expr.op)
            if operand_op is not None:
                self.dfg.add_dependency(operand_op, op)
            return op
        if isinstance(expr, ast.BinaryOp):
            folded = constant_value(expr)
            if folded is not None:
                return self.dfg.new_operation(OpType.CONST,
                                              label=str(folded),
                                              value=folded)
            optype = BINARY_OPTYPES.get(expr.op)
            if optype is None:
                raise SemanticError("unknown binary operator %r" % expr.op)
            left_op = self._lower_expr(expr.left)
            # A shift by a compile-time constant is wiring inside the
            # shifter, not a constant-generator request.
            if (optype is OpType.SHIFT
                    and constant_value(expr.right) is not None):
                right_op = None
            else:
                right_op = self._lower_expr(expr.right)
            op = self.dfg.new_operation(optype, label=expr.op)
            for dependency in (left_op, right_op):
                if dependency is not None:
                    self.dfg.add_dependency(dependency, op)
            return op
        raise SemanticError("cannot lower expression %r" % (expr,))


def lower_leaf(leaf):
    """Lower one CDFG leaf in place (fills dfg/reads/writes)."""
    return _LeafLowering(leaf).lower()


def lower_all_leaves(root):
    """Lower every leaf below a CDFG root; returns the leaf list."""
    leaves = root.leaves()
    for leaf in leaves:
        lower_leaf(leaf)
    return leaves
