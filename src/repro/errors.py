"""Exception hierarchy for the LYCOS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LangError(ReproError):
    """Base class for frontend (lexing/parsing) errors."""


class LexerError(LangError):
    """Raised when the lexer encounters an invalid character or literal."""

    def __init__(self, message, line, column):
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column


class ParseError(LangError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = " (line %d" % line
            if column is not None:
                location += ", column %d" % column
            location += ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SemanticError(LangError):
    """Raised for semantic violations (undefined variables, bad types)."""


class CdfgError(ReproError):
    """Raised for malformed control/data-flow graphs."""


class SchedulingError(ReproError):
    """Raised when a DFG cannot be scheduled (cycles, missing resources)."""


class ResourceError(ReproError):
    """Raised for unknown resources or inconsistent resource libraries."""


class AllocationError(ReproError):
    """Raised when the allocation algorithm receives invalid inputs."""


class PartitionError(ReproError):
    """Raised when the PACE partitioner receives invalid inputs."""


class StoreIntegrityError(ReproError):
    """Raised when a persistent-store invariant is violated.

    The flagship case is mutation-after-registration: the engine store
    fingerprints libraries, technologies and BSBs *once*, when they are
    registered, and persists cache entries under those hashes.  An
    object mutated afterwards would silently persist entries keyed by
    its stale fingerprint — wrong data served to every future session —
    so the store re-verifies fingerprints at flush time and raises this
    error instead of writing."""


class InterpreterError(ReproError):
    """Raised when profiling execution of an application fails."""
