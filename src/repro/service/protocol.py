"""Wire protocol of the exploration service: JSON lines over a socket.

One request per line, one (or, for ``results``, a stream of) response
line(s) back.  Every message is a JSON object; requests carry an
``op`` discriminator, responses carry ``ok``.  The format is designed
to be driven by hand (``nc localhost 7421``) as much as by the
:mod:`~repro.service.client`:

    {"op": "auth", "token": "..."}
    {"op": "ping"}
    {"op": "submit", "points": [{"kind": "design-point", ...}, ...]}
    {"op": "status", "job": "job-1"}
    {"op": "results", "job": "job-1"}
    {"op": "cancel", "job": "job-1"}
    {"op": "jobs"}
    {"op": "shutdown"}

Design points and point results travel in their
:mod:`repro.io.serialize` layouts, so a submission file and a service
submission are the same document.  Malformed requests are *rejected*
(``{"ok": false, "error": ...}``) without disturbing the connection or
any running job; only framing violations (a line past
:data:`MAX_LINE_BYTES`) drop the connection.

Auth: a server started with a shared token requires each connection's
*first* request to be ``{"op": "auth", "token": ...}`` (compared in
constant time); any other request on an unauthenticated connection is
rejected with ``auth_required`` set and the connection is dropped
before any job state exists.  Without a token (the loopback default)
the handshake is a no-op and a token-carrying client still works.

Backpressure: when the server's pending-point cap is reached, a submit
is rejected with ``retry_after`` (seconds) in the error document; the
:class:`~repro.service.client.ServiceClient` retries such rejections
with capped exponential backoff.  Submissions may carry an optional
``client`` label and ``weight`` (see :func:`submission_meta`) that the
``fair`` scheduler uses for per-client weighted round-robin.
"""

import json

from repro.errors import ReproError
from repro.io.serialize import design_point_from_dict

PROTOCOL_VERSION = 1

#: Hard cap on one framed line (requests and responses).  A submission
#: of MAX_BATCH_POINTS points stays far below this.
MAX_LINE_BYTES = 1 << 20

#: Hard cap on the points of one submission; keeps a single request
#: from swallowing the queue (real backpressure is a follow-on).
MAX_BATCH_POINTS = 4096

#: Every operation the server understands.
OPS = ("auth", "ping", "submit", "status", "results", "cancel", "jobs",
       "shutdown")

#: Cap on the optional per-submission client label.
MAX_CLIENT_CHARS = 200

#: Cap on the optional per-submission fair-scheduler weight.
MAX_WEIGHT = 100


class ProtocolError(ReproError):
    """A malformed request (bad JSON, unknown op, bad payload)."""


def encode(message):
    """One response/request line: compact JSON plus the newline."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(line):
    """Parse one request line; :class:`ProtocolError` when malformed."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line exceeds %d bytes"
                            % MAX_LINE_BYTES)
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError("request is not valid JSON") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object, got %s"
                            % type(message).__name__)
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError("unknown op %r (expected one of %s)"
                            % (op, ", ".join(OPS)))
    return message


def submission_points(request):
    """The validated :class:`DesignPoint` list of a submit request.

    Structural validation only — an unknown *app name* is accepted here
    and surfaces later as that point's ``error`` (the per-point
    contract), whereas a structurally bad point rejects the whole
    submission before anything is queued.
    """
    points = request.get("points")
    if not isinstance(points, list) or not points:
        raise ProtocolError("submit needs a non-empty 'points' list")
    if len(points) > MAX_BATCH_POINTS:
        raise ProtocolError("submission of %d points exceeds the %d "
                            "point batch cap" % (len(points),
                                                 MAX_BATCH_POINTS))
    decoded = []
    for position, data in enumerate(points):
        try:
            decoded.append(design_point_from_dict(data))
        except ReproError as exc:
            raise ProtocolError("points[%d]: %s"
                                % (position, exc)) from None
    return decoded


def submission_meta(request):
    """The validated ``(client, weight)`` of a submit request.

    Both are optional — ``client`` (a label the ``fair`` scheduler
    buckets by) defaults to the anonymous lane, ``weight`` to 1 — but
    when present they must be well-formed, like any other field.
    """
    client = request.get("client", "")
    if client is None:
        client = ""
    if not isinstance(client, str) or len(client) > MAX_CLIENT_CHARS:
        raise ProtocolError("'client' must be a string of at most %d "
                            "characters" % MAX_CLIENT_CHARS)
    weight = request.get("weight", 1)
    if isinstance(weight, bool) or not isinstance(weight, int) \
            or not 1 <= weight <= MAX_WEIGHT:
        raise ProtocolError("'weight' must be an integer in [1, %d]"
                            % MAX_WEIGHT)
    return client, weight


def auth_token(request):
    """The token string of an auth request; loud when malformed."""
    token = request.get("token")
    if not isinstance(token, str) or not token:
        raise ProtocolError("auth needs a non-empty 'token' string")
    return token


def job_name(request):
    """The job id a status/results/cancel request names."""
    job = request.get("job")
    if not isinstance(job, str) or not job:
        raise ProtocolError("request needs a 'job' id string")
    return job


def ok(**fields):
    """A success response."""
    response = {"ok": True}
    response.update(fields)
    return response


def error(message, **fields):
    """A rejection response; ``fields`` carry structured detail
    (``retry_after`` on a backpressure rejection, ``auth_required`` on
    an unauthenticated request)."""
    response = {"ok": False, "error": str(message)}
    response.update(fields)
    return response
