"""Wire protocol of the exploration service: JSON lines over a socket.

One request per line, one (or, for ``results``, a stream of) response
line(s) back.  Every message is a JSON object; requests carry an
``op`` discriminator, responses carry ``ok``.  The format is designed
to be driven by hand (``nc localhost 7421``) as much as by the
:mod:`~repro.service.client`:

    {"op": "ping"}
    {"op": "submit", "points": [{"kind": "design-point", ...}, ...]}
    {"op": "status", "job": "job-1"}
    {"op": "results", "job": "job-1"}
    {"op": "cancel", "job": "job-1"}
    {"op": "jobs"}
    {"op": "shutdown"}

Design points and point results travel in their
:mod:`repro.io.serialize` layouts, so a submission file and a service
submission are the same document.  Malformed requests are *rejected*
(``{"ok": false, "error": ...}``) without disturbing the connection or
any running job; only framing violations (a line past
:data:`MAX_LINE_BYTES`) drop the connection.

The service authenticates nobody and binds loopback by default — it is
an engine frontend for mutually trusting local clients, exactly like
the pickle-shard store it sits on (see the trust note in
:mod:`repro.engine.store`).  Auth and backpressure are recorded as
ROADMAP follow-ons.
"""

import json

from repro.errors import ReproError
from repro.io.serialize import design_point_from_dict

PROTOCOL_VERSION = 1

#: Hard cap on one framed line (requests and responses).  A submission
#: of MAX_BATCH_POINTS points stays far below this.
MAX_LINE_BYTES = 1 << 20

#: Hard cap on the points of one submission; keeps a single request
#: from swallowing the queue (real backpressure is a follow-on).
MAX_BATCH_POINTS = 4096

#: Every operation the server understands.
OPS = ("ping", "submit", "status", "results", "cancel", "jobs",
       "shutdown")


class ProtocolError(ReproError):
    """A malformed request (bad JSON, unknown op, bad payload)."""


def encode(message):
    """One response/request line: compact JSON plus the newline."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(line):
    """Parse one request line; :class:`ProtocolError` when malformed."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line exceeds %d bytes"
                            % MAX_LINE_BYTES)
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError("request is not valid JSON") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object, got %s"
                            % type(message).__name__)
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError("unknown op %r (expected one of %s)"
                            % (op, ", ".join(OPS)))
    return message


def submission_points(request):
    """The validated :class:`DesignPoint` list of a submit request.

    Structural validation only — an unknown *app name* is accepted here
    and surfaces later as that point's ``error`` (the per-point
    contract), whereas a structurally bad point rejects the whole
    submission before anything is queued.
    """
    points = request.get("points")
    if not isinstance(points, list) or not points:
        raise ProtocolError("submit needs a non-empty 'points' list")
    if len(points) > MAX_BATCH_POINTS:
        raise ProtocolError("submission of %d points exceeds the %d "
                            "point batch cap" % (len(points),
                                                 MAX_BATCH_POINTS))
    decoded = []
    for position, data in enumerate(points):
        try:
            decoded.append(design_point_from_dict(data))
        except ReproError as exc:
            raise ProtocolError("points[%d]: %s"
                                % (position, exc)) from None
    return decoded


def job_name(request):
    """The job id a status/results/cancel request names."""
    job = request.get("job")
    if not isinstance(job, str) or not job:
        raise ProtocolError("request needs a 'job' id string")
    return job


def ok(**fields):
    """A success response."""
    response = {"ok": True}
    response.update(fields)
    return response


def error(message):
    """A rejection response."""
    return {"ok": False, "error": str(message)}
