"""Wire protocol of the exploration service: JSON lines over a socket.

One request per line, one (or, for ``results``, a stream of) response
line(s) back.  Every message is a JSON object; requests carry an
``op`` discriminator, responses carry ``ok``.  The format is designed
to be driven by hand (``nc localhost 7421``) as much as by the
:mod:`~repro.service.client`:

    {"op": "auth", "token": "..."}
    {"op": "ping"}
    {"op": "submit", "points": [{"kind": "design-point", ...}, ...]}
    {"op": "status", "job": "job-1"}
    {"op": "results", "job": "job-1"}
    {"op": "cancel", "job": "job-1"}
    {"op": "jobs"}
    {"op": "shutdown"}

Design points and point results travel in their
:mod:`repro.io.serialize` layouts, so a submission file and a service
submission are the same document.  Malformed requests are *rejected*
(``{"ok": false, "error": ...}``) without disturbing the connection or
any running job; only framing violations (a line past
:data:`MAX_LINE_BYTES`) drop the connection.

Auth: a server started with a shared token requires each connection's
*first* request to be ``{"op": "auth", "token": ...}`` (compared in
constant time); any other request on an unauthenticated connection is
rejected with ``auth_required`` set and the connection is dropped
before any job state exists.  Without a token (the loopback default)
the handshake is a no-op and a token-carrying client still works.

Backpressure: when the server's pending-point cap is reached, a submit
is rejected with ``retry_after`` (seconds) in the error document; the
:class:`~repro.service.client.ServiceClient` retries such rejections
with capped exponential backoff.  Submissions may carry an optional
``client`` label and ``weight`` (see :func:`submission_meta`) that the
``fair`` scheduler uses for per-client weighted round-robin.

The fabric ops (ISSUE 7) ride the same line-JSON conversation, on the
worker's one persistent connection:

    {"op": "join", "engine": "builder-7", "slots": 2}
    {"op": "lease", "engine": "remote-1", "max": 2, "wait": 2.0}
    {"op": "delta", "engine": "remote-1", "results": [...], "store": "..."}
    {"op": "engine-heartbeat", "engine": "remote-1"}

``join`` registers a remote engine (auth first, like every op);
``lease`` long-polls for placed units; ``delta`` delivers evaluated
results plus an optional cache-store delta.  Store deltas are the
stable-encoded entry mappings of
:meth:`~repro.engine.store.CacheStore.export_delta` — the exact
structures the store pickles to its shards — so the wire form is a
zlib-compressed pickle in base64 (:func:`encode_store_delta`), split
into line-budget frames by :func:`store_delta_frames`.  The same
trust boundary as the shards applies: deltas are only ever decoded
from *joined* (hence authenticated) engines, and a malformed blob is
rejected as a whole frame before any of it touches coordinator state.
"""

import base64
import json
import pickle
import zlib

from repro.errors import ReproError
from repro.io.serialize import design_point_from_dict

PROTOCOL_VERSION = 1

#: Hard cap on one framed line (requests and responses).  A submission
#: of MAX_BATCH_POINTS points stays far below this.
MAX_LINE_BYTES = 1 << 20

#: Hard cap on the points of one submission; keeps a single request
#: from swallowing the queue (real backpressure is a follow-on).
MAX_BATCH_POINTS = 4096

#: Every operation the server understands.
OPS = ("auth", "ping", "submit", "status", "results", "cancel", "jobs",
       "shutdown", "join", "lease", "delta", "engine-heartbeat")

#: Cap on the optional per-submission client label.
MAX_CLIENT_CHARS = 200

#: Cap on the optional per-submission fair-scheduler weight.
MAX_WEIGHT = 100

#: Cap on a joining engine's label.
MAX_ENGINE_CHARS = 100

#: Cap on a remote engine's advertised evaluation slots (also the cap
#: on one lease's ``max``): a worker process is one machine, not a
#: cluster, and a huge lease would defeat re-balancing.
MAX_ENGINE_SLOTS = 64

#: Cap on one lease's long-poll budget in seconds; the worker re-leases
#: in a loop, so a longer wait buys nothing but teardown latency.
MAX_LEASE_WAIT = 30.0

#: Budget for one encoded store-delta frame, comfortably under the
#: line cap once the JSON envelope is added.
DELTA_FRAME_BYTES = MAX_LINE_BYTES - (64 << 10)


class ProtocolError(ReproError):
    """A malformed request (bad JSON, unknown op, bad payload)."""


def encode(message):
    """One response/request line: compact JSON plus the newline."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(line):
    """Parse one request line; :class:`ProtocolError` when malformed."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line exceeds %d bytes"
                            % MAX_LINE_BYTES)
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError("request is not valid JSON") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object, got %s"
                            % type(message).__name__)
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError("unknown op %r (expected one of %s)"
                            % (op, ", ".join(OPS)))
    return message


def submission_points(request):
    """The validated :class:`DesignPoint` list of a submit request.

    Structural validation only — an unknown *app name* is accepted here
    and surfaces later as that point's ``error`` (the per-point
    contract), whereas a structurally bad point rejects the whole
    submission before anything is queued.
    """
    points = request.get("points")
    if not isinstance(points, list) or not points:
        raise ProtocolError("submit needs a non-empty 'points' list")
    if len(points) > MAX_BATCH_POINTS:
        raise ProtocolError("submission of %d points exceeds the %d "
                            "point batch cap" % (len(points),
                                                 MAX_BATCH_POINTS))
    decoded = []
    for position, data in enumerate(points):
        try:
            decoded.append(design_point_from_dict(data))
        except ReproError as exc:
            raise ProtocolError("points[%d]: %s"
                                % (position, exc)) from None
    return decoded


def submission_objective(request):
    """The validated objective name of a submit request.

    Optional: defaults to ``"speedup"`` (the historical contract).
    Anything else must be one of
    :data:`~repro.core.objective.OBJECTIVE_NAMES` — a submission
    naming a made-up objective is rejected whole, like any other
    malformed field, before anything is queued.
    """
    from repro.core.objective import OBJECTIVE_NAMES

    objective = request.get("objective", "speedup")
    if objective is None:
        objective = "speedup"
    if not isinstance(objective, str) \
            or objective not in OBJECTIVE_NAMES:
        raise ProtocolError("'objective' must be one of %s"
                            % ", ".join(OBJECTIVE_NAMES))
    return objective


def submission_meta(request):
    """The validated ``(client, weight)`` of a submit request.

    Both are optional — ``client`` (a label the ``fair`` scheduler
    buckets by) defaults to the anonymous lane, ``weight`` to 1 — but
    when present they must be well-formed, like any other field.
    """
    client = request.get("client", "")
    if client is None:
        client = ""
    if not isinstance(client, str) or len(client) > MAX_CLIENT_CHARS:
        raise ProtocolError("'client' must be a string of at most %d "
                            "characters" % MAX_CLIENT_CHARS)
    weight = request.get("weight", 1)
    if isinstance(weight, bool) or not isinstance(weight, int) \
            or not 1 <= weight <= MAX_WEIGHT:
        raise ProtocolError("'weight' must be an integer in [1, %d]"
                            % MAX_WEIGHT)
    return client, weight


def auth_token(request):
    """The token string of an auth request; loud when malformed."""
    token = request.get("token")
    if not isinstance(token, str) or not token:
        raise ProtocolError("auth needs a non-empty 'token' string")
    return token


def job_name(request):
    """The job id a status/results/cancel request names."""
    job = request.get("job")
    if not isinstance(job, str) or not job:
        raise ProtocolError("request needs a 'job' id string")
    return job


# ----------------------------------------------------------------------
# Fabric ops: join / lease / delta / engine-heartbeat
# ----------------------------------------------------------------------
def engine_name(request):
    """The engine id a lease/delta/heartbeat request names."""
    engine = request.get("engine")
    if not isinstance(engine, str) or not engine \
            or len(engine) > MAX_ENGINE_CHARS:
        raise ProtocolError("request needs an 'engine' id string of at "
                            "most %d characters" % MAX_ENGINE_CHARS)
    return engine


def join_fields(request):
    """The validated ``(label, slots)`` of a join request.

    ``engine`` is the worker's *suggested* label (the coordinator
    uniquifies it); ``slots`` is how many units the worker wants
    leased to it at once.
    """
    label = request.get("engine", "")
    if label is None:
        label = ""
    if not isinstance(label, str) or len(label) > MAX_ENGINE_CHARS:
        raise ProtocolError("'engine' must be a string of at most %d "
                            "characters" % MAX_ENGINE_CHARS)
    slots = request.get("slots", 1)
    if isinstance(slots, bool) or not isinstance(slots, int) \
            or not 1 <= slots <= MAX_ENGINE_SLOTS:
        raise ProtocolError("'slots' must be an integer in [1, %d]"
                            % MAX_ENGINE_SLOTS)
    return label, slots


def lease_fields(request):
    """The validated ``(max_units, wait)`` of a lease request."""
    max_units = request.get("max", 1)
    if isinstance(max_units, bool) or not isinstance(max_units, int) \
            or not 1 <= max_units <= MAX_ENGINE_SLOTS:
        raise ProtocolError("'max' must be an integer in [1, %d]"
                            % MAX_ENGINE_SLOTS)
    wait = request.get("wait", 0.0)
    if isinstance(wait, bool) or not isinstance(wait, (int, float)) \
            or not 0 <= wait <= MAX_LEASE_WAIT:
        raise ProtocolError("'wait' must be a number of seconds in "
                            "[0, %s]" % MAX_LEASE_WAIT)
    return max_units, float(wait)


def _stats_delta(data):
    """Validate one wire stats delta: stage -> [hits, misses]."""
    if data is None:
        return {}
    if not isinstance(data, dict):
        raise ProtocolError("'stats' must be a mapping")
    delta = {}
    for stage, pair in data.items():
        if not isinstance(stage, str) \
                or not isinstance(pair, (list, tuple)) \
                or len(pair) != 2 \
                or not all(isinstance(count, int)
                           and not isinstance(count, bool)
                           and count >= 0 for count in pair):
            raise ProtocolError("'stats' entries must map a stage name "
                                "to [hits, misses]")
        delta[stage] = (pair[0], pair[1])
    return delta


def delta_fields(request):
    """The validated ``(results, store_blob)`` of a delta request.

    ``results`` is a list of ``(job id, index, result document, stats
    delta)`` tuples — structurally validated here, while the result
    documents themselves are decoded by the server against its library
    (so the whole frame is rejected before any of it is applied).
    ``store_blob`` is the still-encoded store delta (or ``None``); the
    caller decodes it with :func:`decode_store_delta` only after the
    engine's identity checks pass.
    """
    entries = request.get("results", [])
    if not isinstance(entries, list):
        raise ProtocolError("'results' must be a list")
    if len(entries) > MAX_BATCH_POINTS:
        raise ProtocolError("delta of %d results exceeds the %d cap"
                            % (len(entries), MAX_BATCH_POINTS))
    results = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ProtocolError("results[%d] must be an object"
                                % position)
        job = entry.get("job")
        if not isinstance(job, str) or not job:
            raise ProtocolError("results[%d] needs a 'job' id string"
                                % position)
        index = entry.get("index")
        if isinstance(index, bool) or not isinstance(index, int) \
                or index < 0:
            raise ProtocolError("results[%d] needs a non-negative "
                                "integer 'index'" % position)
        document = entry.get("result")
        if not isinstance(document, dict):
            raise ProtocolError("results[%d] needs a 'result' document"
                                % position)
        results.append((job, index, document,
                        _stats_delta(entry.get("stats"))))
    blob = request.get("store")
    if blob is not None and not isinstance(blob, str):
        raise ProtocolError("'store' must be an encoded delta string "
                            "or null")
    return results, blob


def encode_store_delta(delta):
    """One store delta as a line-safe string (pickle -> zlib -> b64)."""
    packed = pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(zlib.compress(packed)).decode("ascii")


def decode_store_delta(blob):
    """Decode one wire store delta; :class:`ProtocolError` when bad.

    Anything short of a well-shaped ``{stage: {stable key: value}}``
    mapping — bad base64, bad zlib, a truncated pickle, the wrong
    structure — rejects the frame.  Only call this for blobs received
    from a *joined* engine: decoding is unpickling, and the join
    handshake (behind auth) is the trust boundary, exactly as it is
    for the store's own shard files.
    """
    delta, _, _ = decode_store_delta_sized(blob)
    return delta


def decode_store_delta_sized(blob):
    """:func:`decode_store_delta` plus the frame's transport sizes.

    Returns ``(delta, raw_bytes, compressed_bytes)`` where
    ``compressed_bytes`` is what actually crossed the wire (the
    base64-decoded zlib stream) and ``raw_bytes`` is the decompressed
    pickle it stands for — the pair the coordinator's compression
    accounting reports per engine.
    """
    try:
        compressed = base64.b64decode(blob.encode("ascii"),
                                      validate=True)
        packed = zlib.decompress(compressed)
        delta = pickle.loads(packed)
    except Exception:
        raise ProtocolError("undecodable store delta") from None
    if not isinstance(delta, dict) or not all(
            isinstance(stage, str) and isinstance(entries, dict)
            for stage, entries in delta.items()):
        raise ProtocolError("store delta must map stage names to "
                            "entry mappings")
    return delta, len(packed), len(compressed)


def store_delta_frames(delta, budget=DELTA_FRAME_BYTES):
    """Split a store delta into encoded blobs within the line budget.

    Entries are greedily packed per frame; a single entry whose lone
    encoding still exceeds the budget is *dropped* — losing a cache
    delta only costs warmth (the entry is recomputed cold elsewhere),
    never correctness, and an oversized frame would cost the whole
    connection.  Returns a list of encoded blobs (empty for an empty
    delta); the dropped-entry count is available as the second element
    of the returned tuple.
    """
    flat = [(stage, key, value)
            for stage, entries in (delta or {}).items()
            for key, value in entries.items()]
    if not flat:
        return [], 0
    whole = encode_store_delta(delta)
    if len(whole) <= budget:
        return [whole], 0
    frames = []
    dropped = 0
    pending = {}
    pending_cost = 0

    def close_frame():
        nonlocal pending, pending_cost
        if pending:
            frames.append(encode_store_delta(pending))
            pending = {}
            pending_cost = 0

    for stage, key, value in flat:
        alone = encode_store_delta({stage: {key: value}})
        if len(alone) > budget:
            dropped += 1
            continue
        if pending_cost + len(alone) > budget:
            close_frame()
        pending.setdefault(stage, {})[key] = value
        pending_cost += len(alone)
    close_frame()
    return frames, dropped


def ok(**fields):
    """A success response."""
    response = {"ok": True}
    response.update(fields)
    return response


def error(message, **fields):
    """A rejection response; ``fields`` carry structured detail
    (``retry_after`` on a backpressure rejection, ``auth_required`` on
    an unauthenticated request)."""
    response = {"ok": False, "error": str(message)}
    response.update(fields)
    return response
