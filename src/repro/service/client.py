"""Blocking client for the exploration service.

One TCP connection per request (the server is connection-agnostic and
the requests are tiny), which is what makes many concurrent clients
trivial — there is no session state to multiplex.  ``results`` keeps
its connection open and yields completions as the server streams them.

The client speaks :mod:`~repro.service.protocol` documents and hands
back engine objects: ``submit`` accepts
:class:`~repro.engine.design_point.DesignPoint` instances (or app-name
strings, or already-serialised dicts) and ``results`` yields
``(index, PointResult)`` pairs — a failed point comes back with
``result.error`` set, never as an exception.

Hardening (ISSUE 4): a ``token`` is presented in an auth handshake on
every connection; a backpressure rejection (the server's structured
``retry_after``) is retried with capped exponential backoff inside a
``retry_budget``; and a connection the *server* drops mid-request — an
unauthenticated link, an oversized line — surfaces as a typed
:class:`ServiceError` carrying the server's last structured error
message instead of an opaque ``ConnectionResetError``.

The retry/backoff contract lives in :class:`RetryingClientMixin` so
the HTTP client (:class:`~repro.service.http_client.HttpServiceClient`)
shares the *same* helper — accounting, jitter envelope and budget math
are defined once, here, for both transports.
"""

import itertools
import json
import os
import random
import socket
import time

from repro.engine.design_point import DesignPoint
from repro.errors import ReproError
from repro.io.serialize import (
    design_point_to_dict,
    point_result_from_dict,
)
from repro.service import protocol
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

_CLIENT_IDS = itertools.count(1)


class ServiceError(ReproError):
    """The server rejected a request or the conversation broke down.

    ``response`` holds the server's structured error document when one
    was read; :attr:`retry_after` is the backpressure hint (seconds)
    of a queue-full rejection, ``None`` for every other failure.
    """

    def __init__(self, message, response=None):
        super().__init__(message)
        self.response = response if isinstance(response, dict) else None

    @property
    def retry_after(self):
        if self.response is None:
            return None
        value = self.response.get("retry_after")
        if isinstance(value, bool) or \
                not isinstance(value, (int, float)):
            return None
        return float(value)


def backoff_wait(hint, attempt, cap, jitter, rng):
    """One backoff sleep: capped exponential, then jittered.

    ``wait = min(cap, max(0.01, hint) * 2 ** attempt)`` is the capped
    exponential step; jitter only ever *shortens* it, so ``cap`` and
    any deadline math keep their meaning.  Exact envelope: the sleep is
    ``wait * (1 - jitter * rng.random())`` with ``rng.random()``
    uniform on ``[0, 1)``, so the sleep is uniform on
    ``((1 - jitter) * wait, wait]`` — the *top* endpoint is attainable
    (a draw of exactly 0.0 sleeps the full ``wait``), the bottom
    endpoint ``(1 - jitter) * wait`` never is in real arithmetic
    (float rounding at the maximal draw can touch it, nothing can
    cross it).  ``jitter <= 0`` returns ``wait`` exactly (the old
    deterministic schedule).

    This is the one backoff helper of both service clients
    (:class:`ServiceClient` and the HTTP client); fix it here, not in
    a copy.
    """
    wait = min(cap, max(0.01, hint) * (2 ** attempt))
    if jitter <= 0.0:
        return wait
    return wait * (1.0 - jitter * rng.random())


class RetryingClientMixin:
    """The retry/backoff contract the TCP and HTTP clients share.

    A transport mixes this in, calls :meth:`_init_retry` from its
    constructor, and funnels its submit through
    :meth:`_submit_with_retries` with a zero-argument ``send`` that
    performs one submission attempt and raises :class:`ServiceError`
    on rejection.  Backpressure rejections (``retry_after`` set) are
    retried with capped exponential jittered backoff until the budget
    deadline; every rejection absorbed along the way — *including* the
    final one a budget-exhausted submit gives up on — is counted in
    :attr:`last_submit_rejections`.
    """

    def _init_retry(self, retry_budget, retry_cap, retry_jitter,
                    retry_seed):
        self.retry_budget = float(retry_budget)
        self.retry_cap = float(retry_cap)
        if not 0.0 <= float(retry_jitter) <= 1.0:
            raise ReproError("retry_jitter must be in [0, 1], got %r"
                             % (retry_jitter,))
        self.retry_jitter = float(retry_jitter)
        self._retry_rng = random.Random(retry_seed)
        self.last_submit_rejections = 0

    def _backoff_wait(self, hint, attempt):
        """This client's :func:`backoff_wait` (see its envelope)."""
        return backoff_wait(hint, attempt, self.retry_cap,
                            self.retry_jitter, self._retry_rng)

    def _submit_with_retries(self, send):
        """Run ``send()`` under the shared backoff/accounting contract.

        :attr:`last_submit_rejections` counts every backpressure
        rejection this submit absorbed — the retried ones *and* the
        final one re-raised when the next wait would overrun the
        budget deadline, so the counter never under-reports the
        server's pushback.
        """
        self.last_submit_rejections = 0
        deadline = time.monotonic() + max(0.0, self.retry_budget)
        attempt = 0
        while True:
            try:
                return send()
            except ServiceError as exc:
                hint = exc.retry_after
                if hint is None:
                    raise  # not a backpressure rejection
                self.last_submit_rejections += 1
                wait = self._backoff_wait(hint, attempt)
                if time.monotonic() + wait > deadline:
                    raise
                attempt += 1
                time.sleep(wait)


class ServiceClient(RetryingClientMixin):
    """Client for one service address.

    Attributes:
        host / port: The service address.
        timeout: Per-socket-operation timeout in seconds.  ``results``
            streams block up to this long *between lines*, so pick it
            larger than the slowest single point you expect.
        token: Shared auth token; presented in a handshake on every
            connection (a token against an open server is harmless).
        client_id: The scheduling identity submissions carry — the
            ``fair`` scheduler round-robins between these.  Defaults
            to a per-instance label, so two clients in one process are
            two lanes.
        retry_budget: Total seconds :meth:`submit` may spend retrying
            queue-full rejections before giving up (0 disables).
        retry_cap: Upper bound on one backoff sleep.
        retry_jitter: Fraction of each backoff sleep randomised away,
            in [0, 1].  Clients rejected by the same queue-full event
            share the same hint and the same attempt count — without
            jitter they all sleep the *same* capped-exponential wait
            and stampede the server in lockstep, forever.  Each sleep
            is drawn uniformly from ``((1 - jitter) * wait, wait]``
            (top endpoint attainable, bottom excluded — see
            :func:`backoff_wait` for the exact envelope), so the cap
            still bounds it and jitter 0 restores the exact old
            schedule.
        retry_seed: Seed of the jitter's private ``random.Random`` —
            deterministic backoff schedules for tests; ``None`` (the
            default) seeds from the OS like any other Random.
    """

    def __init__(self, host=DEFAULT_HOST, port=DEFAULT_PORT,
                 timeout=120.0, token=None, client_id=None,
                 retry_budget=60.0, retry_cap=2.0, retry_jitter=0.5,
                 retry_seed=None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.token = token
        self.client_id = client_id if client_id is not None else \
            "client-%d-%d" % (os.getpid(), next(_CLIENT_IDS))
        self._init_retry(retry_budget, retry_cap, retry_jitter,
                         retry_seed)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self):
        return socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)

    def _handshake(self, stream):
        """Present the token (when any) before the first request."""
        if self.token is None:
            return
        self._send(stream, {"op": "auth", "token": self.token})
        self._read_line(stream)  # raises ServiceError on rejection

    def _send(self, stream, message):
        try:
            stream.write(protocol.encode(message))
            stream.flush()
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise self._dropped(stream, exc) from exc

    @staticmethod
    def _dropped(stream, exc):
        """A typed error for a connection the server tore down mid-
        request.  The server usually managed to send one structured
        error line (authentication required, oversized line) before
        closing; surface that message when it can still be read."""
        response = None
        try:
            line = stream.readline(protocol.MAX_LINE_BYTES + 1)
            data = json.loads(line.decode("utf-8"))
            if isinstance(data, dict) and data.get("error"):
                response = data
        except Exception:
            pass  # the teardown outran the error line; generic report
        if response is not None:
            return ServiceError("server dropped the connection: %s"
                                % response["error"], response=response)
        return ServiceError("server dropped the connection (%s: %s)"
                            % (type(exc).__name__, exc))

    @staticmethod
    def _read_line(stream):
        try:
            line = stream.readline(protocol.MAX_LINE_BYTES + 1)
        except (ConnectionResetError, BrokenPipeError,
                socket.timeout) as exc:
            raise ServiceError("connection lost while waiting for a "
                               "response (%s: %s)"
                               % (type(exc).__name__, exc)) from exc
        if not line:
            raise ServiceError("connection closed by the server")
        if len(line) > protocol.MAX_LINE_BYTES:
            raise ServiceError("response line exceeds %d bytes"
                               % protocol.MAX_LINE_BYTES)
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServiceError("unreadable response: %r"
                               % line[:80]) from None
        if not isinstance(message, dict):
            raise ServiceError("response must be a JSON object")
        if not message.get("ok", False):
            raise ServiceError(message.get("error", "request rejected"),
                               response=message)
        return message

    def _request(self, message):
        """Send one request, return its single response line."""
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                self._handshake(stream)
                self._send(stream, message)
                return self._read_line(stream)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self):
        """Server liveness + protocol/worker/queue info."""
        return self._request({"op": "ping"})

    def submit(self, points, weight=1, objective=None):
        """Submit a batch; returns the job id.

        A queue-full rejection (the server's ``retry_after`` hint) is
        retried with capped exponential backoff until ``retry_budget``
        runs out; :attr:`last_submit_rejections` counts *every*
        rejection the final successful (or failed) submit absorbed,
        including the one a budget-exhausted submit gives up on.
        ``weight`` is the fair-scheduler share of this client's lane.
        ``objective`` names the optimisation objective the job's
        results are ranked by on the client side; it travels with the
        job (visible in ``status``) but leaves per-point evaluation
        untouched.
        """
        documents = [self._coerce_point(point) for point in points]
        request = {"op": "submit", "points": documents}
        if self.client_id:
            request["client"] = self.client_id
        if weight != 1:
            request["weight"] = weight
        if objective is not None:
            request["objective"] = objective
        return self._submit_with_retries(
            lambda: self._request(request)["job"])

    def status(self, job_id):
        """The job's status document."""
        return self._request({"op": "status", "job": job_id})["status"]

    def cancel(self, job_id):
        """Cancel the job's pending points; returns the final status."""
        response = self._request({"op": "cancel", "job": job_id})
        return response["status"]

    def jobs(self):
        """Status documents of every job the server knows."""
        return self._request({"op": "jobs"})["jobs"]

    def shutdown(self):
        """Ask the server to stop (it flushes its store first)."""
        return self._request({"op": "shutdown"})

    def results(self, job_id, library=None):
        """Yield ``(index, PointResult)`` as points complete.

        Completion-ordered, not submission-ordered; a cancelled point
        yields ``(index, None)``.  The generator ends when the job
        reaches a terminal state; the closing status document is
        available afterwards as :attr:`last_status`.

        A caller that abandons the stream mid-job (a ``break`` after
        the first result, an explicit ``close()`` on the generator)
        tears the connection down *eagerly* in the ``finally`` below —
        ``GeneratorExit`` lands there like any other exit — instead of
        leaving the socket to whenever the garbage collector finalises
        the generator.  The server tolerates the early disconnect: its
        handler treats a reset mid-stream as the client going away,
        never as an error.
        """
        self.last_status = None
        sock = self._connect()
        try:
            stream = sock.makefile("rwb")
            try:
                self._handshake(stream)
                self._send(stream, {"op": "results", "job": job_id})
                header = self._read_line(stream)
                if not header.get("streaming"):
                    raise ServiceError("expected a results stream, got "
                                       "%r" % (header,))
                while True:
                    message = self._read_line(stream)
                    if message.get("done"):
                        self.last_status = message.get("status")
                        return
                    index = message["index"]
                    if message.get("cancelled"):
                        yield index, None
                    else:
                        yield index, point_result_from_dict(
                            message["result"], library=library)
            finally:
                try:
                    stream.close()
                except OSError:
                    pass  # flushing a dead link; the socket closes next
        finally:
            sock.close()

    def collect(self, job_id, library=None):
        """Block until terminal; results in submission order.

        Returns a list with one slot per submitted point:
        :class:`PointResult` (``error`` possibly set) or ``None`` for a
        cancelled point.
        """
        status = self.status(job_id)
        slots = [None] * status["total"]
        for index, result in self.results(job_id, library=library):
            slots[index] = result
        return slots

    @staticmethod
    def _coerce_point(point):
        if isinstance(point, DesignPoint):
            return design_point_to_dict(point)
        if isinstance(point, str):
            return design_point_to_dict(DesignPoint(app=point))
        if isinstance(point, dict):
            return point
        raise ServiceError("submit() expects DesignPoint instances, "
                           "app names or design-point dicts, got %r"
                           % (point,))
