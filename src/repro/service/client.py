"""Blocking client for the exploration service.

One TCP connection per request (the server is connection-agnostic and
the requests are tiny), which is what makes many concurrent clients
trivial — there is no session state to multiplex.  ``results`` keeps
its connection open and yields completions as the server streams them.

The client speaks :mod:`~repro.service.protocol` documents and hands
back engine objects: ``submit`` accepts
:class:`~repro.engine.design_point.DesignPoint` instances (or app-name
strings, or already-serialised dicts) and ``results`` yields
``(index, PointResult)`` pairs — a failed point comes back with
``result.error`` set, never as an exception.
"""

import json
import socket

from repro.engine.design_point import DesignPoint
from repro.errors import ReproError
from repro.io.serialize import (
    design_point_to_dict,
    point_result_from_dict,
)
from repro.service import protocol
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT


class ServiceError(ReproError):
    """The server rejected a request or the reply was unreadable."""


class ServiceClient:
    """Client for one service address.

    Attributes:
        host / port: The service address.
        timeout: Per-socket-operation timeout in seconds.  ``results``
            streams block up to this long *between lines*, so pick it
            larger than the slowest single point you expect.
    """

    def __init__(self, host=DEFAULT_HOST, port=DEFAULT_PORT,
                 timeout=120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self):
        return socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)

    @staticmethod
    def _read_line(stream):
        line = stream.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ServiceError("connection closed by the server")
        if len(line) > protocol.MAX_LINE_BYTES:
            raise ServiceError("response line exceeds %d bytes"
                               % protocol.MAX_LINE_BYTES)
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServiceError("unreadable response: %r"
                               % line[:80]) from None
        if not isinstance(message, dict):
            raise ServiceError("response must be a JSON object")
        if not message.get("ok", False):
            raise ServiceError(message.get("error", "request rejected"))
        return message

    def _request(self, message):
        """Send one request, return its single response line."""
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                stream.write(protocol.encode(message))
                stream.flush()
                return self._read_line(stream)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self):
        """Server liveness + protocol/worker info."""
        return self._request({"op": "ping"})

    def submit(self, points):
        """Submit a batch; returns the job id."""
        documents = [self._coerce_point(point) for point in points]
        response = self._request({"op": "submit", "points": documents})
        return response["job"]

    def status(self, job_id):
        """The job's status document."""
        return self._request({"op": "status", "job": job_id})["status"]

    def cancel(self, job_id):
        """Cancel the job's pending points; returns the final status."""
        response = self._request({"op": "cancel", "job": job_id})
        return response["status"]

    def jobs(self):
        """Status documents of every job the server knows."""
        return self._request({"op": "jobs"})["jobs"]

    def shutdown(self):
        """Ask the server to stop (it flushes its store first)."""
        return self._request({"op": "shutdown"})

    def results(self, job_id, library=None):
        """Yield ``(index, PointResult)`` as points complete.

        Completion-ordered, not submission-ordered; a cancelled point
        yields ``(index, None)``.  The generator ends when the job
        reaches a terminal state; the closing status document is
        available afterwards as :attr:`last_status`.
        """
        self.last_status = None
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                stream.write(protocol.encode(
                    {"op": "results", "job": job_id}))
                stream.flush()
                header = self._read_line(stream)
                if not header.get("streaming"):
                    raise ServiceError("expected a results stream, got "
                                       "%r" % (header,))
                while True:
                    message = self._read_line(stream)
                    if message.get("done"):
                        self.last_status = message.get("status")
                        return
                    index = message["index"]
                    if message.get("cancelled"):
                        yield index, None
                    else:
                        yield index, point_result_from_dict(
                            message["result"], library=library)

    def collect(self, job_id, library=None):
        """Block until terminal; results in submission order.

        Returns a list with one slot per submitted point:
        :class:`PointResult` (``error`` possibly set) or ``None`` for a
        cancelled point.
        """
        status = self.status(job_id)
        slots = [None] * status["total"]
        for index, result in self.results(job_id, library=library):
            slots[index] = result
        return slots

    @staticmethod
    def _coerce_point(point):
        if isinstance(point, DesignPoint):
            return design_point_to_dict(point)
        if isinstance(point, str):
            return design_point_to_dict(DesignPoint(app=point))
        if isinstance(point, dict):
            return point
        raise ServiceError("submit() expects DesignPoint instances, "
                           "app names or design-point dicts, got %r"
                           % (point,))
