"""Worker side of the distributed fabric: ``serve --join``.

An :class:`EngineWorker` is a process that contributes its CPU to a
coordinator (an :class:`~repro.service.server.ExplorationService`)
instead of serving clients itself: it connects, authenticates like any
client, registers a :class:`~repro.service.engine.RemoteEngine` with
``join``, then loops ``lease`` -> evaluate -> ``delta`` until the
coordinator goes away.

The worker owns a full :class:`~repro.engine.session.Session` of its
own — same pipeline, same caches — so a leased point evaluates exactly
as it would on the coordinator's local engine (the bit-identical
fabric invariant).  What the worker does *not* own is the persistent
store's disk: it never flushes.  New cache entries (compiled programs
included) are exported with
:meth:`~repro.engine.store.CacheStore.export_delta` and shipped home
inside ``delta`` frames, where the coordinator — the store's single
writer — absorbs them before recording the frame's results.  A worker
started with its own ``--cache-dir`` additionally hydrates from it, so
a pre-warmed worker contributes warm caches from its first lease.

Liveness: every request touches the engine on the coordinator, and a
long evaluation would otherwise look like death, so a daemon thread
heartbeats at the interval the ``join`` response prescribes.  The one
socket is shared; a lock around each request/response pair keeps the
conversations from interleaving.

Failure is symmetric and safe by construction: if the worker dies the
coordinator re-queues its leased units elsewhere; if the coordinator
dies (or shuts down) the worker's requests fail and :meth:`run`
returns.  Results the coordinator already recorded are kept; results
in a frame that never arrived are recomputed — either way the job's
outcome is identical.
"""

import socket
import tempfile
import threading
import time

from repro.engine.cache import CacheStats
from repro.engine.session import Session
from repro.errors import ReproError
from repro.io.serialize import (
    design_point_from_dict,
    point_result_to_dict,
)
from repro.service import protocol


class WorkerError(ReproError):
    """The coordinator conversation failed or rejected a request."""


class _Channel:
    """One shared request/response socket, interleave-safe.

    Both the lease loop and the heartbeat thread talk through here;
    the lock spans each request *and* its response line, so replies
    can never cross threads.
    """

    def __init__(self, host, port, timeout):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._stream = self._sock.makefile("rwb")
        self._lock = threading.Lock()

    def request(self, message):
        with self._lock:
            try:
                self._stream.write(protocol.encode(message))
                self._stream.flush()
                line = self._stream.readline(
                    protocol.MAX_LINE_BYTES + 1)
            except (OSError, ValueError) as exc:
                raise WorkerError("coordinator connection lost (%s: %s)"
                                  % (type(exc).__name__, exc)) from exc
        if not line:
            raise WorkerError("coordinator closed the connection")
        import json

        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise WorkerError("unreadable coordinator response: %r"
                              % line[:80]) from None
        if not isinstance(response, dict) or not response.get("ok"):
            raise WorkerError(
                (response or {}).get("error", "request rejected")
                if isinstance(response, dict) else "request rejected")
        return response

    def close(self):
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class EngineWorker:
    """One worker process: a remote engine attached to a coordinator.

    Attributes:
        host / port: The coordinator's address.
        token: Shared auth token (required when the coordinator has
            one — the join handshake is behind the same auth as every
            other op).
        label: Suggested engine name; the coordinator uniquifies it.
        slots: Units leased (and laned) at once — the worker's
            advertised capacity.  Evaluation itself is serial within
            the worker; extra slots buy pipelining (the next points
            are already placed while these evaluate), not parallelism.
        cache_dir: Optional worker-local store to hydrate warm caches
            from.  The worker never writes it — deltas go to the
            coordinator; a throwaway store is used when omitted, so
            export bookkeeping always works.
    """

    def __init__(self, host, port, token=None, label="", slots=1,
                 library=None, cache_dir=None, timeout=120.0,
                 announce=print):
        self.host = host
        self.port = int(port)
        self.token = token
        self.label = label or ""
        self.slots = max(1, int(slots))
        self.timeout = float(timeout)
        self.announce = announce
        if cache_dir is None:
            # export_delta lives on the store; a worker without a warm
            # local store still needs one for delta bookkeeping.  It is
            # never flushed, so the directory stays empty.
            cache_dir = tempfile.mkdtemp(prefix="lycos-worker-")
        self.session = Session(library=library, cache_dir=cache_dir)
        self.engine_id = None
        self.points_evaluated = 0
        self.frames_sent = 0
        self.entries_dropped = 0
        self._channel = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self):
        """Join, then lease/evaluate/deliver until the coordinator goes
        away (clean shutdown or crash) or :meth:`stop` is called.
        Returns the number of points evaluated."""
        self._channel = _Channel(self.host, self.port, self.timeout)
        heartbeat_thread = None
        try:
            if self.token is not None:
                self._channel.request({"op": "auth",
                                       "token": self.token})
            joined = self._channel.request({
                "op": "join", "engine": self.label,
                "slots": self.slots})
            self.engine_id = joined["engine"]
            interval = float(joined.get("heartbeat", 5.0))
            if self.announce is not None:
                self.announce(
                    "joined %s:%d as engine %s (slots=%d)"
                    % (self.host, self.port, self.engine_id,
                       self.slots))
            heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, args=(interval,),
                name="lycos-worker-heartbeat", daemon=True)
            heartbeat_thread.start()
            self._lease_loop(interval)
        except WorkerError as exc:
            if self.announce is not None:
                self.announce("coordinator gone: %s" % exc)
        finally:
            self._stop.set()
            if heartbeat_thread is not None:
                heartbeat_thread.join(timeout=2.0)
            self._channel.close()
        return self.points_evaluated

    def stop(self):
        """Ask :meth:`run` to wind down after the current lease."""
        self._stop.set()

    # ------------------------------------------------------------------
    # The lease loop
    # ------------------------------------------------------------------
    def _lease_loop(self, interval):
        # The long-poll budget doubles as the idle heartbeat: a lease
        # touches the engine, so an idle worker parked in lease() never
        # goes stale no matter what the heartbeat thread is doing.
        wait = max(0.0, min(interval, protocol.MAX_LEASE_WAIT))
        while not self._stop.is_set():
            response = self._channel.request({
                "op": "lease", "engine": self.engine_id,
                "max": self.slots, "wait": wait})
            leased = response.get("points", [])
            if not leased:
                continue
            self._evaluate_and_deliver(leased)

    def _evaluate_and_deliver(self, leased):
        """Evaluate one lease and ship results + store deltas home."""
        entries = []
        for item in leased:
            # Leased items carry the submission's objective; the
            # per-point pipeline computes every metric regardless
            # (speed-up, area, energy all ride the PointResult), so
            # the worker's evaluation is objective-independent and the
            # field is pass-through context only.
            point = design_point_from_dict(item["point"])
            before = self.session.stats.snapshot()
            result = self.session.evaluate_point_safe(point)
            delta = CacheStats.delta(before,
                                     self.session.stats.snapshot())
            self.points_evaluated += 1
            entries.append({
                "job": item["job"],
                "index": item["index"],
                "result": point_result_to_dict(result),
                "stats": {stage: [hits, misses] for stage,
                          (hits, misses) in delta.items()
                          if hits or misses},
            })
        store_delta = self.session.store.export_delta(
            self.session.cache)
        frames, dropped = protocol.store_delta_frames(store_delta)
        self.entries_dropped += dropped
        # Store frames first, results last: the frames ride the same
        # ordered connection, so every cache entry these results
        # produced is absorbed by the coordinator's single writer
        # before the results themselves are recorded — the worker's
        # half of the per-job durability barrier.  The final frame
        # carries the last blob *with* the results to save a round
        # trip.
        tail = frames.pop() if frames else None
        for blob in frames:
            self._channel.request({"op": "delta",
                                   "engine": self.engine_id,
                                   "results": [], "store": blob})
            self.frames_sent += 1
        self._channel.request({"op": "delta",
                               "engine": self.engine_id,
                               "results": entries, "store": tail})
        self.frames_sent += 1

    def _heartbeat_loop(self, interval):
        """Liveness during long evaluations; errors are left to the
        lease loop to discover (its next request fails the same way)."""
        while not self._stop.wait(max(0.05, interval)):
            try:
                self._channel.request({"op": "engine-heartbeat",
                                       "engine": self.engine_id})
            except WorkerError:
                return


def join_coordinator(host, port, token=None, label="", slots=1,
                     library=None, cache_dir=None, announce=print):
    """Blocking entry point of ``serve --join``: run one worker.

    Returns the number of points the worker evaluated.  A
    ``KeyboardInterrupt`` detaches cleanly — the coordinator re-queues
    anything this engine still held.
    """
    worker = EngineWorker(host, port, token=token, label=label,
                          slots=slots, library=library,
                          cache_dir=cache_dir, announce=announce)
    try:
        return worker.run()
    except KeyboardInterrupt:
        worker.stop()
        if announce is not None:
            announce("interrupted; detached from coordinator")
        return worker.points_evaluated
