"""HTTP/REST gateway over the exploration service (ISSUE 9).

The raw line-JSON TCP protocol is the fabric's spine: one persistent
connection per worker, streams, leases.  Wide fan-in — hundreds of
polling clients, dashboards, curl — wants the opposite shape: small
stateless requests with real HTTP caching semantics.  This module
mounts exactly that over the *same* :class:`~repro.service.queue.
JobQueue` and engine roster the TCP frontend drives, with no new
dependencies (stdlib ``http.server``, threaded):

    POST   /v1/jobs              submit a batch of design points
    GET    /v1/jobs/{id}         job status document
    GET    /v1/jobs/{id}/results full results document, or a long-poll
                                 page with ``?after=N&wait=S``
    GET    /v1/jobs/{id}/report  self-contained HTML report of the job
    GET    /v1/dashboard         live HTML roster/queue dashboard
    DELETE /v1/jobs/{id}         cancel the job's pending points
    GET    /v1/ping              service liveness + roster info

Auth: an API-keys file (see :func:`load_api_keys`) maps each key to a
client identity, a fair-scheduler weight and an in-flight-point quota.
Requests present the key as ``Authorization: Bearer <key>`` (or
``X-Api-Key``); the client identity feeds the existing ``fair``
scheduler's ``client``/``weight`` metadata, and the quota is enforced
by the queue's per-client depth accounting — a breach is a 429 with
``Retry-After``, the same structured backpressure the TCP client
honours.  A gateway without keys is open (loopback development), like
a token-less TCP server; binding beyond loopback requires keys.

Conditional caching: every status and results document carries a
*strong* ETag derived from the job's content-addressed stage keys (the
program fingerprints its points route by, plus the full point
coordinates) and its progress, so ``If-None-Match`` polling pays tiny
304s instead of re-downloading result bodies.  A terminal job's
documents are immutable by construction — the pipeline is
content-addressed, so the same job can never produce different bytes —
and are served with long-lived ``Cache-Control: immutable`` headers.
The one clock-driven field, the GC countdown ``expires_in``, is kept
*out* of the cached body and travels as an ``X-Expires-In`` header
instead (refreshed on 304s, as HTTP intends), so ETags stay honest.

Threading: handler threads never touch queue or job state directly —
every read and mutation is marshalled onto the service's event loop
with ``run_coroutine_threadsafe``, so the single-writer discipline of
the coordinator survives the second frontend unchanged.
"""

import asyncio
import hashlib
import hmac
import json
import math
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError
from repro.io.serialize import design_point_to_dict, point_result_to_dict
from repro.service import protocol
from repro.service.queue import QueueFullError

#: Cap on one results long-poll (seconds); clients page in a loop, so
#: a longer wait buys nothing but teardown latency (the TCP lease cap).
MAX_POLL_WAIT = 30.0

#: Ceiling on one request body; submissions stay far below this (the
#: TCP line cap, for the same reason).
MAX_BODY_BYTES = protocol.MAX_LINE_BYTES

#: Cache-Control for terminal (immutable) and live documents.
CACHE_IMMUTABLE = "max-age=31536000, immutable"
CACHE_REVALIDATE = "no-cache"

#: The HTML documents' content type (reports, dashboard).
HTML_CONTENT_TYPE = "text/html; charset=utf-8"


class ApiKey:
    """One API key's identity: client label, weight, in-flight quota."""

    __slots__ = ("key", "client", "weight", "quota")

    def __init__(self, key, client, weight=1, quota=None):
        if not isinstance(key, str) or not key:
            raise ReproError("API key must be a non-empty string")
        if not isinstance(client, str) or not client \
                or len(client) > protocol.MAX_CLIENT_CHARS:
            raise ReproError(
                "API key %r... needs a client label of at most %d "
                "characters" % (key[:8], protocol.MAX_CLIENT_CHARS))
        if isinstance(weight, bool) or not isinstance(weight, int) \
                or not 1 <= weight <= protocol.MAX_WEIGHT:
            raise ReproError("client %r: weight must be an integer in "
                             "[1, %d]" % (client, protocol.MAX_WEIGHT))
        if quota is not None and (
                isinstance(quota, bool) or not isinstance(quota, int)
                or quota < 1):
            raise ReproError("client %r: quota must be a positive "
                             "integer or null" % client)
        self.key = key
        self.client = client
        self.weight = weight
        self.quota = quota


def load_api_keys(path):
    """Parse an API-keys file into ``{key: ApiKey}``.

    The file is one JSON object mapping each key string to either a
    bare client label (weight 1, no quota) or an object::

        {
          "k-alice-1": "alice",
          "k-dash-7":  {"client": "dashboard", "weight": 3, "quota": 64}
        }

    Malformed files are loud: a gateway silently open (or silently
    missing a quota) is worse than one that refuses to start.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ReproError("cannot read API keys file: %s" % exc) from None
    except ValueError as exc:
        raise ReproError("API keys file %s is not valid JSON: %s"
                         % (path, exc)) from None
    if not isinstance(data, dict) or not data:
        raise ReproError("API keys file %s must be a non-empty JSON "
                         "object mapping keys to clients" % path)
    keys = {}
    for key, value in data.items():
        if isinstance(value, str):
            keys[key] = ApiKey(key, value)
        elif isinstance(value, dict):
            extra = set(value) - {"client", "weight", "quota"}
            if extra:
                raise ReproError(
                    "API keys file %s: unknown field(s) %s for key "
                    "%r..." % (path, ", ".join(sorted(extra)),
                               key[:8]))
            keys[key] = ApiKey(key, value.get("client", ""),
                               weight=value.get("weight", 1),
                               quota=value.get("quota"))
        else:
            raise ReproError(
                "API keys file %s: key %r... must map to a client "
                "label or an object" % (path, key[:8]))
    return keys


def canonical_json(document):
    """The canonical bytes of one document (sorted keys, compact).

    Both the response bodies and the ETag hashes are computed from
    this one encoding, so an ETag is strong by construction: it
    changes exactly when the served bytes change.
    """
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class _HttpError(Exception):
    """One HTTP-level rejection: status code + JSON error document."""

    def __init__(self, status, message, **fields):
        super().__init__(message)
        self.status = status
        self.document = {"ok": False, "error": str(message)}
        self.document.update({key: value
                              for key, value in fields.items()
                              if not key.startswith("header_")})
        self.headers = {key[len("header_"):].replace("_", "-"): value
                        for key, value in fields.items()
                        if key.startswith("header_")}


class HttpGateway:
    """The HTTP frontend of one :class:`ExplorationService`.

    Runs a ``ThreadingHTTPServer`` on its own daemon threads next to
    the service's asyncio loop; start with :meth:`start`, stop with
    :meth:`stop`.  All job state is accessed through coroutines on the
    service loop — the gateway owns no queue state of its own beyond
    per-job document memos (stored on the jobs themselves, so they are
    garbage-collected with them).
    """

    def __init__(self, service, api_keys=None):
        self.service = service
        self.api_keys = dict(api_keys) if api_keys else None
        self.address = None
        self._httpd = None
        self._thread = None
        # Observability: total requests served and how many of them
        # were conditional hits (304, no body).
        self.requests = 0
        self.not_modified = 0
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, host="127.0.0.1", port=0):
        """Bind and serve on a background thread; returns self."""
        from repro.service.server import LOOPBACK_HOSTS

        if self.api_keys is None and host not in LOOPBACK_HOSTS:
            raise ReproError(
                "refusing to serve HTTP on %s without API keys: pass "
                "api_keys (--api-keys-file) to serve beyond loopback"
                % host)
        if self.service.loop is None:
            raise ReproError("the service is not started; the gateway "
                             "needs its event loop")
        gateway = self

        class _BoundHandler(_Handler):
            pass

        _BoundHandler.gateway = gateway
        self._httpd = ThreadingHTTPServer((host, port), _BoundHandler)
        self._httpd.daemon_threads = True
        self.address = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="lycos-http", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        """Stop accepting requests and join the serving thread."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(10)
            self._thread = None

    # ------------------------------------------------------------------
    # Auth
    # ------------------------------------------------------------------
    def authenticate(self, headers):
        """The :class:`ApiKey` a request's headers present.

        ``None`` on an open (key-less) gateway.  Raises a 401
        :class:`_HttpError` for a missing or unknown key; the compare
        runs over *every* configured key so a probe cannot time which
        prefix came close (the TCP token's constant-time contract).
        """
        if self.api_keys is None:
            return None
        supplied = ""
        authorization = headers.get("Authorization", "")
        if authorization.startswith("Bearer "):
            supplied = authorization[len("Bearer "):].strip()
        if not supplied:
            supplied = headers.get("X-Api-Key", "").strip()
        if not supplied:
            raise _HttpError(
                401, "authentication required: present an API key as "
                     "'Authorization: Bearer <key>' or 'X-Api-Key'",
                header_WWW_Authenticate="Bearer")
        matched = None
        supplied_bytes = supplied.encode("utf-8")
        for key, entry in self.api_keys.items():
            if hmac.compare_digest(supplied_bytes,
                                   key.encode("utf-8")):
                matched = entry
        if matched is None:
            raise _HttpError(401, "unknown API key",
                             header_WWW_Authenticate="Bearer")
        return matched

    # ------------------------------------------------------------------
    # Loop bridging
    # ------------------------------------------------------------------
    def call(self, coro):
        """Run one coroutine on the service loop, from a handler
        thread; the generous timeout covers a full long-poll wait."""
        future = asyncio.run_coroutine_threadsafe(coro,
                                                  self.service.loop)
        try:
            return future.result(MAX_POLL_WAIT + 60.0)
        except asyncio.TimeoutError:
            future.cancel()
            raise _HttpError(503, "service loop did not answer in "
                                  "time") from None

    def _get_job(self, job_id):
        """The named job; 404 unknown, 410 for a GC-expired one."""
        try:
            return self.service.queue.get(job_id)
        except ReproError as exc:
            if job_id in self.service.queue._expired:
                raise _HttpError(410, str(exc)) from None
            raise _HttpError(404, str(exc)) from None

    # ------------------------------------------------------------------
    # Documents + ETags (all computed on the service loop)
    # ------------------------------------------------------------------
    def _job_fingerprint(self, job):
        """The job's content-addressed identity: its stage keys.

        Hashes, per point, the program fingerprint the service routes
        by (source + profiling inputs + library — the persistent
        store's content key) plus the point's full coordinates, under
        the job id.  Memoised on the job: none of it can change after
        submission.
        """
        cached = getattr(job, "_http_fingerprint", None)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        digest.update(job.id.encode("utf-8"))
        for point in job.points:
            digest.update(
                str(self.service._affinity_key(point)).encode("utf-8"))
            digest.update(canonical_json(design_point_to_dict(point)))
        fingerprint = digest.hexdigest()[:24]
        job._http_fingerprint = fingerprint
        return fingerprint

    def _etag(self, job, body):
        """A strong ETag: stage-key fingerprint + body content hash."""
        digest = hashlib.sha256()
        digest.update(self._job_fingerprint(job).encode("ascii"))
        digest.update(body)
        return '"%s-%s"' % (self._job_fingerprint(job),
                            digest.hexdigest()[:16])

    def _status_projection(self, job):
        """The job's status document *without* the clock-driven
        ``expires_in`` (that travels as the X-Expires-In header)."""
        document = self.service.queue.status(job)
        document.pop("expires_in", None)
        return document

    def _expires_header(self, job):
        document = self.service.queue.status(job)
        expires_in = document.get("expires_in")
        return None if expires_in is None else "%.1f" % expires_in

    async def status_document(self, job_id):
        """``(body, etag, expires_header, immutable)`` of a status."""
        self.service.queue.collect_garbage()
        job = self._get_job(job_id)
        body = canonical_json(self._status_projection(job))
        return (body, self._etag(job, body),
                self._expires_header(job), job.finished)

    async def results_document(self, job_id):
        """``(body, etag, expires_header, immutable)`` of the full
        results document (completion-ordered entries + status).

        Memoised per (completion count, state) on the job, so a
        polling storm against an unchanged job re-serialises nothing —
        it pays one memo lookup and, with ``If-None-Match``, sends no
        body at all.
        """
        self.service.queue.collect_garbage()
        job = self._get_job(job_id)
        async with job.condition:
            order = list(job.order)
            stamp = (len(order), job.state)
        memo = getattr(job, "_http_results_memo", None)
        if memo is not None and memo[0] == stamp:
            _, body, etag = memo
        else:
            entries = []
            for index in order:
                result = job.results.get(index)
                if result is None:
                    entries.append({"index": index, "cancelled": True})
                else:
                    entries.append({
                        "index": index,
                        "result": point_result_to_dict(result)})
            body = canonical_json({
                "job": job.id,
                "total": len(job.points),
                "results": entries,
                "status": self._status_projection(job)})
            etag = self._etag(job, body)
            job._http_results_memo = (stamp, body, etag)
        return body, etag, self._expires_header(job), job.finished

    async def results_page(self, job_id, after, wait):
        """One long-poll page: completions past position ``after``.

        Blocks (on the job's condition, never the handler's CPU) until
        a completion lands past ``after``, the job turns terminal, or
        ``wait`` runs out — the HTTP client's streaming loop pages
        through these exactly like the TCP stream, without holding a
        server connection per client between completions.
        """
        self.service.queue.collect_garbage()
        job = self._get_job(job_id)
        deadline = asyncio.get_running_loop().time() + wait
        async with job.condition:
            while len(job.order) <= after and not job.finished:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(job.condition.wait(),
                                           remaining)
                except asyncio.TimeoutError:
                    break
            order = list(job.order[after:])
            finished = job.finished
        entries = []
        for index in order:
            result = job.results.get(index)
            if result is None:
                entries.append({"index": index, "cancelled": True})
            else:
                entries.append({"index": index,
                                "result": point_result_to_dict(result)})
        # ``order`` was read under the condition while ``finished`` was
        # sampled, so a finished job's page always covers the tail:
        # ``done`` simply mirrors the terminal state.
        document = {
            "job": job.id,
            "results": entries,
            "next": after + len(entries),
            "done": finished,
        }
        if document["done"]:
            document["status"] = self._status_projection(job)
        return canonical_json(document)

    async def report_document(self, job_id):
        """``(body, etag, expires_header, immutable)`` of the job's
        self-contained HTML report.

        The result rows and status come from queue state on this loop;
        the schedule Gantts and store analytics are computed **on the
        engine thread** (the only thread allowed to touch the session
        and its store — programs resolve warm there, so rendering a
        report compiles nothing).  Memoised per (completion count,
        state) like the results document; terminal reports are
        immutable and served as such.
        """
        from repro.report.html import render_html, sweep_document

        self.service.queue.collect_garbage()
        job = self._get_job(job_id)
        async with job.condition:
            order = list(job.order)
            stamp = (len(order), job.state)
        memo = getattr(job, "_http_report_memo", None)
        if memo is not None and memo[0] == stamp:
            _, body, etag = memo
            return body, etag, self._expires_header(job), job.finished
        results = [job.results[index] for index in order
                   if job.results.get(index) is not None]
        apps = []
        for point in job.points:
            if point.app not in apps:
                apps.append(point.app)
        gantts, store = await self.service._on_engine(
            self._report_engine_data, apps)
        document = sweep_document(
            results, store=store, gantts=gantts,
            title="Job %s" % job.id,
            job=self._status_projection(job))
        body = render_html(document).encode("utf-8")
        etag = self._etag(job, body)
        job._http_report_memo = (stamp, body, etag)
        return body, etag, self._expires_header(job), job.finished

    def _report_engine_data(self, apps):
        """Gantt + store documents, built on the engine thread."""
        from repro.report.html import gantt_documents, store_analytics

        session = self.service.session
        gantts = []
        for app in apps:
            try:
                gantts.extend(gantt_documents(session, [app]))
            except Exception:
                # An app that never compiled (the per-point error
                # contract lets bogus apps into jobs) has no Gantt.
                continue
        return gantts, store_analytics(session.store)

    async def dashboard(self):
        """``(body, etag)`` of the live roster/queue dashboard page.

        Volatile by nature, so it is served ``no-cache`` — but still
        under a strong content-hash ETag, so an unchanged service
        answers polls with 304s.  The gateway's own request counters
        are deliberately excluded: a page whose bytes change on every
        fetch could never validate.
        """
        from repro.report.html import dashboard_document, render_html

        service = self.service
        queue = service.queue
        queue.collect_garbage()
        stats = service.session.stats
        cap = queue.max_pending
        info = {
            "protocol": protocol.PROTOCOL_VERSION,
            "transport": "http",
            "workers": service.workers,
            "scheduler": queue.scheduler.name,
            "depth": queue.depth,
            "queue_cap": "unbounded" if cap is None else cap,
            "program_compiles": stats.miss_count("compile"),
            "program_store_hits": stats.hit_count("compile"),
            "local_engines": service.local_engines,
            "engines": service.roster.status(),
        }
        jobs = [self._status_projection(queue.jobs[name])
                for name in sorted(queue.jobs)]
        body = render_html(dashboard_document(info, jobs))
        body = body.encode("utf-8")
        etag = '"dash-%s"' % hashlib.sha256(body).hexdigest()[:16]
        return body, etag

    async def submit(self, points, client, weight, objective, quota):
        """Admit one batch; the 429 mapping happens in the handler."""
        self.service.queue.collect_garbage()
        job = self.service.queue.submit(points, client=client,
                                        weight=weight,
                                        objective=objective,
                                        quota=quota)
        return canonical_json({"ok": True, "job": job.id,
                               "total": len(job.points),
                               "objective": job.objective})

    async def cancel(self, job_id):
        job = self._get_job(job_id)
        cancelled = await self.service.queue.cancel(job_id)
        document = self._status_projection(job)
        return canonical_json({"ok": True, "cancelled": cancelled,
                               "status": document})

    async def jobs(self):
        """Every known job's full status, the TCP ``jobs`` op's twin.

        A volatile listing (jobs come and go, ``expires_in`` ticks),
        so it is served uncached rather than ETagged.
        """
        queue = self.service.queue
        queue.collect_garbage()
        return canonical_json({
            "ok": True,
            "jobs": [queue.status(queue.jobs[name])
                     for name in sorted(queue.jobs)]})

    async def ping(self):
        service = self.service
        stats = service.session.stats
        return canonical_json({
            "ok": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "transport": "http",
            "workers": service.workers,
            "jobs": len(service.queue.jobs),
            "scheduler": service.queue.scheduler.name,
            "depth": service.queue.depth,
            "queue_cap": service.queue.max_pending,
            "program_compiles": stats.miss_count("compile"),
            "program_store_hits": stats.hit_count("compile"),
            "local_engines": service.local_engines,
            "engines": service.roster.status(),
            "http_requests": self.requests,
            "http_not_modified": self.not_modified,
        })

    # Counter updates come from handler threads.
    def count_request(self):
        with self._counter_lock:
            self.requests += 1

    def count_not_modified(self):
        with self._counter_lock:
            self.not_modified += 1


def _etag_matches(header, etag):
    """Strong ``If-None-Match`` comparison against one entity tag.

    ``*`` matches anything; otherwise the header is a comma-separated
    tag list and a weak tag (``W/...``) never strong-matches — our
    tags are all strong, so a weak validator means a different
    (semantically-equivalent-only) cache entry.
    """
    if header is None:
        return False
    header = header.strip()
    if header == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate == etag:
            return True
    return False


class _Handler(BaseHTTPRequestHandler):
    """One request: route, auth, conditional headers, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "lycos-repro-gateway/1"
    gateway = None  # bound per-gateway by a subclass in start()

    # The default handler logs every request to stderr; the gateway is
    # polled, so that would be pure noise next to the service's own
    # announcements.
    def log_message(self, format, *args):  # noqa: A002 (stdlib name)
        pass

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def do_DELETE(self):
        self._dispatch("DELETE")

    def _dispatch(self, method):
        self.gateway.count_request()
        try:
            key = self.gateway.authenticate(self.headers)
            split = urllib.parse.urlsplit(self.path)
            parts = [part for part in split.path.split("/") if part]
            query = urllib.parse.parse_qs(split.query)
            if parts[:1] != ["v1"]:
                raise _HttpError(404, "unknown path %r (the API lives "
                                      "under /v1)" % split.path)
            route = parts[1:]
            if route == ["ping"]:
                self._require(method, "GET")
                self._send_json(200, self.gateway.call(
                    self.gateway.ping()))
            elif route == ["jobs"]:
                if method == "POST":
                    self._handle_submit(key)
                elif method == "GET":
                    self._send_json(200, self.gateway.call(
                        self.gateway.jobs()),
                        extra={"Cache-Control": "no-store"})
                else:
                    raise _HttpError(
                        405, "method %s not allowed here" % method,
                        header_Allow="GET, POST")
            elif len(route) == 2 and route[0] == "jobs":
                if method == "GET":
                    self._handle_status(route[1])
                elif method == "DELETE":
                    self._handle_cancel(route[1])
                else:
                    raise _HttpError(
                        405, "method %s not allowed here" % method,
                        header_Allow="GET, DELETE")
            elif len(route) == 3 and route[0] == "jobs" \
                    and route[2] == "results":
                self._require(method, "GET")
                self._handle_results(route[1], query)
            elif len(route) == 3 and route[0] == "jobs" \
                    and route[2] == "report":
                self._require(method, "GET")
                self._handle_report(route[1])
            elif route == ["dashboard"]:
                self._require(method, "GET")
                self._handle_dashboard()
            else:
                raise _HttpError(404, "unknown path %r" % split.path)
        except _HttpError as exc:
            self._send_json(exc.status, canonical_json(exc.document),
                            extra=exc.headers)
        except QueueFullError as exc:
            self._send_json(
                429, canonical_json({
                    "ok": False, "error": str(exc),
                    "retry_after": exc.retry_after}),
                extra={"Retry-After":
                       str(max(1, math.ceil(exc.retry_after)))})
        except (protocol.ProtocolError, ReproError) as exc:
            self._send_json(400, canonical_json(
                {"ok": False, "error": str(exc)}))
        except (BrokenPipeError, ConnectionResetError):
            pass  # the poller went away mid-reply; nothing to clean up
        except Exception as exc:  # a handler thread must never die loud
            try:
                self._send_json(500, canonical_json(
                    {"ok": False,
                     "error": "%s: %s" % (type(exc).__name__, exc)}))
            except Exception:
                pass

    def _require(self, method, expected):
        if method != expected:
            raise _HttpError(405,
                             "method %s not allowed here" % method,
                             header_Allow=expected)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _handle_submit(self, key):
        request = self._read_json_body()
        request.setdefault("op", "submit")
        points = protocol.submission_points(request)
        objective = protocol.submission_objective(request)
        if key is None:
            # Open gateway: client/weight come from the body, like the
            # TCP submit's optional metadata; no quota applies.
            client, weight = protocol.submission_meta(request)
            quota = None
        else:
            # Keyed gateway: identity is the *key's*, never the
            # body's — a client cannot impersonate another lane or
            # escape its own quota.  The body may lower (never raise)
            # the key's scheduler weight.
            client = key.client
            _, weight = protocol.submission_meta(request)
            if "weight" not in request:
                weight = key.weight
            weight = min(weight, key.weight)
            quota = key.quota
        body = self.gateway.call(self.gateway.submit(
            points, client, weight, objective, quota))
        self._send_json(200, body)

    def _handle_status(self, job_id):
        body, etag, expires, immutable = self.gateway.call(
            self.gateway.status_document(job_id))
        self._send_conditional(body, etag, expires, immutable)

    def _handle_results(self, job_id, query):
        after = self._int_param(query, "after")
        if after is None:
            body, etag, expires, immutable = self.gateway.call(
                self.gateway.results_document(job_id))
            self._send_conditional(body, etag, expires, immutable)
            return
        wait = self._float_param(query, "wait", 0.0)
        wait = max(0.0, min(MAX_POLL_WAIT, wait))
        body = self.gateway.call(
            self.gateway.results_page(job_id, after, wait))
        self._send_json(200, body,
                        extra={"Cache-Control": "no-store"})

    def _handle_cancel(self, job_id):
        self._send_json(200, self.gateway.call(
            self.gateway.cancel(job_id)))

    def _handle_report(self, job_id):
        body, etag, expires, immutable = self.gateway.call(
            self.gateway.report_document(job_id))
        self._send_conditional(body, etag, expires, immutable,
                               content_type=HTML_CONTENT_TYPE)

    def _handle_dashboard(self):
        body, etag = self.gateway.call(self.gateway.dashboard())
        self._send_conditional(body, etag, None, False,
                               content_type=HTML_CONTENT_TYPE)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_json_body(self):
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise _HttpError(411, "a JSON body with Content-Length is "
                                  "required") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body exceeds %d bytes"
                             % MAX_BODY_BYTES)
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "request body is not valid JSON") \
                from None
        if not isinstance(document, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return document

    def _int_param(self, query, name, default=None):
        values = query.get(name)
        if not values:
            return default
        try:
            value = int(values[0])
        except ValueError:
            raise _HttpError(400, "query parameter %r must be an "
                                  "integer" % name) from None
        if value < 0:
            raise _HttpError(400, "query parameter %r must be >= 0"
                             % name)
        return value

    def _float_param(self, query, name, default):
        values = query.get(name)
        if not values:
            return default
        try:
            return float(values[0])
        except ValueError:
            raise _HttpError(400, "query parameter %r must be a "
                                  "number" % name) from None

    def _send_conditional(self, body, etag, expires, immutable,
                          content_type="application/json"):
        """A cacheable document: ETag always, 304 when it matches."""
        headers = {
            "ETag": etag,
            "Cache-Control": CACHE_IMMUTABLE if immutable
            else CACHE_REVALIDATE,
        }
        if expires is not None:
            headers["X-Expires-In"] = expires
        if _etag_matches(self.headers.get("If-None-Match"), etag):
            self.gateway.count_not_modified()
            self.send_response(304)
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            return
        self._send_body(200, body, content_type, extra=headers)

    def _send_json(self, status, body, extra=None):
        self._send_body(status, body, "application/json", extra=extra)

    def _send_body(self, status, body, content_type, extra=None):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
