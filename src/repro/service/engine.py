"""Engines and their roster: where the coordinator's points run.

The exploration service used to *be* its engine — one thread, one
session, one process.  This module splits that identity: an
:class:`Engine` is anything that can evaluate leased design points and
ship the results (plus cache-store deltas) back to the coordinator,
and the :class:`EngineRoster` is the placement layer deciding which
engine each scheduled unit lands on.

Two engine kinds exist:

* :class:`LocalEngine` — the PR 3/4 path behind the new interface:
  points evaluate in the coordinator process (on the single engine
  thread, or through its persistent ``multiprocessing`` pool).  A
  default service is exactly one local engine — "engine count 1" is a
  configuration, not an architecture.
* :class:`RemoteEngine` — the coordinator-side proxy of a worker
  process that joined over the wire (``serve --join``).  Its lifetime
  is its connection's lifetime: the worker leases units, evaluates
  them in its own process, and sends ``delta`` frames home; when the
  connection drops (or heartbeats stop), the engine dies and every
  unit it held is re-queued.

Placement: each unit carries an *affinity key* (the point's
``program_fingerprint``, falling back to the app name), and the roster
routes equal keys to the same live engine via rendezvous hashing — so
an engine keeps seeing the programs it has already compiled and
cached, which is what makes a second submission's remote hit rate
high.  Work stealing keeps affinity from becoming imbalance: an engine
with an empty lane may take another engine's unit once that unit has
waited :attr:`EngineRoster.steal_delay` seconds — long enough that the
fast path (the affine engine was about to get to it) wins when points
are warm, short enough that a genuinely idle engine picks up a cold
backlog.

Determinism: placement and stealing only decide *where* a point runs.
Every engine evaluates through the same pipeline, so job results stay
bit-identical to a serial evaluation no matter how the roster splits
them — the invariant every scheduler change in this repo is pinned to.

All roster state lives on the coordinator's event loop; the only
synchronisation primitive is one :class:`asyncio.Condition` shared by
placement (waiting for lane room), takes (waiting for work) and
failure handling (re-queuing a dead engine's units).
"""

import asyncio
import collections
import hashlib
import time

from repro.service.queue import PENDING, RUNNING

#: Dead engines retained in the roster for observability; beyond this
#: the oldest are forgotten, so a churny (or adversarial) stream of
#: join-and-vanish workers cannot grow the roster without bound.
DEAD_ENGINE_MEMORY = 32


def affinity_score(key, engine_id):
    """Deterministic rendezvous weight of ``key`` on ``engine_id``.

    Highest score wins.  ``hashlib`` (not ``hash()``) so placement is
    stable across processes and interpreter runs — a restarted
    coordinator routes the same programs to the same worker labels.
    """
    digest = hashlib.blake2b(
        ("%s|%s" % (key, engine_id)).encode("utf-8"),
        digest_size=8).digest()
    return int.from_bytes(digest, "big")


class _Unit:
    """One scheduled ``(job, index)`` with its placement metadata."""

    __slots__ = ("job", "index", "key", "placed_at")

    def __init__(self, job, index, key):
        self.job = job
        self.index = index
        self.key = key
        self.placed_at = time.monotonic()


class Engine:
    """Base engine: identity, capacity, lane, lease and accounting.

    Attributes:
        id: Roster-unique engine name (``local-1``, ``remote-2``...).
        slots: How many units the engine evaluates concurrently; also
            the bound on its pre-placed lane, so scheduling decisions
            stay late (at most ``slots`` units are committed to an
            engine beyond the ones it is running).
        alive: False once the engine failed/left; dead engines stay in
            the roster for observability but never receive placements.
        lane: Placed-but-not-leased units (deque of :class:`_Unit`).
        inflight: ``(job id, index) -> _Unit`` of leased units — the
            set re-queued if the engine dies, and the only units whose
            results a ``delta`` frame may deliver.
    """

    kind = "engine"

    def __init__(self, engine_id, slots=1):
        self.id = engine_id
        self.slots = max(1, int(slots))
        self.alive = True
        self.lane = collections.deque()
        self.inflight = {}
        self.points_done = 0
        self.points_stolen = 0
        self.hits = 0
        self.misses = 0
        self.deltas_absorbed = 0
        self.delta_entries = 0
        self.delta_raw_bytes = 0
        self.delta_compressed_bytes = 0
        self.last_seen = time.monotonic()

    def touch(self):
        """Refresh the liveness stamp (any activity from the engine)."""
        self.last_seen = time.monotonic()

    def hit_rate(self):
        lookups = self.hits + self.misses
        return (self.hits / lookups) if lookups else 0.0

    def record_stats(self, stats_delta):
        """Fold one unit's per-stage (hits, misses) delta in."""
        for hits, misses in (stats_delta or {}).values():
            self.hits += hits
            self.misses += misses

    def status(self):
        """The JSON-able roster document of this engine."""
        return {
            "engine": self.id,
            "kind": self.kind,
            "alive": self.alive,
            "slots": self.slots,
            "queued": len(self.lane),
            "in_flight": len(self.inflight),
            "done": self.points_done,
            "stolen": self.points_stolen,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "deltas_absorbed": self.deltas_absorbed,
            "delta_entries": self.delta_entries,
            "delta_raw_bytes": self.delta_raw_bytes,
            "delta_compressed_bytes": self.delta_compressed_bytes,
        }

    def __repr__(self):
        return "%s(%r, slots=%d, queued=%d, in_flight=%d)" % (
            type(self).__name__, self.id, self.slots, len(self.lane),
            len(self.inflight))


class LocalEngine(Engine):
    """An engine evaluating in the coordinator process itself."""

    kind = "local"


class RemoteEngine(Engine):
    """The coordinator-side proxy of one joined worker connection."""

    kind = "remote"

    def __init__(self, engine_id, slots=1, label=""):
        super().__init__(engine_id, slots=slots)
        self.label = label


class EngineRoster:
    """Placement and work-stealing across every engine of a service.

    The roster never evaluates anything: it moves units between the
    scheduler (the :class:`~repro.service.queue.JobQueue` policy, via
    the coordinator's dispatch loop), per-engine lanes, and per-engine
    in-flight sets — and moves them *back* when an engine dies.
    """

    def __init__(self, steal_delay=0.25):
        self.steal_delay = max(0.0, float(steal_delay))
        self.engines = {}
        self._orphans = collections.deque()  # units with no live engine
        self._condition = None               # created lazily (needs loop)

    @property
    def condition(self):
        if self._condition is None:
            self._condition = asyncio.Condition()
        return self._condition

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def live_engines(self):
        return [engine for engine in self.engines.values()
                if engine.alive]

    def unique_id(self, base):
        """A roster-unique engine id derived from ``base``."""
        if base not in self.engines:
            return base
        for suffix in range(2, len(self.engines) + 3):
            candidate = "%s-%d" % (base, suffix)
            if candidate not in self.engines:
                return candidate
        raise AssertionError("unreachable: roster ids exhausted")

    async def add(self, engine):
        """Register an engine and hand it any orphaned units."""
        async with self.condition:
            self.engines[engine.id] = engine
            while self._orphans:
                self._place_now(self._orphans.popleft())
            self.condition.notify_all()

    def choose(self, key):
        """The live engine rendezvous hashing assigns ``key`` to."""
        live = self.live_engines()
        if not live:
            return None
        return max(live,
                   key=lambda engine: affinity_score(key, engine.id))

    def _place_now(self, unit):
        """Lane the unit on its affine engine, room or not.

        The bounded-lane contract is enforced by :meth:`place` (the
        dispatch path); re-queues from a failed engine must never
        block, so they overfill — stealing drains any resulting
        imbalance.
        """
        engine = self.choose(unit.key)
        if engine is None:
            self._orphans.append(unit)
            return
        unit.placed_at = time.monotonic()
        engine.lane.append(unit)

    async def place(self, job, index, key):
        """Place one scheduled unit; blocks while the target is full.

        The affine engine is re-chosen on every wake-up, so a join, a
        death or a steal while the dispatcher waits re-routes the unit
        instead of deadlocking on a gone (or hopelessly backed-up)
        engine.
        """
        unit = _Unit(job, index, key)
        async with self.condition:
            while True:
                engine = self.choose(key)
                if engine is None:
                    self._orphans.append(unit)
                    return
                if len(engine.lane) < engine.slots:
                    unit.placed_at = time.monotonic()
                    engine.lane.append(unit)
                    self.condition.notify_all()
                    return
                await self.condition.wait()

    # ------------------------------------------------------------------
    # Taking work (local pumps and remote leases share this path)
    # ------------------------------------------------------------------
    def _pop_own(self, engine):
        while engine.lane:
            unit = engine.lane.popleft()
            if unit.job.states[unit.index] == PENDING:
                return unit
        return None

    def _pop_stolen(self, thief, now):
        """The oldest steal-eligible unit on any other live lane."""
        victim_unit = None
        victim = None
        for engine in self.engines.values():
            if engine is thief:
                continue
            # Dead engines' lanes are emptied by fail(); anything still
            # here belongs to a live engine that has not got to it yet.
            for unit in engine.lane:
                if unit.job.states[unit.index] != PENDING:
                    continue
                if engine.alive and \
                        now - unit.placed_at < self.steal_delay:
                    continue
                if victim_unit is None or \
                        unit.placed_at < victim_unit.placed_at:
                    victim_unit, victim = unit, engine
        if victim_unit is not None:
            victim.lane.remove(victim_unit)
            thief.points_stolen += 1
        return victim_unit

    def _next_steal_eligible(self, thief, now):
        """Seconds until some other lane's unit becomes stealable."""
        soonest = None
        for engine in self.engines.values():
            if engine is thief:
                continue
            for unit in engine.lane:
                if unit.job.states[unit.index] != PENDING:
                    continue
                ripe_in = self.steal_delay - (now - unit.placed_at)
                if soonest is None or ripe_in < soonest:
                    soonest = ripe_in
        return soonest

    async def take(self, engine, max_units=1, timeout=None):
        """Up to ``max_units`` units for ``engine``; may steal.

        Blocks until at least one unit is available (own lane first,
        then aged units from other lanes) or ``timeout`` elapses —
        ``None`` waits forever (the local pumps), a finite timeout is
        the long-poll budget of a remote ``lease``.  Taken units are
        marked RUNNING and tracked in ``engine.inflight``; cancelled
        units encountered along the way are silently dropped.  Returns
        a (possibly empty) list of units.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        async with self.condition:
            while True:
                if not engine.alive:
                    return []
                taken = []
                while len(taken) < max_units:
                    unit = self._pop_own(engine)
                    if unit is None:
                        unit = self._pop_stolen(engine,
                                                time.monotonic())
                    if unit is None:
                        break
                    unit.job.states[unit.index] = RUNNING
                    engine.inflight[(unit.job.id, unit.index)] = unit
                    taken.append(unit)
                if taken:
                    engine.touch()
                    # Lanes may have freed room for a blocked place().
                    self.condition.notify_all()
                    return taken
                now = time.monotonic()
                wait = None if deadline is None else deadline - now
                if wait is not None and wait <= 0:
                    return []
                ripe_in = self._next_steal_eligible(engine, now)
                if ripe_in is not None:
                    wait = ripe_in if wait is None \
                        else min(wait, ripe_in)
                if wait is not None and wait <= 0:
                    continue
                try:
                    await asyncio.wait_for(self.condition.wait(),
                                           wait)
                except asyncio.TimeoutError:
                    pass

    async def complete(self, engine, job_id, index):
        """A leased unit reached a terminal state on its engine."""
        async with self.condition:
            if engine.inflight.pop((job_id, index), None) is not None:
                engine.points_done += 1
            engine.touch()
            self.condition.notify_all()

    # ------------------------------------------------------------------
    # Failure: re-queue everything a dead engine held
    # ------------------------------------------------------------------
    async def fail(self, engine):
        """Mark the engine dead and re-queue its lane and leases.

        Laned units are still PENDING — they simply move to another
        live engine.  In-flight (leased) units are RUNNING; they are
        reset to PENDING and re-placed, except on a job that was
        cancelled meanwhile — ``cancel`` skips RUNNING points on the
        assumption they will finish, which a dead engine's never will,
        so those are marked CANCELLED here.  Returns the number of
        units re-queued.
        """
        if not engine.alive:
            return 0
        requeued = 0
        async with self.condition:
            engine.alive = False
            stranded = list(engine.lane)
            engine.lane.clear()
            leases = list(engine.inflight.values())
            engine.inflight.clear()
            self.condition.notify_all()
        for unit in stranded:
            if unit.job.states[unit.index] != PENDING:
                continue
            async with self.condition:
                self._place_now(unit)
                self.condition.notify_all()
            requeued += 1
        for unit in leases:
            if unit.job.states[unit.index] != RUNNING:
                continue  # its result arrived before the failure
            if not await unit.job.reset_to_pending(unit.index):
                continue
            if unit.job.cancelled:
                await unit.job.mark_cancelled([unit.index])
                continue
            async with self.condition:
                self._place_now(unit)
                self.condition.notify_all()
            requeued += 1
        self._forget_dead()
        return requeued

    def _forget_dead(self):
        """Bound the dead-engine memory (oldest forgotten first)."""
        dead = [engine for engine in self.engines.values()
                if not engine.alive]
        dead.sort(key=lambda engine: engine.last_seen)
        for engine in dead[:max(0, len(dead) - DEAD_ENGINE_MEMORY)]:
            del self.engines[engine.id]

    def reap_stale(self, timeout, now=None):
        """Remote engines whose last activity is older than ``timeout``.

        Returns the stale engines — the caller (the coordinator's
        reaper task) fails them and closes their connections; the
        roster itself has no connection handles.
        """
        now = time.monotonic() if now is None else now
        return [engine for engine in self.engines.values()
                if engine.alive and engine.kind == "remote"
                and now - engine.last_seen > timeout]

    def status(self):
        """Roster documents, stable order (locals first, then id)."""
        return [engine.status() for engine in
                sorted(self.engines.values(),
                       key=lambda e: (e.kind != "local", e.id))]

    def __repr__(self):
        return "EngineRoster(%d engines, %d live)" % (
            len(self.engines), len(self.live_engines()))
