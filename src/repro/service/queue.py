"""Job bookkeeping for the exploration service.

A :class:`Job` is one submitted batch of design points; the
:class:`JobQueue` owns every job and the single FIFO of work units —
``(job, index)`` pairs — the scheduler's workers drain.  Units from
different jobs interleave in submission order, so a small late job is
not starved behind a huge early one's tail (beyond the units already
in flight).

All state mutation happens on the event loop (the scheduler records
results via coroutines); the per-job :class:`asyncio.Condition` exists
for the *streaming* readers, which must block until new completions
arrive.  Completion order is recorded per job, so a results stream
replays finished points first and then follows live, order-independent
of submission.
"""

import asyncio
import itertools

from repro.errors import ReproError

#: Per-point lifecycle.
PENDING = "pending"
RUNNING = "running"
DONE = "done"          # completed, possibly with PointResult.error set
CANCELLED = "cancelled"

#: Job lifecycle (derived from the points plus the cancel flag).
QUEUED = "queued"
ACTIVE = "running"
FINISHED = "done"
STOPPED = "cancelled"


class Job:
    """One submitted batch and everything known about its progress."""

    def __init__(self, job_id, points):
        self.id = job_id
        self.points = list(points)
        self.states = [PENDING] * len(self.points)
        self.results = {}          # index -> PointResult (DONE points)
        self.order = []            # indices in completion order
        self.cancelled = False
        self.stats = {}            # stage -> [hits, misses] of this job
        self.condition = asyncio.Condition()

    @property
    def finished(self):
        """True once every point reached a terminal state."""
        return all(state in (DONE, CANCELLED) for state in self.states)

    @property
    def state(self):
        if self.cancelled:
            return STOPPED
        if self.finished:
            return FINISHED
        if any(state != PENDING for state in self.states):
            return ACTIVE
        return QUEUED

    def merge_stats(self, delta):
        """Fold one point's per-stage (hits, misses) delta into the job."""
        for stage, (hits, misses) in delta.items():
            entry = self.stats.setdefault(stage, [0, 0])
            entry[0] += hits
            entry[1] += misses

    def status(self):
        """The JSON-able status document of this job."""
        counts = {PENDING: 0, RUNNING: 0, DONE: 0, CANCELLED: 0}
        for state in self.states:
            counts[state] += 1
        errors = sum(1 for result in self.results.values()
                     if result.error is not None)
        hits = sum(entry[0] for entry in self.stats.values())
        misses = sum(entry[1] for entry in self.stats.values())
        lookups = hits + misses
        return {
            "job": self.id,
            "state": self.state,
            "total": len(self.points),
            "pending": counts[PENDING],
            "running": counts[RUNNING],
            "done": counts[DONE],
            "cancelled": counts[CANCELLED],
            "errors": errors,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    async def record(self, index, result, stats_delta=None):
        """Mark one point DONE and wake the streaming readers."""
        async with self.condition:
            self.states[index] = DONE
            self.results[index] = result
            self.order.append(index)
            if stats_delta:
                self.merge_stats(stats_delta)
            self.condition.notify_all()

    async def mark_cancelled(self, indices):
        """Mark still-pending points CANCELLED; wake the readers."""
        async with self.condition:
            for index in indices:
                self.states[index] = CANCELLED
                self.order.append(index)
            self.condition.notify_all()


class JobQueue:
    """Every job of one service instance plus the shared work FIFO."""

    def __init__(self):
        self.jobs = {}
        self._counter = itertools.count(1)
        self._work = asyncio.Queue()

    def submit(self, points):
        """Queue a batch; returns the new :class:`Job`."""
        job = Job("job-%d" % next(self._counter), points)
        self.jobs[job.id] = job
        for index in range(len(job.points)):
            self._work.put_nowait((job, index))
        return job

    def get(self, job_id):
        """The named job; :class:`ReproError` when unknown."""
        job = self.jobs.get(job_id)
        if job is None:
            raise ReproError("unknown job %r" % (job_id,))
        return job

    async def next_unit(self):
        """Block until a work unit is available; ``(job, index)``."""
        return await self._work.get()

    async def cancel(self, job_id):
        """Cancel a job's not-yet-started points; returns the count.

        Points already running finish normally (their results stay
        available); pending points flip to CANCELLED here and are
        skipped when the scheduler eventually dequeues them.
        """
        job = self.get(job_id)
        job.cancelled = True
        pending = [index for index, state in enumerate(job.states)
                   if state == PENDING]
        await job.mark_cancelled(pending)
        return len(pending)
