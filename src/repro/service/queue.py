"""Job bookkeeping and scheduling for the exploration service.

A :class:`Job` is one submitted batch of design points; the
:class:`JobQueue` owns every job, the admission control that keeps the
queue bounded, and the pluggable :data:`SCHEDULERS` policy deciding
which ``(job, index)`` unit a freed worker runs next:

* ``fifo`` — submission order, jobs interleaved as submitted (the
  PR 3 behaviour and still the default).
* ``sjf`` — smallest job first: among jobs with queued units, drain
  the one with the fewest total points, so interactive one-point
  probes never wait out a 4096-point batch's tail.
* ``fair`` — weighted round-robin over *clients*: each client's jobs
  are FIFO among themselves, but the scheduler rotates between
  clients (``weight`` units per turn), so one client's saturating
  batch cannot starve another's.

Scheduling only changes *when* a point runs, never what it computes —
every policy yields results bit-identical to a serial evaluation, and
per-job completion-order streaming is untouched.

Admission control: ``max_pending`` caps the points admitted but not
yet terminal across all jobs.  A submission that would exceed the cap
raises :class:`QueueFullError` carrying a ``retry_after`` hint, which
the server forwards as a structured rejection and the
:class:`~repro.service.client.ServiceClient` honours with capped
backoff.  On top of the global cap, a submission may carry a
per-client ``quota`` (the HTTP gateway's API-key in-flight-point
budget): the queue tracks in-flight points *per client label*, and a
submission that would push its client past the quota is rejected with
the same structured :class:`QueueFullError` — so one key's polling
fleet cannot crowd out the rest even under the global cap.

Job GC: ``job_ttl`` expires finished jobs (results and all) that age
past the TTL, and ``max_finished`` bounds how many finished jobs are
retained at once (oldest-finished evicted first), so a week-long
service holds bounded memory.  Expired job ids are remembered (in a
bounded ring) so a late ``status``/``results`` poll gets "expired"
rather than "unknown".

All state mutation happens on the event loop (the scheduler records
results via coroutines); the per-job :class:`asyncio.Condition` exists
for the *streaming* readers, which must block until new completions
arrive.  Completion order is recorded per job, so a results stream
replays finished points first and then follows live, order-independent
of submission.
"""

import asyncio
import collections
import functools
import heapq
import itertools
import time

from repro.errors import ReproError

#: Per-point lifecycle.
PENDING = "pending"
RUNNING = "running"
DONE = "done"          # completed, possibly with PointResult.error set
CANCELLED = "cancelled"

#: Job lifecycle (derived from the points plus the cancel flag).
QUEUED = "queued"
ACTIVE = "running"
FINISHED = "done"
STOPPED = "cancelled"

#: How many expired job ids to remember for friendly "expired" (rather
#: than "unknown") rejections of late polls.
EXPIRED_MEMORY = 1024


class QueueFullError(ReproError):
    """Admission rejected: the pending-point cap would be exceeded.

    Carries the server's ``retry_after`` hint (seconds) so the
    rejection can travel as a structured, client-honourable error.
    """

    def __init__(self, message, retry_after):
        super().__init__(message)
        self.retry_after = retry_after


class Job:
    """One submitted batch and everything known about its progress."""

    def __init__(self, job_id, points, client="", weight=1,
                 objective="speedup"):
        self.id = job_id
        self.points = list(points)
        self.states = [PENDING] * len(self.points)
        self.results = {}          # index -> PointResult (DONE points)
        self.order = []            # indices in completion order
        self.cancelled = False
        self.stats = {}            # stage -> [hits, misses] of this job
        self.condition = asyncio.Condition()
        self.client = client or ""
        self.weight = max(1, int(weight))
        self.objective = objective or "speedup"
        self.finished_at = None    # monotonic stamp of the terminal edge
        self._on_terminal = None   # JobQueue depth accounting hook

    @property
    def finished(self):
        """True once every point reached a terminal state."""
        return all(state in (DONE, CANCELLED) for state in self.states)

    @property
    def state(self):
        if self.cancelled:
            return STOPPED
        if self.finished:
            return FINISHED
        if any(state != PENDING for state in self.states):
            return ACTIVE
        return QUEUED

    def merge_stats(self, delta):
        """Fold one point's per-stage (hits, misses) delta into the job."""
        for stage, (hits, misses) in delta.items():
            entry = self.stats.setdefault(stage, [0, 0])
            entry[0] += hits
            entry[1] += misses

    def status(self):
        """The JSON-able status document of this job."""
        counts = {PENDING: 0, RUNNING: 0, DONE: 0, CANCELLED: 0}
        for state in self.states:
            counts[state] += 1
        errors = sum(1 for result in self.results.values()
                     if result.error is not None)
        hits = sum(entry[0] for entry in self.stats.values())
        misses = sum(entry[1] for entry in self.stats.values())
        lookups = hits + misses
        return {
            "job": self.id,
            "state": self.state,
            "total": len(self.points),
            "pending": counts[PENDING],
            "running": counts[RUNNING],
            "done": counts[DONE],
            "cancelled": counts[CANCELLED],
            "errors": errors,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "objective": self.objective,
        }

    def _note_terminal(self, count):
        """Depth accounting + the finished stamp, on the terminal edge."""
        if self._on_terminal is not None and count:
            self._on_terminal(count)
        if self.finished and self.finished_at is None:
            self.finished_at = time.monotonic()

    async def record(self, index, result, stats_delta=None):
        """Mark one point DONE and wake the streaming readers."""
        async with self.condition:
            if self.states[index] in (DONE, CANCELLED):
                return  # lost a cancel race; terminal edge counted
            self.states[index] = DONE
            self.results[index] = result
            self.order.append(index)
            if stats_delta:
                self.merge_stats(stats_delta)
            self._note_terminal(1)
            self.condition.notify_all()

    async def reset_to_pending(self, index):
        """Return one RUNNING point to PENDING; True when it moved.

        The engine-death path of the distributed fabric: a point leased
        to an engine that died will never complete there, so it goes
        back to PENDING for the roster to re-place — no terminal edge
        is crossed, so the queue's depth accounting is untouched.  A
        point that is not RUNNING (its result arrived in the race, or a
        cancel already terminated it) is left alone.
        """
        async with self.condition:
            if self.states[index] != RUNNING:
                return False
            self.states[index] = PENDING
            return True

    async def mark_cancelled(self, indices):
        """Mark still-pending points CANCELLED; wake the readers.

        The state is re-checked under the condition: a point the
        scheduler started between the caller's snapshot and this lock
        acquisition stays RUNNING (its result will arrive normally) —
        marking it here would double-terminate it and corrupt the
        queue's depth accounting.  Returns the count actually marked.
        """
        async with self.condition:
            marked = 0
            for index in indices:
                if self.states[index] != PENDING:
                    continue
                self.states[index] = CANCELLED
                self.order.append(index)
                marked += 1
            self._note_terminal(marked)
            self.condition.notify_all()
        return marked


# ----------------------------------------------------------------------
# Scheduling policies
# ----------------------------------------------------------------------
class FifoScheduler:
    """Submission order: all of job 1's units, then all of job 2's."""

    name = "fifo"

    def __init__(self):
        self._units = collections.deque()

    def add(self, job):
        self._units.extend((job, index)
                           for index in range(len(job.points)))

    def pick(self):
        return self._units.popleft() if self._units else None


class SmallestJobFirstScheduler:
    """Drain the smallest queued job first (ties: submission order).

    "Small" is the job's *total* point count, fixed at submission —
    a deliberate choice over remaining-count, which would let a large
    batch creep ahead of a fresh small job as it drains.
    """

    name = "sjf"

    def __init__(self):
        self._heap = []
        self._order = itertools.count()

    def add(self, job):
        heapq.heappush(
            self._heap,
            (len(job.points), next(self._order), job,
             collections.deque(range(len(job.points)))))

    def pick(self):
        while self._heap:
            _, _, job, indices = self._heap[0]
            if not indices:
                heapq.heappop(self._heap)
                continue
            return job, indices.popleft()
        return None


class _ClientLane:
    __slots__ = ("jobs", "weight", "served")

    def __init__(self, weight):
        self.jobs = collections.deque()   # (job, deque of indices)
        self.weight = max(1, weight)
        self.served = 0


class FairScheduler:
    """Weighted round-robin over clients; FIFO within each client.

    Each turn serves up to ``weight`` consecutive units of the ring's
    head client, then rotates — so a client's huge batch and another
    client's one-point probe alternate instead of queueing.  A job's
    ``weight`` updates its client's weight; an idle client leaves the
    ring and re-enters at the tail on its next submission.
    """

    name = "fair"

    def __init__(self):
        self._lanes = {}                  # client -> _ClientLane
        self._ring = collections.deque()  # clients in rotation order

    def add(self, job):
        lane = self._lanes.get(job.client)
        if lane is None:
            lane = self._lanes[job.client] = _ClientLane(job.weight)
            self._ring.append(job.client)
        lane.weight = max(1, job.weight)
        lane.jobs.append((job, collections.deque(
            range(len(job.points)))))

    def pick(self):
        while self._ring:
            client = self._ring[0]
            lane = self._lanes[client]
            while lane.jobs and not lane.jobs[0][1]:
                lane.jobs.popleft()
            if not lane.jobs:
                self._ring.popleft()
                del self._lanes[client]
                continue
            job, indices = lane.jobs[0]
            unit = (job, indices.popleft())
            lane.served += 1
            if lane.served >= lane.weight:
                lane.served = 0
                self._ring.rotate(-1)
            return unit
        return None


#: Scheduler name -> class; the ``--scheduler`` choices.
SCHEDULERS = {
    FifoScheduler.name: FifoScheduler,
    SmallestJobFirstScheduler.name: SmallestJobFirstScheduler,
    FairScheduler.name: FairScheduler,
}


def scheduler_class(name):
    """The policy class a scheduler name names; loud when unknown."""
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise ReproError(
            "unknown scheduler %r (expected one of %s)"
            % (name, ", ".join(sorted(SCHEDULERS)))) from None


class JobQueue:
    """Every job of one service instance plus the shared work pool.

    The worker-facing side is a counting queue of *tokens* (one per
    admitted unit) plus the scheduler policy: workers block on the
    token queue, and each token entitles exactly one ``pick()`` — so
    admission stays a synchronous call while the policy decides order.
    """

    def __init__(self, scheduler="fifo", max_pending=None,
                 retry_after=0.25, job_ttl=None, max_finished=None):
        self.scheduler = scheduler_class(scheduler)()
        self.max_pending = max_pending
        self.retry_after = float(retry_after)
        self.job_ttl = job_ttl
        self.max_finished = max_finished
        self.jobs = {}
        self.depth = 0             # admitted, not-yet-terminal points
        self.client_depth = {}     # client label -> in-flight points
        self._counter = itertools.count(1)
        self._tokens = asyncio.Queue()
        self._expired = collections.OrderedDict()

    def submit(self, points, client="", weight=1,
               objective="speedup", quota=None):
        """Queue a batch; returns the new :class:`Job`.

        :class:`QueueFullError` when admitting the batch would push the
        in-flight point count past ``max_pending``, or this client's
        in-flight count past its ``quota`` — nothing is queued in
        either case, so a rejected client retries from a clean slate.
        A batch larger than the cap (or the quota) itself can never be
        admitted, so it is rejected *without* a retry hint (plain
        :class:`ReproError`) — retrying it would only burn the
        client's backoff budget.
        """
        if self.max_pending is not None:
            if len(points) > self.max_pending:
                raise ReproError(
                    "submission of %d points exceeds the %d-point "
                    "queue cap; it can never be admitted — split the "
                    "batch" % (len(points), self.max_pending))
            if self.depth + len(points) > self.max_pending:
                raise QueueFullError(
                    "queue full: %d point(s) in flight plus %d "
                    "submitted would exceed the %d-point cap"
                    % (self.depth, len(points), self.max_pending),
                    self.retry_after)
        if quota is not None:
            if len(points) > quota:
                raise ReproError(
                    "submission of %d points exceeds client %r's "
                    "%d-point quota; it can never be admitted — split "
                    "the batch" % (len(points), client, quota))
            in_flight = self.client_depth.get(client, 0)
            if in_flight + len(points) > quota:
                raise QueueFullError(
                    "quota exceeded: client %r has %d point(s) in "
                    "flight plus %d submitted would exceed its "
                    "%d-point quota" % (client, in_flight,
                                        len(points), quota),
                    self.retry_after)
        job = Job("job-%d" % next(self._counter), points,
                  client=client, weight=weight, objective=objective)
        job._on_terminal = functools.partial(self._points_terminal,
                                             job)
        self.depth += len(job.points)
        self.client_depth[job.client] = \
            self.client_depth.get(job.client, 0) + len(job.points)
        self.jobs[job.id] = job
        self.scheduler.add(job)
        for _ in range(len(job.points)):
            self._tokens.put_nowait(None)
        return job

    def _points_terminal(self, job, count):
        self.depth -= count
        remaining = self.client_depth.get(job.client, 0) - count
        if remaining > 0:
            self.client_depth[job.client] = remaining
        else:
            self.client_depth.pop(job.client, None)

    def get(self, job_id):
        """The named job; :class:`ReproError` when unknown or expired."""
        job = self.jobs.get(job_id)
        if job is None:
            if job_id in self._expired:
                raise ReproError("job %r has expired (completed-job GC)"
                                 % (job_id,))
            raise ReproError("unknown job %r" % (job_id,))
        return job

    def status(self, job, now=None):
        """``job.status()`` plus this queue's retention outlook."""
        document = job.status()
        if self.job_ttl is not None and job.finished_at is not None:
            now = time.monotonic() if now is None else now
            document["expires_in"] = max(
                0.0, self.job_ttl - (now - job.finished_at))
        else:
            document["expires_in"] = None
        return document

    async def next_unit(self):
        """Block until a work unit is available; ``(job, index)``."""
        await self._tokens.get()
        return self.scheduler.pick()

    async def cancel(self, job_id):
        """Cancel a job's not-yet-started points; returns the count.

        Points already running finish normally (their results stay
        available); pending points flip to CANCELLED here and are
        skipped when the scheduler eventually dequeues them.
        """
        job = self.get(job_id)
        job.cancelled = True
        pending = [index for index, state in enumerate(job.states)
                   if state == PENDING]
        return await job.mark_cancelled(pending)

    def collect_garbage(self, now=None):
        """Expire finished jobs past the TTL / retention bound.

        Called by the server on every request dispatch and whenever a
        job finishes; returns the number of jobs dropped.  Running and
        queued jobs are never touched.
        """
        now = time.monotonic() if now is None else now
        victims = []
        if self.job_ttl is not None:
            victims.extend(
                job for job in self.jobs.values()
                if job.finished_at is not None
                and now - job.finished_at > self.job_ttl)
        if self.max_finished is not None:
            finished = sorted(
                (job for job in self.jobs.values()
                 if job.finished_at is not None),
                key=lambda job: job.finished_at)
            overflow = len(finished) - self.max_finished
            if overflow > 0:
                victims.extend(finished[:overflow])
        removed = 0
        for job in victims:
            if self.jobs.pop(job.id, None) is not None:
                self._expired[job.id] = True
                removed += 1
        while len(self._expired) > EXPIRED_MEMORY:
            self._expired.popitem(last=False)
        return removed
