"""Async job-queue frontend over the exploration engine.

Layers (thinnest on top):

* :mod:`repro.service.protocol` — the line-JSON wire format: request
  parsing, submission validation, response builders.
* :mod:`repro.service.queue` — :class:`Job`/:class:`JobQueue`: batch
  bookkeeping, per-point lifecycle, completion-order streaming state.
* :mod:`repro.service.server` — :class:`ExplorationService`: the
  asyncio server + scheduler draining the queue onto one shared
  :class:`~repro.engine.session.Session` (single-writer engine thread,
  optional persistent ``multiprocessing`` pool), plus the blocking
  :func:`serve` entry point.
* :mod:`repro.service.client` — :class:`ServiceClient`: the blocking
  socket client the CLI's ``submit``/``status``/``results`` wrap.

Heavy modules load lazily, mirroring :mod:`repro.engine`.
"""

__all__ = [
    "ExplorationService",
    "ServiceClient",
    "ServiceError",
    "serve",
]


def __getattr__(name):
    if name in ("ExplorationService", "serve"):
        from repro.service import server

        return getattr(server, name)
    if name in ("ServiceClient", "ServiceError"):
        from repro.service import client

        return getattr(client, name)
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))
