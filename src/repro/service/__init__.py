"""Async job-queue frontend over the exploration engine.

Layers (thinnest on top):

* :mod:`repro.service.protocol` — the line-JSON wire format: request
  parsing, submission validation, response builders, and the fabric
  ops (``join``/``lease``/``delta``/``engine-heartbeat``) with their
  store-delta codec.
* :mod:`repro.service.queue` — :class:`Job`/:class:`JobQueue`: batch
  bookkeeping, per-point lifecycle, completion-order streaming state.
* :mod:`repro.service.engine` — :class:`Engine`/:class:`EngineRoster`:
  the placement layer of the distributed fabric — affinity routing,
  bounded lanes, work stealing, engine-death re-queues.
* :mod:`repro.service.server` — :class:`ExplorationService`: the
  asyncio coordinator + scheduler draining the queue onto its engine
  roster over one shared :class:`~repro.engine.session.Session`
  (single-writer engine thread, optional persistent
  ``multiprocessing`` pool), plus the blocking :func:`serve` entry
  point.
* :mod:`repro.service.worker` — :class:`EngineWorker`: the worker
  process behind ``serve --join``, contributing a remote engine to a
  coordinator.
* :mod:`repro.service.client` — :class:`ServiceClient`: the blocking
  socket client the CLI's ``submit``/``status``/``results`` wrap.

Heavy modules load lazily, mirroring :mod:`repro.engine`.
"""

__all__ = [
    "EngineRoster",
    "EngineWorker",
    "ExplorationService",
    "ServiceClient",
    "ServiceError",
    "join_coordinator",
    "serve",
]


def __getattr__(name):
    if name in ("ExplorationService", "serve"):
        from repro.service import server

        return getattr(server, name)
    if name in ("ServiceClient", "ServiceError"):
        from repro.service import client

        return getattr(client, name)
    if name == "EngineRoster":
        from repro.service import engine

        return engine.EngineRoster
    if name in ("EngineWorker", "join_coordinator"):
        from repro.service import worker

        return getattr(worker, name)
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))
