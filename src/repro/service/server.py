"""The asyncio exploration service: one warm store, many engines.

The server wraps a single long-lived
:class:`~repro.engine.session.Session` (usually opened with a
``cache_dir``) behind the line-JSON protocol of
:mod:`~repro.service.protocol`: clients submit batches of design
points, the scheduler policy orders them, and the
:class:`~repro.service.engine.EngineRoster` places each unit on one of
the service's engines — so every client shares one warm cache instead
of each paying a cold sweep.

Engine-count agnosticism (the ISSUE 7 refactor): evaluation happens
behind the :class:`~repro.service.engine.Engine` interface.  A default
service is one :class:`~repro.service.engine.LocalEngine`; passing
``local_engines=0`` makes a pure coordinator that only schedules and
absorbs (remote engines must join for work to progress), and any
worker process can add a :class:`~repro.service.engine.RemoteEngine`
at runtime with ``serve --join`` (the ``join``/``lease``/``delta``/
``engine-heartbeat`` ops).  Placement is ``program_fingerprint``
affinity — equal programs route to the engine that already compiled
and cached them — with aged-work stealing when an engine idles.

Concurrency model (the single-writer rule, unchanged in spirit):

* The parent session, its cache and its store are only ever touched
  from one dedicated engine thread, so the plain-dict engine needs no
  locks.  Local in-process evaluation, pool-delta absorption *and*
  remote-delta absorption all funnel through it.
* ``workers > 1`` keeps a persistent ``multiprocessing`` pool whose
  processes each hold a session hydrated from the same ``cache_dir``;
  dispatch threads block on the pool while the event loop stays
  responsive.  Workers (pool *and* remote) never write shards — their
  stable-encoded store deltas travel back and are absorbed on the
  engine thread, which remains the store's only writer.

Durability: the engine thread rate-limits flushes through
:meth:`~repro.engine.store.CacheStore.maybe_flush` after every point
and forces a full flush whenever a job drains, so a crash loses at
most ``flush_interval`` seconds of cache growth and a streamed "done"
implies the job's entries — including every absorbed remote delta —
are on disk.  That ordering (absorb before record, flush before
"done") is the per-job durability barrier of the fabric.

Failure containment: every point is evaluated through
``Session.evaluate_point_safe`` — an unknown app or infeasible point
yields a ``PointResult`` with ``error`` set for *that point only*.  A
remote engine that dies mid-lease (connection drop or heartbeat
timeout) has its in-flight and laned units re-queued onto the
surviving engines, so job results stay bit-identical to a serial run;
a malformed ``delta`` frame is rejected whole before any of it touches
job state.

Operability (the ISSUE 4 hardening, unchanged):

* ``token`` arms the shared-token handshake — required before ``join``
  like before any other op, so only authenticated workers can attach
  engines or deliver deltas.
* ``queue_cap`` bounds the admitted-but-unfinished point count.
* ``scheduler`` picks the queue policy (``fifo``/``sjf``/``fair``).
* ``job_ttl``/``max_jobs`` garbage-collect finished jobs.
"""

import asyncio
import concurrent.futures
import hmac
import multiprocessing

from repro.engine.cache import CacheStats
from repro.engine.session import Session
from repro.io.serialize import point_result_to_dict
from repro.service import protocol
from repro.service.engine import (
    EngineRoster,
    LocalEngine,
    RemoteEngine,
)
from repro.service.queue import (
    PENDING,
    RUNNING,
    JobQueue,
    QueueFullError,
    scheduler_class,
)
from repro.errors import ReproError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7421

#: Hosts a token-less server may bind (the mutually-trusting-local
#: contract); anything else requires ``token``.
LOOPBACK_HOSTS = ("127.0.0.1", "::1", "localhost")

#: Seconds of engine silence before the reaper declares it dead.
DEFAULT_ENGINE_TIMEOUT = 60.0

#: Seconds a placed unit must wait before an idle engine may steal it.
DEFAULT_STEAL_DELAY = 0.25


def _pooled_point(point):
    """Evaluate one point inside a pool worker; error captured.

    Runs in a worker process initialised by
    :func:`repro.engine.session._worker_init`; reuses the chunk
    plumbing with a one-point chunk, so the result ships with the
    worker's hit/miss delta and the stable-encoded store delta for the
    parent (the single writer) to absorb.
    """
    from repro.engine import session as session_module

    _, results, stats_delta, store_delta = \
        session_module._worker_point_chunk((0, [point]))
    return results[0], stats_delta, store_delta


class _Connection:
    """Per-connection protocol state: auth plus the joined engine."""

    __slots__ = ("authenticated", "engine")

    def __init__(self, authenticated):
        self.authenticated = authenticated
        self.engine = None


class ExplorationService:
    """One service instance: session + queue + engine roster + protocol."""

    def __init__(self, session, workers=1, flush_interval=2.0,
                 token=None, scheduler="fifo", queue_cap=None,
                 retry_after=0.25, job_ttl=None, max_jobs=None,
                 local_engines=1, steal_delay=DEFAULT_STEAL_DELAY,
                 engine_timeout=DEFAULT_ENGINE_TIMEOUT):
        scheduler_class(scheduler)  # fail at construction, not start()
        if local_engines < 0:
            raise ReproError("local_engines must be >= 0, got %r"
                             % (local_engines,))
        self.session = session
        self.workers = max(1, int(workers))
        self.flush_interval = float(flush_interval)
        self.token = token
        self.scheduler = scheduler
        self.queue_cap = queue_cap
        self.retry_after = float(retry_after)
        self.job_ttl = job_ttl
        self.max_jobs = max_jobs
        self.local_engines = int(local_engines)
        self.steal_delay = float(steal_delay)
        self.engine_timeout = float(engine_timeout)
        self.queue = None        # created in start() (needs the loop)
        self.roster = None
        self.address = None
        # The serving loop, set by start(); the HTTP gateway's handler
        # threads marshal every queue access through it.
        self.loop = None
        self._server = None
        self._stopping = None
        self._tasks = []
        self._connections = set()
        self._engine = None      # the single session/store thread
        self._dispatch = None    # threads blocking on the mp pool
        self._pool = None
        self._remote_counter = 0
        self._affinity_keys = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host=DEFAULT_HOST, port=0):
        """Bind, spin up the roster and scheduler, return self."""
        self.queue = JobQueue(scheduler=self.scheduler,
                              max_pending=self.queue_cap,
                              retry_after=self.retry_after,
                              job_ttl=self.job_ttl,
                              max_finished=self.max_jobs)
        self.roster = EngineRoster(steal_delay=self.steal_delay)
        self.loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._engine = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="lycos-engine")
        if self.workers > 1 and self.local_engines > 0:
            cache_dir = None if self.session.store is None \
                else self.session.store.root
            # Hand workers everything already computed here, then keep
            # the pool for the service's whole life: its per-process
            # caches stay warm across jobs and clients.
            await self._on_engine(self.session.save_store)
            from repro.engine.session import _worker_init

            self._pool = multiprocessing.Pool(
                processes=self.workers, initializer=_worker_init,
                initargs=(self.session.library, cache_dir))
            self._dispatch = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="lycos-dispatch")
        self._tasks = [asyncio.ensure_future(self._dispatch_loop()),
                       asyncio.ensure_future(self._reap_loop())]
        for number in range(self.local_engines):
            engine = LocalEngine("local-%d" % (number + 1),
                                 slots=self._local_slots(number))
            await self.roster.add(engine)
            for _ in range(engine.slots):
                self._tasks.append(
                    asyncio.ensure_future(self._local_pump(engine)))
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=protocol.MAX_LINE_BYTES)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    def _local_slots(self, number):
        """Evaluation slots of the ``number``-th local engine.

        ``workers`` is the total local parallelism; it is spread over
        the local engines (remainder to the earliest), each engine
        getting at least one slot.
        """
        share = self.workers // max(1, self.local_engines)
        extra = 1 if number < self.workers % max(1,
                                                 self.local_engines) \
            else 0
        return max(1, share + extra)

    async def run_until_shutdown(self):
        """Serve until a shutdown request (or cancellation) arrives."""
        await self._stopping.wait()
        await self.stop()

    async def stop(self):
        """Tear the service down; the store gets one final flush."""
        if self._server is not None:
            self._server.close()
            # Cancel the live connection handlers before waiting: an
            # idle client parked in readline() would otherwise hold
            # wait_closed() open forever on Python >= 3.12, where it
            # waits for every handler, not just the listening socket.
            for connection in list(self._connections):
                connection.cancel()
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        # Drain before destroy: a terminated pool never answers its
        # outstanding ``apply`` calls, which would strand the dispatch
        # threads (and with them, interpreter exit) forever.  close()
        # lets in-flight evaluations finish, the dispatch threads
        # return, and only then does the pool go away — so a shutdown
        # during a busy job waits out the points in flight instead of
        # hanging.
        if self._pool is not None:
            self._pool.close()
        if self._dispatch is not None:
            self._dispatch.shutdown(wait=True)
            self._dispatch = None
        if self._pool is not None:
            self._pool.join()
            self._pool = None
        if self._engine is not None:
            await self._on_engine(self.session.save_store)
            self._engine.shutdown(wait=True)
            self._engine = None

    def _on_engine(self, callable_, *args):
        """Run session/store work on the single engine thread."""
        return asyncio.get_running_loop().run_in_executor(
            self._engine, callable_, *args)

    # ------------------------------------------------------------------
    # Scheduling: policy -> placement -> engines
    # ------------------------------------------------------------------
    def _affinity_key(self, point):
        """The placement key of one point: its program fingerprint.

        Falls back to the bare app name when the fingerprint cannot be
        computed (an unknown app, say — it will fail per-point anyway,
        and the failure may as well be affine too).  Memoised per app:
        the fingerprint covers source + profiling inputs + library,
        none of which change within one service life.
        """
        key = self._affinity_keys.get(point.app)
        if key is None:
            try:
                key = self.session.program_affinity_key(point.app)
            except Exception:
                key = "app:%s" % point.app
            self._affinity_keys[point.app] = key
        return key

    async def _dispatch_loop(self):
        """Pull units from the queue policy and place them on engines.

        The policy decides *what* runs next; the roster decides
        *where*.  Placement blocks while the affine engine's lane is
        full, which keeps policy decisions late — at most ``slots``
        units are committed to an engine ahead of its evaluation.
        """
        while True:
            job, index = await self.queue.next_unit()
            if job.states[index] != PENDING:
                continue  # cancelled while queued
            key = self._affinity_key(job.points[index])
            await self.roster.place(job, index, key)

    async def _reap_loop(self):
        """Fail remote engines that went silent past the timeout."""
        interval = max(0.05, self.engine_timeout / 4.0)
        while True:
            await asyncio.sleep(interval)
            for engine in self.roster.reap_stale(self.engine_timeout):
                await self.roster.fail(engine)

    async def _local_pump(self, engine):
        """One evaluation slot of a local engine."""
        while True:
            units = await self.roster.take(engine, max_units=1)
            for unit in units:
                try:
                    await self._run_unit(engine, unit.job, unit.index)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    # A unit must never kill its engine slot; the point
                    # is recorded as failed and the pump keeps going.
                    pass

    async def _run_unit(self, engine, job, index):
        point = job.points[index]
        store_delta = None
        try:
            if self._pool is None:
                result, stats_delta = await self._on_engine(
                    self._evaluate_local, point)
            else:
                loop = asyncio.get_running_loop()
                result, stats_delta, store_delta = \
                    await loop.run_in_executor(
                        self._dispatch, self._pool.apply,
                        _pooled_point, (point,))
        except Exception as exc:
            from repro.engine.design_point import failed_point_result

            result, stats_delta = failed_point_result(point, exc), {}
        # Bookkeeping failures (a full disk mid-flush, say) must not
        # discard a result that was already computed: the per-point
        # error field reports *design-point* failures, and the store
        # retries unchanged entries on its next flush anyway.
        try:
            await self._on_engine(self._absorb_and_flush,
                                  self._pool is not None, stats_delta,
                                  store_delta)
        except Exception:
            pass
        await self._record(engine, job, index, result, stats_delta)

    async def _record(self, engine, job, index, result, stats_delta):
        """Terminal bookkeeping one completed unit shares across
        engine kinds: job record, engine accounting, roster release,
        and the job-completion durability flush."""
        engine.record_stats(stats_delta)
        await job.record(index, result, stats_delta)
        await self.roster.complete(engine, job.id, index)
        if job.finished:
            self.queue.collect_garbage()
            # A streamed "done" implies durability: force the flush the
            # per-point path only performs on its time budget.
            await self._on_engine(self.session.save_store)

    def _evaluate_local(self, point):
        """One in-process evaluation; runs on the engine thread."""
        stats = self.session.stats
        before = stats.snapshot()
        result = self.session.evaluate_point_safe(point)
        return result, CacheStats.delta(before, stats.snapshot())

    def _absorb_and_flush(self, pooled, stats_delta, store_delta):
        """Absorb a pooled point's deltas, then flush on the time
        budget; runs on the engine thread.  In-process points only
        flush (their stats landed in the parent during evaluation)."""
        if pooled:
            self.session.stats.merge(stats_delta)
            if self.session.store is not None and store_delta:
                self.session.store.absorb_delta(store_delta)
        if self.session.store is not None:
            self.session.store.maybe_flush(self.session.cache,
                                           self.flush_interval)

    def _absorb_remote(self, stats_delta, store_delta):
        """Absorb one remote delta frame; runs on the engine thread.

        Returns the number of store entries absorbed.  Runs *before*
        the frame's results are recorded, so a job can only finish
        once every delta that travelled with its results has reached
        the store — the other half of the durability barrier.
        """
        if stats_delta:
            self.session.stats.merge(stats_delta)
        absorbed = 0
        if self.session.store is not None and store_delta:
            absorbed = self.session.store.absorb_delta(store_delta)
        if self.session.store is not None:
            self.session.store.maybe_flush(self.session.cache,
                                           self.flush_interval)
        return absorbed

    # ------------------------------------------------------------------
    # Protocol handling
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        conn = _Connection(authenticated=self.token is None)
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # Over-long line: framing is gone, drop the link.
                    writer.write(protocol.encode(protocol.error(
                        "request line exceeds %d bytes"
                        % protocol.MAX_LINE_BYTES)))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = protocol.decode_request(line)
                    if request["op"] == "auth":
                        granted = self._check_token(request)
                        writer.write(protocol.encode(
                            protocol.ok(authenticated=True) if granted
                            else protocol.error("invalid token")))
                        await writer.drain()
                        if not granted:
                            break  # no guessing on one connection
                        conn.authenticated = True
                        continue
                    if not conn.authenticated:
                        # Rejected (and the link dropped) before any
                        # job state exists — the auth contract.
                        writer.write(protocol.encode(protocol.error(
                            "authentication required: send "
                            "{\"op\": \"auth\", \"token\": ...} first",
                            auth_required=True)))
                        await writer.drain()
                        break
                    await self._dispatch_request(request, writer, conn)
                except (protocol.ProtocolError, ReproError) as exc:
                    writer.write(protocol.encode(protocol.error(exc)))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-reply; nothing to clean up
        except asyncio.CancelledError:
            # Service shutdown cancels connection handlers, possibly
            # mid-request (a worker parked in a lease long-poll).  The
            # connection is closing either way; ending the task
            # normally keeps the cancellation out of the event loop's
            # exception log.
            pass
        finally:
            self._connections.discard(task)
            if conn.engine is not None:
                # The engine's lifetime is its connection's: a worker
                # that vanishes (cleanly or not) has its units
                # re-queued onto the surviving engines.
                try:
                    await asyncio.shield(self.roster.fail(conn.engine))
                except Exception:
                    pass
            writer.close()

    def _check_token(self, request):
        """Constant-time shared-token check of one auth request."""
        supplied = protocol.auth_token(request)
        if self.token is None:
            return True  # open server: the handshake is a no-op
        return hmac.compare_digest(supplied.encode("utf-8"),
                                   self.token.encode("utf-8"))

    def _connection_engine(self, request, conn):
        """The engine bound to this connection, checked against the
        request — lease/delta/heartbeat only speak for the engine that
        joined on the *same* connection, so no worker can touch
        another engine's units."""
        engine = conn.engine
        if engine is None:
            raise ReproError("no engine joined on this connection "
                             "(send {\"op\": \"join\", ...} first)")
        named = protocol.engine_name(request)
        if named != engine.id:
            raise ReproError(
                "engine %r is not joined on this connection (this "
                "connection's engine is %r)" % (named, engine.id))
        return engine

    async def _dispatch_request(self, request, writer, conn):
        op = request["op"]
        # Retention is enforced at every touch point, so an idle-then
        # -polled service trims itself before answering.
        self.queue.collect_garbage()
        if op == "ping":
            # Program-store economy: compiles the engine (or its pool
            # workers — their deltas merge into the session stats)
            # actually paid vs compiles the persistent store absorbed.
            # A long-lived warm service shows hits climbing while
            # compiles stay flat across jobs and restarts.
            stats = self.session.stats
            writer.write(protocol.encode(protocol.ok(
                protocol=protocol.PROTOCOL_VERSION,
                workers=self.workers, jobs=len(self.queue.jobs),
                scheduler=self.queue.scheduler.name,
                depth=self.queue.depth,
                queue_cap=self.queue.max_pending,
                program_compiles=stats.miss_count("compile"),
                program_store_hits=stats.hit_count("compile"),
                local_engines=self.local_engines,
                engines=self.roster.status())))
        elif op == "submit":
            points = protocol.submission_points(request)
            client, weight = protocol.submission_meta(request)
            objective = protocol.submission_objective(request)
            try:
                job = self.queue.submit(points, client=client,
                                        weight=weight,
                                        objective=objective)
            except QueueFullError as exc:
                writer.write(protocol.encode(protocol.error(
                    exc, retry_after=exc.retry_after)))
            else:
                writer.write(protocol.encode(protocol.ok(
                    job=job.id, total=len(job.points),
                    objective=job.objective)))
        elif op == "status":
            job = self.queue.get(protocol.job_name(request))
            writer.write(protocol.encode(protocol.ok(
                status=self.queue.status(job))))
        elif op == "results":
            job = self.queue.get(protocol.job_name(request))
            await self._stream_results(job, writer)
            return
        elif op == "cancel":
            cancelled = await self.queue.cancel(
                protocol.job_name(request))
            job = self.queue.get(request["job"])
            writer.write(protocol.encode(protocol.ok(
                cancelled=cancelled, status=self.queue.status(job))))
        elif op == "jobs":
            writer.write(protocol.encode(protocol.ok(
                jobs=[self.queue.status(self.queue.jobs[name])
                      for name in sorted(self.queue.jobs)])))
        elif op == "join":
            await self._handle_join(request, writer, conn)
        elif op == "lease":
            await self._handle_lease(request, writer, conn)
        elif op == "delta":
            await self._handle_delta(request, writer, conn)
        elif op == "engine-heartbeat":
            engine = self._connection_engine(request, conn)
            engine.touch()
            writer.write(protocol.encode(protocol.ok(
                engine=engine.id, queued=len(engine.lane),
                in_flight=len(engine.inflight))))
        elif op == "shutdown":
            writer.write(protocol.encode(protocol.ok(stopping=True)))
            await writer.drain()
            self._stopping.set()
            return
        await writer.drain()

    # ------------------------------------------------------------------
    # Fabric ops
    # ------------------------------------------------------------------
    async def _handle_join(self, request, writer, conn):
        if conn.engine is not None:
            raise ReproError("this connection already joined engine %r"
                             % conn.engine.id)
        label, slots = protocol.join_fields(request)
        self._remote_counter += 1
        base = label or ("remote-%d" % self._remote_counter)
        engine = RemoteEngine(self.roster.unique_id(base),
                              slots=slots, label=label)
        await self.roster.add(engine)
        conn.engine = engine
        writer.write(protocol.encode(protocol.ok(
            engine=engine.id, slots=engine.slots,
            timeout=self.engine_timeout,
            heartbeat=max(0.05, self.engine_timeout / 3.0))))

    async def _handle_lease(self, request, writer, conn):
        engine = self._connection_engine(request, conn)
        max_units, wait = protocol.lease_fields(request)
        engine.touch()
        units = await self.roster.take(engine, max_units=max_units,
                                       timeout=wait)
        from repro.io.serialize import design_point_to_dict

        # The objective travels with each leased unit: a point's
        # evaluation is objective-independent (every metric is always
        # computed), but a worker summarising or logging its lease can
        # honour the submitting client's intent.
        writer.write(protocol.encode(protocol.ok(
            engine=engine.id,
            points=[{"job": unit.job.id, "index": unit.index,
                     "objective": unit.job.objective,
                     "point": design_point_to_dict(
                         unit.job.points[unit.index])}
                    for unit in units])))

    async def _handle_delta(self, request, writer, conn):
        """Absorb one worker delta frame: store first, results second.

        The whole frame is validated and decoded *before* anything is
        applied — a malformed result document or store blob rejects
        the frame with no coordinator state touched (the fuzz-tier
        contract).  Results are only accepted for units this engine
        holds a lease on; anything else (a re-send after a reconnect,
        a confused worker) is counted and ignored — the re-queue path
        already covers those points.
        """
        engine = self._connection_engine(request, conn)
        entries, blob = protocol.delta_fields(request)
        store_delta = None
        delta_raw = delta_compressed = 0
        if blob is not None:
            store_delta, delta_raw, delta_compressed = \
                protocol.decode_store_delta_sized(blob)
        from repro.io.serialize import point_result_from_dict

        decoded = []
        for job_id, index, document, stats_delta in entries:
            result = point_result_from_dict(
                document, library=self.session.library)
            decoded.append((job_id, index, result, stats_delta))
        engine.touch()
        absorbed = 0
        if store_delta is not None or any(
                stats for _, _, _, stats in decoded):
            merged_stats = {}
            for _, _, _, stats in decoded:
                for stage, (hits, misses) in stats.items():
                    entry = merged_stats.setdefault(stage, [0, 0])
                    entry[0] += hits
                    entry[1] += misses
            merged_stats = {stage: tuple(pair) for stage, pair
                            in merged_stats.items()}
            try:
                absorbed = await self._on_engine(
                    self._absorb_remote, merged_stats, store_delta)
            except Exception:
                absorbed = 0  # bookkeeping must not discard results
        engine.deltas_absorbed += 1
        engine.delta_entries += absorbed
        if blob is not None:
            # Compression accounting: what crossed the wire vs the
            # pickled payload it stood for, per engine — surfaced by
            # ``ping``/``status`` rosters and ``cache info``, and
            # persisted alongside the store's shards.
            engine.delta_raw_bytes += delta_raw
            engine.delta_compressed_bytes += delta_compressed
            if self.session.store is not None:
                try:
                    await self._on_engine(
                        self.session.store.record_delta_stats,
                        engine.id, delta_raw, delta_compressed)
                except Exception:
                    pass  # accounting must not discard results
        recorded = 0
        stale = 0
        for job_id, index, result, stats_delta in decoded:
            unit = engine.inflight.get((job_id, index))
            if unit is None:
                stale += 1
                continue
            await self._record(engine, unit.job, index, result,
                               stats_delta)
            recorded += 1
        writer.write(protocol.encode(protocol.ok(
            engine=engine.id, recorded=recorded, stale=stale,
            store_entries=absorbed)))

    async def _stream_results(self, job, writer):
        """Replay finished points, then follow live until terminal.

        One line per terminal point, completion-ordered: ``index`` +
        either the serialised result or a ``cancelled`` marker; a final
        ``done`` line carries the job's closing status.
        """
        writer.write(protocol.encode(protocol.ok(
            job=job.id, total=len(job.points), streaming=True)))
        await writer.drain()
        sent = 0
        while True:
            async with job.condition:
                while len(job.order) <= sent and not job.finished:
                    await job.condition.wait()
                batch = list(job.order[sent:])
            for index in batch:
                result = job.results.get(index)
                if result is None:
                    line = protocol.ok(index=index, cancelled=True)
                else:
                    line = protocol.ok(
                        index=index, result=point_result_to_dict(result))
                writer.write(protocol.encode(line))
            sent += len(batch)
            await writer.drain()
            if job.finished and sent >= len(job.order):
                break
        # The durability barrier of the contract: once a client reads
        # "done", the job's store entries are on disk.  (The scheduler
        # also flushes on completion, but that flush may still be in
        # flight when the last result streams out; this one is cheap —
        # a no-op when the engine thread already got there.)
        await self._on_engine(self.session.save_store)
        writer.write(protocol.encode(protocol.ok(
            done=True, status=self.queue.status(job))))
        await writer.drain()


def serve(cache_dir=None, workers=1, host=DEFAULT_HOST,
          port=DEFAULT_PORT, library=None, flush_interval=2.0,
          announce=print, token=None, scheduler="fifo", queue_cap=None,
          job_ttl=None, max_jobs=None, local_engines=1,
          steal_delay=DEFAULT_STEAL_DELAY,
          engine_timeout=DEFAULT_ENGINE_TIMEOUT,
          http_port=None, api_keys=None):
    """Blocking entry point: build the session, serve until shutdown.

    Runs until a ``shutdown`` request or ``KeyboardInterrupt``; either
    way the store gets a final flush, so everything the service
    computed stays warm for the next one.  Binding a non-loopback
    ``host`` requires ``token`` — an open service beyond localhost
    would hand the store (and the engine) to the whole network.
    ``local_engines=0`` starts a pure coordinator: nothing evaluates
    until worker processes join (``serve --join``).

    ``http_port`` additionally mounts the REST gateway of
    :mod:`~repro.service.http` over the same queue, on the same host;
    ``api_keys`` (``{key: ApiKey}``, see
    :func:`~repro.service.http.load_api_keys`) arms its per-key auth,
    scheduler identity and in-flight quotas — required beyond
    loopback, like the TCP token.
    """
    if token is None and host not in LOOPBACK_HOSTS:
        raise ReproError(
            "refusing to bind %s without a token: pass token= "
            "(--token/--token-file) to serve beyond loopback" % host)
    session = Session(library=library, cache_dir=cache_dir)

    async def _main():
        service = ExplorationService(session, workers=workers,
                                     flush_interval=flush_interval,
                                     token=token, scheduler=scheduler,
                                     queue_cap=queue_cap,
                                     job_ttl=job_ttl, max_jobs=max_jobs,
                                     local_engines=local_engines,
                                     steal_delay=steal_delay,
                                     engine_timeout=engine_timeout)
        await service.start(host=host, port=port)
        gateway = None
        if http_port is not None:
            from repro.service.http import HttpGateway

            gateway = HttpGateway(service, api_keys=api_keys)
            gateway.start(host=host, port=http_port)
        if announce is not None:
            announce("serving on %s:%d (workers=%d, local engines=%d, "
                     "scheduler=%s, cache_dir=%s, auth=%s)"
                     % (service.address[0], service.address[1],
                        workers, local_engines, scheduler,
                        cache_dir or "none",
                        "token" if token else "none"))
            if gateway is not None:
                announce("http gateway on %s:%d (auth=%s)"
                         % (gateway.address[0], gateway.address[1],
                            "%d api key(s)" % len(api_keys)
                            if api_keys else "none"))
        try:
            await service.run_until_shutdown()
        except asyncio.CancelledError:
            await service.stop()
            raise
        finally:
            if gateway is not None:
                gateway.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        session.save_store()
        if announce is not None:
            announce("interrupted; store flushed")
    return session
