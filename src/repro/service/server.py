"""The asyncio exploration service: one warm store, many clients.

The server wraps a single long-lived
:class:`~repro.engine.session.Session` (usually opened with a
``cache_dir``) behind the line-JSON protocol of
:mod:`~repro.service.protocol`: clients submit batches of design
points, a fixed set of scheduler workers drains the shared
:class:`~repro.service.queue.JobQueue`, and every client streams its
job's results as they complete — so concurrent clients share one warm
cache instead of each paying a cold sweep.

Concurrency model (the single-writer rule):

* ``workers == 1`` (the default) evaluates points *in process* on one
  dedicated engine thread.  The parent session, its cache and its
  store are only ever touched from that thread, so the plain-dict
  engine needs no locks.
* ``workers > 1`` keeps a persistent ``multiprocessing`` pool whose
  processes each hold a session hydrated from the same ``cache_dir``
  (the plumbing ``Session.explore`` uses); dispatch threads block on
  the pool while the event loop stays responsive.  Workers never write
  shards — their stable-encoded store deltas travel back and are
  absorbed on the engine thread, which remains the store's only
  writer.

Durability: the engine thread rate-limits flushes through
:meth:`~repro.engine.store.CacheStore.maybe_flush` after every point
and forces a full flush whenever a job drains, so a crash loses at
most ``flush_interval`` seconds of cache growth and a streamed "done"
implies the job's entries are on disk.

Warm compiles: the engine session resolves applications through the
persistent program store (``cache_dir``), so a restarted service
recompiles nothing — hydrated programs are reused across every job the
session serves, pool workers hydrate theirs from the same store, and a
program a worker *did* compile travels back in its store delta for the
engine thread (the single writer) to persist.  ``ping`` reports the
``program_compiles`` / ``program_store_hits`` counters.

Failure containment: every point is evaluated through
``Session.evaluate_point_safe`` — an unknown app or infeasible point
yields a ``PointResult`` with ``error`` set for *that point only*; the
job, its siblings and the service keep going.

Operability (the ISSUE 4 hardening):

* ``token`` arms the shared-token handshake — unauthenticated
  connections are rejected (and dropped) before any job state exists,
  and :func:`serve` refuses to bind a non-loopback address without
  one.  The compare is constant-time (:func:`hmac.compare_digest`).
* ``queue_cap`` bounds the admitted-but-unfinished point count; an
  over-cap submit is rejected with a structured ``retry_after`` the
  client backs off on.
* ``scheduler`` picks the queue policy (``fifo``/``sjf``/``fair``,
  see :mod:`repro.service.queue`).
* ``job_ttl``/``max_jobs`` garbage-collect finished jobs, bounding a
  long-lived service's result-retention memory; GC runs on every
  request dispatch and job completion.
"""

import asyncio
import concurrent.futures
import hmac
import multiprocessing

from repro.engine.cache import CacheStats
from repro.engine.session import Session
from repro.io.serialize import point_result_to_dict
from repro.service import protocol
from repro.service.queue import (
    PENDING,
    RUNNING,
    JobQueue,
    QueueFullError,
    scheduler_class,
)
from repro.errors import ReproError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7421

#: Hosts a token-less server may bind (the mutually-trusting-local
#: contract); anything else requires ``token``.
LOOPBACK_HOSTS = ("127.0.0.1", "::1", "localhost")


def _pooled_point(point):
    """Evaluate one point inside a pool worker; error captured.

    Runs in a worker process initialised by
    :func:`repro.engine.session._worker_init`; reuses the chunk
    plumbing with a one-point chunk, so the result ships with the
    worker's hit/miss delta and the stable-encoded store delta for the
    parent (the single writer) to absorb.
    """
    from repro.engine import session as session_module

    _, results, stats_delta, store_delta = \
        session_module._worker_point_chunk((0, [point]))
    return results[0], stats_delta, store_delta


class ExplorationService:
    """One service instance: session + queue + scheduler + protocol."""

    def __init__(self, session, workers=1, flush_interval=2.0,
                 token=None, scheduler="fifo", queue_cap=None,
                 retry_after=0.25, job_ttl=None, max_jobs=None):
        scheduler_class(scheduler)  # fail at construction, not start()
        self.session = session
        self.workers = max(1, int(workers))
        self.flush_interval = float(flush_interval)
        self.token = token
        self.scheduler = scheduler
        self.queue_cap = queue_cap
        self.retry_after = float(retry_after)
        self.job_ttl = job_ttl
        self.max_jobs = max_jobs
        self.queue = None        # created in start() (needs the loop)
        self.address = None
        self._server = None
        self._stopping = None
        self._tasks = []
        self._connections = set()
        self._engine = None      # the single session/store thread
        self._dispatch = None    # threads blocking on the mp pool
        self._pool = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host=DEFAULT_HOST, port=0):
        """Bind, spin up the scheduler, return self (address set)."""
        self.queue = JobQueue(scheduler=self.scheduler,
                              max_pending=self.queue_cap,
                              retry_after=self.retry_after,
                              job_ttl=self.job_ttl,
                              max_finished=self.max_jobs)
        self._stopping = asyncio.Event()
        self._engine = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="lycos-engine")
        if self.workers > 1:
            cache_dir = None if self.session.store is None \
                else self.session.store.root
            # Hand workers everything already computed here, then keep
            # the pool for the service's whole life: its per-process
            # caches stay warm across jobs and clients.
            await self._on_engine(self.session.save_store)
            from repro.engine.session import _worker_init

            self._pool = multiprocessing.Pool(
                processes=self.workers, initializer=_worker_init,
                initargs=(self.session.library, cache_dir))
            self._dispatch = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="lycos-dispatch")
        self._tasks = [asyncio.ensure_future(self._worker_loop())
                       for _ in range(self.workers)]
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=protocol.MAX_LINE_BYTES)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    async def run_until_shutdown(self):
        """Serve until a shutdown request (or cancellation) arrives."""
        await self._stopping.wait()
        await self.stop()

    async def stop(self):
        """Tear the service down; the store gets one final flush."""
        if self._server is not None:
            self._server.close()
            # Cancel the live connection handlers before waiting: an
            # idle client parked in readline() would otherwise hold
            # wait_closed() open forever on Python >= 3.12, where it
            # waits for every handler, not just the listening socket.
            for connection in list(self._connections):
                connection.cancel()
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        # Drain before destroy: a terminated pool never answers its
        # outstanding ``apply`` calls, which would strand the dispatch
        # threads (and with them, interpreter exit) forever.  close()
        # lets in-flight evaluations finish, the dispatch threads
        # return, and only then does the pool go away — so a shutdown
        # during a busy job waits out the points in flight instead of
        # hanging.
        if self._pool is not None:
            self._pool.close()
        if self._dispatch is not None:
            self._dispatch.shutdown(wait=True)
            self._dispatch = None
        if self._pool is not None:
            self._pool.join()
            self._pool = None
        if self._engine is not None:
            await self._on_engine(self.session.save_store)
            self._engine.shutdown(wait=True)
            self._engine = None

    def _on_engine(self, callable_, *args):
        """Run session/store work on the single engine thread."""
        return asyncio.get_running_loop().run_in_executor(
            self._engine, callable_, *args)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    async def _worker_loop(self):
        while True:
            job, index = await self.queue.next_unit()
            try:
                await self._run_unit(job, index)
            except asyncio.CancelledError:
                raise
            except Exception:
                # A unit must never kill its scheduler slot; the point
                # is recorded as failed and the loop keeps draining.
                pass

    async def _run_unit(self, job, index):
        if job.states[index] != PENDING:
            return  # cancelled while queued
        job.states[index] = RUNNING
        point = job.points[index]
        store_delta = None
        try:
            if self._pool is None:
                result, stats_delta = await self._on_engine(
                    self._evaluate_local, point)
            else:
                loop = asyncio.get_running_loop()
                result, stats_delta, store_delta = \
                    await loop.run_in_executor(
                        self._dispatch, self._pool.apply,
                        _pooled_point, (point,))
        except Exception as exc:
            from repro.engine.design_point import failed_point_result

            result, stats_delta = failed_point_result(point, exc), {}
        # Bookkeeping failures (a full disk mid-flush, say) must not
        # discard a result that was already computed: the per-point
        # error field reports *design-point* failures, and the store
        # retries unchanged entries on its next flush anyway.
        try:
            await self._on_engine(self._absorb_and_flush,
                                  self._pool is not None, stats_delta,
                                  store_delta)
        except Exception:
            pass
        await job.record(index, result, stats_delta)
        if job.finished:
            self.queue.collect_garbage()
            # A streamed "done" implies durability: force the flush the
            # per-point path only performs on its time budget.
            await self._on_engine(self.session.save_store)

    def _evaluate_local(self, point):
        """One in-process evaluation; runs on the engine thread."""
        stats = self.session.stats
        before = stats.snapshot()
        result = self.session.evaluate_point_safe(point)
        return result, CacheStats.delta(before, stats.snapshot())

    def _absorb_and_flush(self, pooled, stats_delta, store_delta):
        """Absorb a pooled point's deltas, then flush on the time
        budget; runs on the engine thread.  In-process points only
        flush (their stats landed in the parent during evaluation)."""
        if pooled:
            self.session.stats.merge(stats_delta)
            if self.session.store is not None and store_delta:
                self.session.store.absorb_delta(store_delta)
        if self.session.store is not None:
            self.session.store.maybe_flush(self.session.cache,
                                           self.flush_interval)

    # ------------------------------------------------------------------
    # Protocol handling
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        authenticated = self.token is None
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # Over-long line: framing is gone, drop the link.
                    writer.write(protocol.encode(protocol.error(
                        "request line exceeds %d bytes"
                        % protocol.MAX_LINE_BYTES)))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = protocol.decode_request(line)
                    if request["op"] == "auth":
                        granted = self._check_token(request)
                        writer.write(protocol.encode(
                            protocol.ok(authenticated=True) if granted
                            else protocol.error("invalid token")))
                        await writer.drain()
                        if not granted:
                            break  # no guessing on one connection
                        authenticated = True
                        continue
                    if not authenticated:
                        # Rejected (and the link dropped) before any
                        # job state exists — the auth contract.
                        writer.write(protocol.encode(protocol.error(
                            "authentication required: send "
                            "{\"op\": \"auth\", \"token\": ...} first",
                            auth_required=True)))
                        await writer.drain()
                        break
                    await self._dispatch_request(request, writer)
                except (protocol.ProtocolError, ReproError) as exc:
                    writer.write(protocol.encode(protocol.error(exc)))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-reply; nothing to clean up
        finally:
            self._connections.discard(task)
            writer.close()

    def _check_token(self, request):
        """Constant-time shared-token check of one auth request."""
        supplied = protocol.auth_token(request)
        if self.token is None:
            return True  # open server: the handshake is a no-op
        return hmac.compare_digest(supplied.encode("utf-8"),
                                   self.token.encode("utf-8"))

    async def _dispatch_request(self, request, writer):
        op = request["op"]
        # Retention is enforced at every touch point, so an idle-then
        # -polled service trims itself before answering.
        self.queue.collect_garbage()
        if op == "ping":
            # Program-store economy: compiles the engine (or its pool
            # workers — their deltas merge into the session stats)
            # actually paid vs compiles the persistent store absorbed.
            # A long-lived warm service shows hits climbing while
            # compiles stay flat across jobs and restarts.
            stats = self.session.stats
            writer.write(protocol.encode(protocol.ok(
                protocol=protocol.PROTOCOL_VERSION,
                workers=self.workers, jobs=len(self.queue.jobs),
                scheduler=self.queue.scheduler.name,
                depth=self.queue.depth,
                queue_cap=self.queue.max_pending,
                program_compiles=stats.miss_count("compile"),
                program_store_hits=stats.hit_count("compile"))))
        elif op == "submit":
            points = protocol.submission_points(request)
            client, weight = protocol.submission_meta(request)
            try:
                job = self.queue.submit(points, client=client,
                                        weight=weight)
            except QueueFullError as exc:
                writer.write(protocol.encode(protocol.error(
                    exc, retry_after=exc.retry_after)))
            else:
                writer.write(protocol.encode(protocol.ok(
                    job=job.id, total=len(job.points))))
        elif op == "status":
            job = self.queue.get(protocol.job_name(request))
            writer.write(protocol.encode(protocol.ok(
                status=self.queue.status(job))))
        elif op == "results":
            job = self.queue.get(protocol.job_name(request))
            await self._stream_results(job, writer)
            return
        elif op == "cancel":
            cancelled = await self.queue.cancel(
                protocol.job_name(request))
            job = self.queue.get(request["job"])
            writer.write(protocol.encode(protocol.ok(
                cancelled=cancelled, status=self.queue.status(job))))
        elif op == "jobs":
            writer.write(protocol.encode(protocol.ok(
                jobs=[self.queue.status(self.queue.jobs[name])
                      for name in sorted(self.queue.jobs)])))
        elif op == "shutdown":
            writer.write(protocol.encode(protocol.ok(stopping=True)))
            await writer.drain()
            self._stopping.set()
            return
        await writer.drain()

    async def _stream_results(self, job, writer):
        """Replay finished points, then follow live until terminal.

        One line per terminal point, completion-ordered: ``index`` +
        either the serialised result or a ``cancelled`` marker; a final
        ``done`` line carries the job's closing status.
        """
        writer.write(protocol.encode(protocol.ok(
            job=job.id, total=len(job.points), streaming=True)))
        await writer.drain()
        sent = 0
        while True:
            async with job.condition:
                while len(job.order) <= sent and not job.finished:
                    await job.condition.wait()
                batch = list(job.order[sent:])
            for index in batch:
                result = job.results.get(index)
                if result is None:
                    line = protocol.ok(index=index, cancelled=True)
                else:
                    line = protocol.ok(
                        index=index, result=point_result_to_dict(result))
                writer.write(protocol.encode(line))
            sent += len(batch)
            await writer.drain()
            if job.finished and sent >= len(job.order):
                break
        # The durability barrier of the contract: once a client reads
        # "done", the job's store entries are on disk.  (The scheduler
        # also flushes on completion, but that flush may still be in
        # flight when the last result streams out; this one is cheap —
        # a no-op when the engine thread already got there.)
        await self._on_engine(self.session.save_store)
        writer.write(protocol.encode(protocol.ok(
            done=True, status=self.queue.status(job))))
        await writer.drain()


def serve(cache_dir=None, workers=1, host=DEFAULT_HOST,
          port=DEFAULT_PORT, library=None, flush_interval=2.0,
          announce=print, token=None, scheduler="fifo", queue_cap=None,
          job_ttl=None, max_jobs=None):
    """Blocking entry point: build the session, serve until shutdown.

    Runs until a ``shutdown`` request or ``KeyboardInterrupt``; either
    way the store gets a final flush, so everything the service
    computed stays warm for the next one.  Binding a non-loopback
    ``host`` requires ``token`` — an open service beyond localhost
    would hand the store (and the engine) to the whole network.
    """
    if token is None and host not in LOOPBACK_HOSTS:
        raise ReproError(
            "refusing to bind %s without a token: pass token= "
            "(--token/--token-file) to serve beyond loopback" % host)
    session = Session(library=library, cache_dir=cache_dir)

    async def _main():
        service = ExplorationService(session, workers=workers,
                                     flush_interval=flush_interval,
                                     token=token, scheduler=scheduler,
                                     queue_cap=queue_cap,
                                     job_ttl=job_ttl, max_jobs=max_jobs)
        await service.start(host=host, port=port)
        if announce is not None:
            announce("serving on %s:%d (workers=%d, scheduler=%s, "
                     "cache_dir=%s, auth=%s)"
                     % (service.address[0], service.address[1],
                        workers, scheduler, cache_dir or "none",
                        "token" if token else "none"))
        try:
            await service.run_until_shutdown()
        except asyncio.CancelledError:
            await service.stop()
            raise

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        session.save_store()
        if announce is not None:
            announce("interrupted; store flushed")
    return session
