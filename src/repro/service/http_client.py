"""Blocking client for the HTTP gateway (ISSUE 9).

:class:`HttpServiceClient` mirrors :class:`~repro.service.client.
ServiceClient`'s surface — ``ping`` / ``submit`` / ``status`` /
``results`` / ``collect`` / ``cancel`` — over the REST endpoints of
:mod:`~repro.service.http`, and *shares* (not copies) the TCP
client's retry/backoff contract: queue-full and quota 429s carry
``Retry-After``, which is retried with the one capped-exponential
jittered helper of :mod:`~repro.service.client`, rejection accounting
included.

What HTTP adds over the TCP stream is conditional polling: the client
remembers the strong ETag of every status / results document it has
seen and sends ``If-None-Match`` on the next fetch, so an unchanged
document costs a 304 with no body.  :attr:`conditional_hits` /
:attr:`conditional_misses` count how often polling paid the small
price — a patient poll loop against a slow job should be almost all
hits.  ``results`` streams through long-poll pages (``?after=N&wait=
S``) instead of holding one connection per client open, which is the
point of the gateway: wide fan-in with no per-client server state.

One TCP connection per request (``Connection: close``), like the line
client — there is no session state to multiplex, and it keeps the
threaded gateway's handler threads from idling on keep-alives.
"""

import http.client
import json
import urllib.parse

from repro.errors import ReproError
from repro.io.serialize import point_result_from_dict
from repro.service.client import (
    RetryingClientMixin,
    ServiceClient,
    ServiceError,
)

DEFAULT_URL = "http://127.0.0.1:8421"


class HttpServiceClient(RetryingClientMixin):
    """Client for one HTTP gateway.

    Attributes:
        url: The gateway base URL (``http://host:port``; an optional
            path prefix is honoured).
        api_key: Presented as ``Authorization: Bearer`` on every
            request; ``None`` for an open (key-less) gateway.  The
            scheduling identity (the TCP client's ``client_id``) is
            the *key's* client label, assigned server-side.
        timeout: Per-request socket timeout in seconds.
        poll_wait: Long-poll budget of one ``results`` page; the
            stream loops, so this only tunes server round-trips.
        retry_budget / retry_cap / retry_jitter / retry_seed: The
            shared retry/backoff contract — see
            :class:`~repro.service.client.ServiceClient`; 429
            rejections (queue cap or per-key quota) are retried and
            counted identically, via the same helper.
        conditional_hits / conditional_misses: How many conditional
            document fetches came back 304 (cached copy still good)
            versus paying a full body.
    """

    def __init__(self, url=DEFAULT_URL, api_key=None, timeout=120.0,
                 poll_wait=10.0, retry_budget=60.0, retry_cap=2.0,
                 retry_jitter=0.5, retry_seed=None):
        split = urllib.parse.urlsplit(url if "//" in url
                                      else "http://" + url)
        if split.scheme not in ("", "http"):
            raise ReproError("HttpServiceClient only speaks plain "
                             "http, got %r" % url)
        if not split.hostname:
            raise ReproError("gateway URL %r has no host" % url)
        self.url = url
        self.host = split.hostname
        self.port = split.port if split.port else 80
        self._prefix = split.path.rstrip("/")
        self.api_key = api_key
        self.timeout = timeout
        self.poll_wait = float(poll_wait)
        self._init_retry(retry_budget, retry_cap, retry_jitter,
                         retry_seed)
        self._etags = {}           # path -> (etag, document)
        self.conditional_hits = 0
        self.conditional_misses = 0
        self.last_status = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _headers(self):
        headers = {"Connection": "close",
                   "Accept": "application/json"}
        if self.api_key is not None:
            headers["Authorization"] = "Bearer %s" % self.api_key
        return headers

    def _request(self, method, path, document=None, conditional=False):
        """One round trip; returns the parsed JSON document.

        With ``conditional=True`` the path's remembered ETag rides as
        ``If-None-Match`` and a 304 answers from the local copy.
        Rejections raise :class:`ServiceError` carrying the server's
        structured error document (``retry_after`` included on a 429),
        exactly like the TCP client's typed errors.
        """
        headers = self._headers()
        body = None
        if document is not None:
            body = json.dumps(document).encode("utf-8")
            headers["Content-Type"] = "application/json"
        cached = self._etags.get(path) if conditional else None
        if cached is not None:
            headers["If-None-Match"] = cached[0]
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            try:
                connection.request(method, self._prefix + path,
                                   body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
            except http.client.HTTPException as exc:
                raise ServiceError(
                    "unreadable gateway response (%s: %s)"
                    % (type(exc).__name__, exc)) from exc
            if response.status == 304:
                self.conditional_hits += 1
                return self._refresh_cached(path, response, cached[1])
            parsed = self._parse(response, payload)
            if conditional:
                self.conditional_misses += 1
                etag = response.headers.get("ETag")
                if etag:
                    self._etags[path] = (etag, parsed)
                self._refresh_cached(path, response, parsed)
            return parsed
        finally:
            connection.close()

    @staticmethod
    def _refresh_cached(path, response, document):
        """Fold 304-refreshable headers into the (cached) document.

        ``expires_in`` is deliberately not part of the cached body (it
        is a GC countdown, not content); the gateway re-sends it as
        ``X-Expires-In`` on every response *including* 304s, so the
        status documents this client returns stay as fresh as the TCP
        client's.
        """
        expires = response.headers.get("X-Expires-In")
        if "status" in document or "state" in document:
            target = document if "state" in document \
                else document["status"]
            if isinstance(target, dict):
                target["expires_in"] = (None if expires is None
                                        else float(expires))
        return document

    def _parse(self, response, payload):
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServiceError("unreadable gateway response: %r"
                               % payload[:80]) from None
        if not isinstance(parsed, dict):
            raise ServiceError("gateway response must be a JSON "
                               "object")
        if response.status >= 400 or not parsed.get("ok", True):
            if response.status == 429 \
                    and "retry_after" not in parsed:
                # Belt and braces: the header is authoritative when
                # the body (some intermediary's, say) lacks the hint.
                retry_after = response.headers.get("Retry-After")
                try:
                    parsed["retry_after"] = float(retry_after)
                except (TypeError, ValueError):
                    pass
            raise ServiceError(
                parsed.get("error",
                           "gateway rejected the request (HTTP %d)"
                           % response.status), response=parsed)
        return parsed

    # ------------------------------------------------------------------
    # Operations (the ServiceClient surface)
    # ------------------------------------------------------------------
    def ping(self):
        """Gateway liveness + service/roster info."""
        return self._request("GET", "/v1/ping")

    def submit(self, points, weight=None, objective=None):
        """Submit a batch; returns the job id.

        Queue-full *and* per-key quota rejections (both 429 +
        ``Retry-After``) are retried under the shared backoff
        contract; :attr:`last_submit_rejections` counts every
        rejection absorbed, the final unretried one included.
        ``weight`` may lower this key's fair-scheduler weight for the
        job; the key's configured weight is the ceiling.
        """
        documents = [ServiceClient._coerce_point(point)
                     for point in points]
        request = {"points": documents}
        if weight is not None:
            request["weight"] = weight
        if objective is not None:
            request["objective"] = objective
        return self._submit_with_retries(
            lambda: self._request("POST", "/v1/jobs",
                                  document=request)["job"])

    def status(self, job_id):
        """The job's status document (conditionally fetched)."""
        return self._request("GET", "/v1/jobs/%s" % job_id,
                             conditional=True)

    def jobs(self):
        """Every job's status document (uncached: a volatile listing)."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def results(self, job_id, library=None):
        """Yield ``(index, PointResult)`` as points complete.

        Completion-ordered, like the TCP stream; a cancelled point
        yields ``(index, None)``.  Pages through long-polls instead of
        holding a connection, so abandoning the iterator costs the
        server nothing — there is no stream to tear down.  The closing
        status document lands in :attr:`last_status`.
        """
        self.last_status = None
        after = 0
        while True:
            page = self._request(
                "GET", "/v1/jobs/%s/results?after=%d&wait=%s"
                % (job_id, after, self.poll_wait))
            for entry in page.get("results", []):
                index = entry["index"]
                if entry.get("cancelled"):
                    yield index, None
                else:
                    yield index, point_result_from_dict(
                        entry["result"], library=library)
            after = page.get("next", after)
            if page.get("done"):
                self.last_status = page.get("status")
                return

    def collect(self, job_id, library=None):
        """Block until terminal; results in submission order.

        Same contract as the TCP client's ``collect``: one slot per
        submitted point, ``PointResult`` (``error`` possibly set) or
        ``None`` for a cancelled point.
        """
        status = self.status(job_id)
        slots = [None] * status["total"]
        for index, result in self.results(job_id, library=library):
            slots[index] = result
        return slots

    def results_document(self, job_id, library=None):
        """The full results document, conditionally fetched.

        The polling counterpart of ``collect``: re-fetching an
        unchanged (e.g. terminal) job costs a 304.  Returns the raw
        document; the per-point results inside are wire dicts.
        """
        return self._request("GET", "/v1/jobs/%s/results" % job_id,
                             conditional=True)

    def cancel(self, job_id):
        """Cancel the job's pending points; returns the final status."""
        response = self._request("DELETE", "/v1/jobs/%s" % job_id)
        return response["status"]

    # ------------------------------------------------------------------
    # HTML documents (reports + dashboard)
    # ------------------------------------------------------------------
    def _request_html(self, path):
        """One raw round trip for an HTML document; returns the text.

        A separate path from :meth:`_request` because the payload is
        not JSON — but errors still are: any non-200 answer is parsed
        as the gateway's structured error document and raised as
        :class:`ServiceError`, so auth and 404s behave identically to
        the JSON endpoints.
        """
        headers = self._headers()
        headers["Accept"] = "text/html"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            try:
                connection.request("GET", self._prefix + path,
                                   headers=headers)
                response = connection.getresponse()
                payload = response.read()
            except http.client.HTTPException as exc:
                raise ServiceError(
                    "unreadable gateway response (%s: %s)"
                    % (type(exc).__name__, exc)) from exc
            if response.status != 200:
                self._parse(response, payload)  # raises ServiceError
                raise ServiceError(
                    "gateway rejected the request (HTTP %d)"
                    % response.status)
            try:
                return payload.decode("utf-8")
            except UnicodeDecodeError:
                raise ServiceError("gateway sent an undecodable HTML "
                                   "document") from None
        finally:
            connection.close()

    def report(self, job_id):
        """The job's self-contained HTML report, as text."""
        return self._request_html("/v1/jobs/%s/report" % job_id)

    def dashboard(self):
        """The live service dashboard page, as text."""
        return self._request_html("/v1/dashboard")
