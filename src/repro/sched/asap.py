"""As-soon-as-possible scheduling (unconstrained resources)."""

from repro.sched.schedule import Schedule, latency_table


def asap_schedule(dfg, library=None, default_latency=1):
    """Compute the ASAP schedule of a DFG.

    Every operation starts at the earliest control step permitted by its
    data dependencies, assuming unlimited resources.  The resulting
    schedule length is the paper's optimistic state-count estimate ``N``
    for the Estimated Controller Area (section 4.2).
    """
    latencies = latency_table(dfg, library=library, default=default_latency)
    schedule = Schedule(dfg, latencies)
    for op in dfg.topological_order():
        earliest = 1
        for producer in dfg.predecessors(op):
            finish = schedule.finish(producer)
            if finish + 1 > earliest:
                earliest = finish + 1
        schedule.place(op, earliest)
    return schedule
