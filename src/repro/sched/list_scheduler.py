"""Resource-constrained list scheduling.

This produces the *final* hardware schedule of a BSB under a concrete
allocation: the schedule PACE uses to compute the hardware execution
time, and the one section 5.1 contrasts with the optimistic ASAP-based
controller estimate.

Priority function: smallest ALAP start first (least slack), breaking
ties by uid for determinism — the classic list-scheduling heuristic the
LYCOS estimators are described as using.
"""

from repro.errors import ResourceError, SchedulingError
from repro.sched.alap import alap_schedule
from repro.sched.schedule import Schedule, latency_table


def list_schedule(dfg, allocation, library, priority=None, latencies=None):
    """Schedule ``dfg`` under the unit counts of ``allocation``.

    Args:
        dfg: The data-flow graph to schedule.
        allocation: A mapping resource name -> instance count (an
            :class:`~repro.core.rmap.RMap` or plain dict).
        library: The resource library defining which resource executes
            each operation type and its latency.
        priority: Optional precomputed priority mapping
            uid -> (ALAP start, uid); the engine passes the one derived
            from its memoised ASAP/ALAP intervals so repeated schedules
            of the same DFG skip the ALAP run.
        latencies: Optional precomputed latency table (uid -> steps).

    Returns:
        A complete :class:`~repro.sched.schedule.Schedule`.

    Raises:
        SchedulingError: If some operation's designated resource has a
            zero instance count (the BSB cannot execute in hardware).
        ResourceError: If the library lacks a resource for some type.
    """
    if latencies is None:
        latencies = latency_table(dfg, library=library)
    schedule = Schedule(dfg, latencies)
    if not len(dfg):
        return schedule

    resource_of = {}
    for op in dfg.operations():
        if not library.supports(op.optype):
            raise ResourceError(
                "library %r has no resource for %s (operation %s)"
                % (library.name, op.optype, op))
        resource_of[op.uid] = library.resource_for(op.optype).name

    counts = {name: int(allocation.get(name, 0))
              for name in set(resource_of.values())}
    for op in dfg.operations():
        if counts[resource_of[op.uid]] <= 0:
            raise SchedulingError(
                "allocation has no %r instance; DFG %r cannot run in "
                "hardware" % (resource_of[op.uid], dfg.name))

    if priority is None:
        alap = alap_schedule(dfg, library=library)
        priority = {op.uid: (alap.start(op), op.uid)
                    for op in dfg.operations()}

    remaining_preds = {op.uid: len(dfg.predecessors(op))
                       for op in dfg.operations()}
    ready = sorted((op for op in dfg.operations()
                    if remaining_preds[op.uid] == 0),
                   key=lambda op: priority[op.uid])
    # busy_until[name] holds the finish steps of in-flight ops per unit pool
    in_flight = []  # (finish_step, op)
    placed = 0
    step = 1
    free = dict(counts)
    max_steps_guard = 4 * (sum(latencies.values()) + len(dfg) + 1)

    while placed < len(dfg):
        if step > max_steps_guard:
            raise SchedulingError(
                "list scheduler failed to converge on DFG %r" % dfg.name)
        # Retire operations finishing before this step; release units and
        # mark successors ready.
        still_flying = []
        for finish, op in in_flight:
            if finish < step:
                free[resource_of[op.uid]] += 1
                for successor in dfg.successors(op):
                    remaining_preds[successor.uid] -= 1
                    if remaining_preds[successor.uid] == 0:
                        ready.append(successor)
            else:
                still_flying.append((finish, op))
        in_flight = still_flying
        ready.sort(key=lambda op: priority[op.uid])

        # Issue as many ready operations as free units allow.
        deferred = []
        for op in ready:
            name = resource_of[op.uid]
            if free[name] > 0:
                free[name] -= 1
                schedule.place(op, step)
                in_flight.append((step + latencies[op.uid] - 1, op))
                placed += 1
            else:
                deferred.append(op)
        ready = deferred
        step += 1

    schedule.verify_dependencies()
    return schedule


def hardware_steps(dfg, allocation, library):
    """Schedule length (control steps) of ``dfg`` under ``allocation``."""
    return list_schedule(dfg, allocation, library).length
