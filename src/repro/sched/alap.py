"""As-late-as-possible scheduling against a deadline."""

from repro.errors import SchedulingError
from repro.sched.asap import asap_schedule
from repro.sched.schedule import Schedule, latency_table


def alap_schedule(dfg, library=None, default_latency=1, deadline=None):
    """Compute the ALAP schedule of a DFG.

    Every operation starts at the latest control step that still lets all
    its transitive consumers finish by ``deadline``.  When ``deadline``
    is omitted, the ASAP schedule length is used — the convention under
    which mobility is ``ALAP - ASAP + 1`` (Definition 2).
    """
    latencies = latency_table(dfg, library=library, default=default_latency)
    if deadline is None:
        deadline = asap_schedule(dfg, library=library,
                                 default_latency=default_latency).length
    if len(dfg) and deadline < 1:
        raise SchedulingError("deadline must be >= 1, got %r" % (deadline,))

    schedule = Schedule(dfg, latencies)
    for op in reversed(dfg.topological_order()):
        latest_finish = deadline
        for consumer in dfg.successors(op):
            consumer_start = schedule.start(consumer)
            if consumer_start - 1 < latest_finish:
                latest_finish = consumer_start - 1
        start = latest_finish - latencies[op.uid] + 1
        if start < 1:
            raise SchedulingError(
                "deadline %d is infeasible for DFG %r: operation %s would "
                "need to start at %d" % (deadline, dfg.name, op, start))
        schedule.place(op, start)
    return schedule
