"""Mobility and ASAP–ALAP interval overlap (Definition 2 ingredients).

The paper's Figure 5 example: an operation with ASAP start t=1 and ALAP
start t=5 has mobility M(i) = 5 - 1 + 1 = 5; two operations whose start
intervals share three control steps have Ovl(i, j) = 3.
"""

from repro.sched.alap import alap_schedule
from repro.sched.asap import asap_schedule


def asap_alap_intervals(dfg, library=None, default_latency=1,
                        cache=None, cache_key=None):
    """Per-operation (asap_start, alap_start) pairs.

    Returns a mapping uid -> (asap, alap) where both bounds refer to the
    operation's *start* step, the interval over which the final schedule
    may place the operation.

    ``cache``/``cache_key`` memoise the result in a caller-provided
    mapping: a DFG carries no identity token of its own, so the caller
    supplies the stable key (BSB callers use their uid plus the library
    identity).  Both ASAP and ALAP runs are skipped on a hit — the
    engine re-prioritises allocations many times over the same BSBs.
    """
    if cache is not None and cache_key is not None:
        intervals = cache.get(cache_key)
        if intervals is not None:
            return intervals
    asap = asap_schedule(dfg, library=library, default_latency=default_latency)
    alap = alap_schedule(dfg, library=library, default_latency=default_latency)
    intervals = {op.uid: (asap.start(op), alap.start(op))
                 for op in dfg.operations()}
    if cache is not None and cache_key is not None:
        cache[cache_key] = intervals
    return intervals


def mobility(interval):
    """Mobility of an operation: ALAP - ASAP + 1 (always >= 1)."""
    asap_start, alap_start = interval
    return alap_start - asap_start + 1


def interval_overlap(interval_a, interval_b):
    """Number of control steps shared by two start intervals.

    ``Ovl(i, j)`` in Definition 2; zero when the intervals are disjoint.
    """
    low = max(interval_a[0], interval_b[0])
    high = min(interval_a[1], interval_b[1])
    return max(0, high - low + 1)
