"""List scheduling over heterogeneous unit pools.

The core list scheduler assumes one designated resource per operation
type.  The module-selection extension (the paper's first "future work"
item) allocates *mixes* — e.g. one fast adder plus two slow ones — so
an operation may execute on any allocated unit whose resource declares
its type, with per-unit latencies.

Dispatch rule: ready operations are prioritised by ALAP start (least
slack first); each operation takes the *fastest* free capable unit.
This greedy rule is the natural extension of the homogeneous scheduler
and collapses to it when every type has a single capable resource.
"""

from repro.errors import ResourceError, SchedulingError
from repro.sched.alap import alap_schedule
from repro.sched.schedule import Schedule


def _capable_resources(optype, allocation, library):
    """Allocated resources able to execute ``optype``, fastest first."""
    capable = []
    for name in sorted(allocation):
        if allocation[name] < 1:
            continue
        resource = library.get(name)
        if resource.executes(optype):
            capable.append(resource)
    capable.sort(key=lambda resource: (resource.latency, resource.name))
    return capable


def hetero_list_schedule(dfg, allocation, library):
    """Schedule ``dfg`` on a heterogeneous allocation.

    Args:
        dfg: The data-flow graph.
        allocation: Mapping resource name -> instance count; several
            resources may cover the same operation type.
        library: Resource library resolving names and capabilities.

    Returns:
        A complete :class:`~repro.sched.schedule.Schedule` whose
        latencies reflect the unit each operation actually ran on.
    """
    allocation = {name: int(count) for name, count in
                  dict(allocation).items() if int(count) > 0}
    for name in allocation:
        library.get(name)  # raises ResourceError for unknown names

    candidates = {}
    for op in dfg.operations():
        capable = _capable_resources(op.optype, allocation, library)
        if not capable:
            if not library.supports(op.optype):
                raise ResourceError(
                    "library %r has no resource for %s"
                    % (library.name, op.optype))
            raise SchedulingError(
                "allocation has no unit executing %s; DFG %r cannot "
                "run in hardware" % (op.optype, dfg.name))
        candidates[op.uid] = capable

    # Optimistic latencies (fastest capable unit) for the ALAP priority.
    optimistic = {op.uid: candidates[op.uid][0].latency
                  for op in dfg.operations()}
    schedule = Schedule(dfg, dict(optimistic))
    if not len(dfg):
        return schedule

    alap = alap_schedule(dfg, default_latency=1)
    priority = {op.uid: (alap.start(op), op.uid) for op in dfg.operations()}

    remaining_preds = {op.uid: len(dfg.predecessors(op))
                       for op in dfg.operations()}
    ready = sorted((op for op in dfg.operations()
                    if remaining_preds[op.uid] == 0),
                   key=lambda op: priority[op.uid])
    free = dict(allocation)
    in_flight = []  # (finish_step, resource_name, op)
    placed = 0
    step = 1
    guard = 4 * (sum(resource.latency for pool in candidates.values()
                     for resource in pool) + len(dfg) + 1)

    while placed < len(dfg):
        if step > guard:
            raise SchedulingError(
                "heterogeneous scheduler failed to converge on DFG %r"
                % dfg.name)
        still_flying = []
        for finish, resource_name, op in in_flight:
            if finish < step:
                free[resource_name] += 1
                for successor in dfg.successors(op):
                    remaining_preds[successor.uid] -= 1
                    if remaining_preds[successor.uid] == 0:
                        ready.append(successor)
            else:
                still_flying.append((finish, resource_name, op))
        in_flight = still_flying
        ready.sort(key=lambda op: priority[op.uid])

        deferred = []
        for op in ready:
            chosen = None
            for resource in candidates[op.uid]:
                if free[resource.name] > 0:
                    chosen = resource
                    break
            if chosen is None:
                deferred.append(op)
                continue
            free[chosen.name] -= 1
            schedule.set_latency(op, chosen.latency)
            schedule.place(op, step)
            in_flight.append((step + chosen.latency - 1,
                              chosen.name, op))
            placed += 1
        ready = deferred
        step += 1

    schedule.verify_dependencies()
    return schedule
