"""Schedule container shared by ASAP, ALAP and list scheduling."""

from repro.errors import SchedulingError


class Schedule:
    """A mapping from operations to control-step intervals.

    Control steps are 1-based (the paper's Figure 5 labels them
    ``t=1 .. t=5``).  An operation scheduled at start ``s`` with latency
    ``l`` occupies steps ``s .. s+l-1`` inclusive.
    """

    def __init__(self, dfg, latencies):
        """``latencies`` maps operation uid -> latency in control steps."""
        self.dfg = dfg
        self._latencies = dict(latencies)
        self._starts = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def place(self, operation, start):
        """Schedule ``operation`` to begin at control step ``start``."""
        if start < 1:
            raise SchedulingError("control steps are 1-based; got start=%r"
                                  % (start,))
        if operation.uid not in self._latencies:
            raise SchedulingError("operation %s has no latency entry"
                                  % operation)
        self._starts[operation.uid] = int(start)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def set_latency(self, operation, latency):
        """Override an operation's latency (heterogeneous unit binding).

        Used by the module-selection scheduler, where the latency is
        only known once a concrete unit is chosen for the operation.
        """
        if latency < 1:
            raise SchedulingError("latency must be >= 1, got %r"
                                  % (latency,))
        self._latencies[operation.uid] = int(latency)

    def start(self, operation):
        """First control step occupied by ``operation``."""
        try:
            return self._starts[operation.uid]
        except KeyError:
            raise SchedulingError("operation %s is not scheduled"
                                  % operation) from None

    def finish(self, operation):
        """Last control step occupied by ``operation`` (inclusive)."""
        return self.start(operation) + self.latency(operation) - 1

    def latency(self, operation):
        """Latency in control steps of ``operation``."""
        return self._latencies[operation.uid]

    def is_complete(self):
        """True once every DFG operation has been placed."""
        return len(self._starts) == len(self.dfg)

    @property
    def length(self):
        """Schedule length: the last occupied control step (0 if empty)."""
        if not self._starts:
            return 0
        return max(self._starts[uid] + self._latencies[uid] - 1
                   for uid in self._starts)

    def operations_starting_at(self, step):
        """Operations whose start step equals ``step``."""
        return [self.dfg.operation(uid)
                for uid, start in sorted(self._starts.items())
                if start == step]

    def operations_active_at(self, step):
        """Operations occupying control step ``step``."""
        active = []
        for uid, start in sorted(self._starts.items()):
            if start <= step <= start + self._latencies[uid] - 1:
                active.append(self.dfg.operation(uid))
        return active

    def max_type_parallelism(self):
        """Per op type, the max number of same-type ops sharing a step.

        This is the quantity section 4.3 derives allocation restrictions
        from: "the ASAP-schedule can be used to give an estimate of the
        maximum number of operations of a specific type that can be
        executed in parallel".
        """
        peaks = {}
        for step in range(1, self.length + 1):
            counts = {}
            for op in self.operations_active_at(step):
                counts[op.optype] = counts.get(op.optype, 0) + 1
            for optype, count in counts.items():
                if count > peaks.get(optype, 0):
                    peaks[optype] = count
        return peaks

    def verify_dependencies(self):
        """Raise :class:`SchedulingError` if a consumer starts too early."""
        for op in self.dfg.operations():
            for successor in self.dfg.successors(op):
                if self.start(successor) < self.finish(op) + 1:
                    raise SchedulingError(
                        "dependency violated: %s finishes at %d but %s "
                        "starts at %d" % (op, self.finish(op),
                                          successor, self.start(successor)))

    def as_dict(self):
        """Mapping uid -> (start, finish) for reporting."""
        return {uid: (start, start + self._latencies[uid] - 1)
                for uid, start in self._starts.items()}

    def __repr__(self):
        return "Schedule(dfg=%r, length=%d, placed=%d/%d)" % (
            self.dfg.name, self.length, len(self._starts), len(self.dfg))


def latency_table(dfg, library=None, default=1):
    """Build a uid -> latency mapping for a DFG.

    With a :class:`~repro.hwlib.library.ResourceLibrary`, each operation
    gets the latency of its designated resource; without one, every
    operation takes ``default`` control steps (the unit-latency model the
    paper's Figure 5 example uses).
    """
    latencies = {}
    for op in dfg.operations():
        if library is not None and library.supports(op.optype):
            latencies[op.uid] = library.resource_for(op.optype).latency
        else:
            latencies[op.uid] = default
    return latencies
