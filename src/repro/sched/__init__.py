"""Scheduling substrate: ASAP, ALAP, mobility and list scheduling.

The allocation algorithm needs ASAP/ALAP schedules for three purposes:

* the FURO urgency metric is built on ASAP–ALAP interval overlaps and
  mobilities (Definition 2);
* the Estimated Controller Area uses the ASAP schedule length as the
  state-count estimate (section 4.2);
* the allocation restrictions cap units at the ASAP schedule's maximum
  per-type parallelism (section 4.3).

The resource-constrained list scheduler provides the *final* hardware
schedule used by the PACE partitioner to compute the hardware execution
time of a BSB under a concrete allocation.
"""

from repro.sched.schedule import Schedule
from repro.sched.asap import asap_schedule
from repro.sched.alap import alap_schedule
from repro.sched.mobility import (
    mobility,
    interval_overlap,
    asap_alap_intervals,
)
from repro.sched.list_scheduler import list_schedule

__all__ = [
    "Schedule",
    "asap_schedule",
    "alap_schedule",
    "mobility",
    "interval_overlap",
    "asap_alap_intervals",
    "list_schedule",
]
