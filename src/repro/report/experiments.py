"""Drivers for every experiment in the paper's evaluation section.

Each function regenerates one table or figure; the benchmarks and the
CLI are thin wrappers around these.  See DESIGN.md's experiment index
(T1, F3, F5, S51, T1n, C44) and EXPERIMENTS.md for measured results.
"""

from dataclasses import dataclass

from repro.apps.registry import application_names, application_spec
from repro.core.eca import actual_controller_area, estimated_controller_area
from repro.core.exhaustive import space_size
from repro.core.rmap import RMap
from repro.engine.session import Session
from repro.errors import ReproError
from repro.partition.model import TargetArchitecture
from repro.report.tables import render_table


def _resolve_session(session, library):
    """A session honouring ``library``; loud when the two conflict.

    The experiment drivers predate the engine and keep their
    ``library=`` parameter; silently preferring a passed session's
    library would compute reproduction numbers against the wrong
    resource set.
    """
    if session is None:
        return Session(library=library)
    if library is not None and library is not session.library:
        raise ReproError("pass either session= or library=, not both: "
                         "the session is bound to its own library")
    return session


# ----------------------------------------------------------------------
# T1: Table 1 — algorithm vs best allocation on the four benchmarks
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    """One measured row of Table 1 (plus the paper's reference values).

    Attributes mirror the paper's columns: ``lines``, ``su`` /
    ``su_best`` (speed-up of the algorithm's vs the best allocation),
    ``size_percent`` (data-path share of the used hardware area),
    ``hw_percent`` (share of the application moved to hardware) and
    ``cpu_seconds`` (allocation algorithm runtime).  ``su_iterated`` is
    the speed-up after the reduce-only design iteration (the paper's
    man/eigen fix); ``sampled`` marks a sampled rather than exhaustive
    best (the paper's eigen footnote).  ``search`` records the search
    that actually ran ("brute", "pruned" or "sampled"), and the two
    pruning counters are non-zero only for branch-and-bound rows.
    ``objective`` names the tournament the best was ranked under;
    ``best_energy`` is the winning evaluation's modelled energy, and
    ``front`` carries the exhaustive search's
    :class:`~repro.core.objective.ParetoFront` for the ``pareto``
    objective (``None`` otherwise).
    """

    name: str
    lines: int
    su: float
    su_best: float
    su_iterated: float
    size_percent: float
    hw_percent: float
    cpu_seconds: float
    space: int
    evaluations: int
    sampled: bool
    allocation: RMap
    best_allocation: RMap
    paper_su: float = 0.0
    paper_su_best: float = 0.0
    search: str = "brute"
    subtrees_pruned: int = 0
    bound_evaluations: int = 0
    objective: str = "speedup"
    best_energy: float = 0.0
    front: object = None


def table1_row(name, library=None, area_quanta=150, best_area_quanta=120,
               max_evaluations=None, program=None, session=None,
               workers=1, search="brute", objective="speedup"):
    """Measure one Table 1 row for the named benchmark.

    All stages run through one engine
    :class:`~repro.engine.session.Session` (a private one when none is
    passed), so the evaluation, the design iteration and the exhaustive
    search share schedules, cost arrays and PACE sequence tables.
    ``workers`` > 1 fans the exhaustive search out over processes (the
    row is bit-identical either way); ``search="pruned"`` runs the
    branch-and-bound exhaustive search (also bit-identical, usually far
    fewer evaluations); a session opened with a ``cache_dir`` makes the
    whole row restart-warm.  ``objective`` ranks the exhaustive best
    (and the iteration's accepted steps) — the default reproduces the
    paper's speed-up tournament byte-for-byte.
    """
    from repro.core.objective import as_objective

    objective = as_objective(objective)
    session = _resolve_session(session, library)
    library = session.library
    spec = application_spec(name)
    program = program or session.program(name)
    architecture = TargetArchitecture(library=library,
                                      total_area=spec.total_area)

    result = session.allocate(program.bsbs, spec.total_area)
    cpu_seconds = result.runtime_seconds

    evaluation = session.evaluate(program.bsbs, result.allocation,
                                  architecture, area_quanta=area_quanta)
    iterated = session.iterate(program.bsbs, result.allocation,
                               architecture, area_quanta=area_quanta,
                               objective=objective)
    budget = (spec.max_evaluations if max_evaluations is None
              else max_evaluations)
    best = session.exhaustive(program.bsbs, architecture,
                              max_evaluations=budget,
                              area_quanta=best_area_quanta,
                              workers=workers, search=search,
                              objective=objective)
    # The design-iteration endpoint is also a visited allocation; the
    # "best" reported is the better of the two (the paper's eigen best
    # likewise came from designer experiments, not pure enumeration).
    # ``improves`` compares the objective's primary axis — for the
    # default objective that is the historical pure speed-up merge.
    best_eval = best.best_evaluation
    best_allocation = best.best_allocation
    if objective.improves(iterated.final_evaluation, best_eval, library):
        best_eval = iterated.final_evaluation
        best_allocation = iterated.final_allocation
    best_su = best_eval.speedup

    return Table1Row(
        name=name,
        lines=program.source_lines(),
        su=evaluation.speedup,
        su_best=best_su,
        su_iterated=iterated.final_evaluation.speedup,
        size_percent=100.0 * evaluation.datapath_fraction,
        hw_percent=100.0 * evaluation.partition.hw_fraction,
        cpu_seconds=cpu_seconds,
        space=space_size(program.bsbs, library),
        evaluations=best.evaluations,
        sampled=best.sampled,
        allocation=result.allocation,
        best_allocation=best_allocation,
        paper_su=spec.paper_su,
        paper_su_best=spec.paper_su_best,
        search=best.search,
        subtrees_pruned=best.subtrees_pruned,
        bound_evaluations=best.bound_evaluations,
        objective=best.objective,
        best_energy=best_eval.energy,
        front=best.front,
    )


def table1_rows(library=None, names=None, max_evaluations=None,
                session=None, workers=1, cache_dir=None, search="brute",
                objective="speedup"):
    """Measure all Table 1 rows (expensive: runs the exhaustive search).

    One session carries across the rows, so shared machinery (compiled
    programs, restriction analyses) is reused.  ``cache_dir`` (only
    honoured when no session is passed) opens that session over a
    persistent store, so a rerun replays the expensive stages from
    disk; ``workers`` parallelises each row's exhaustive search,
    ``search`` selects its mode ("brute" or "pruned" — same winner)
    and ``objective`` picks the ranking tournament.
    """
    names = list(names or application_names())
    if session is None and cache_dir is not None:
        session = Session(library=library, cache_dir=cache_dir)
    session = _resolve_session(session, library)
    rows = [table1_row(name, session=session, workers=workers,
                       max_evaluations=max_evaluations, search=search,
                       objective=objective)
            for name in names]
    session.save_store()
    return rows


def render_table1(rows):
    """Render measured rows next to the paper's reported values."""
    headers = ["Example", "Lines", "SU", "SU(best)", "SU(iter)", "Size",
               "HW", "CPU s", "Space", "Paper SU/SU(best)"]
    body = []
    for row in rows:
        body.append([
            row.name,
            row.lines,
            "%.0f%%" % row.su,
            "%.0f%%%s" % (row.su_best, "~" if row.sampled else ""),
            "%.0f%%" % row.su_iterated,
            "%.0f%%" % row.size_percent,
            "%.0f%%" % row.hw_percent,
            "%.2f" % row.cpu_seconds,
            row.space,
            "%.0f%%/%.0f%%" % (row.paper_su, row.paper_su_best),
        ])
    return render_table(headers, body,
                        title="Table 1 — allocation quality "
                              "(~ marks a sampled best)")


# ----------------------------------------------------------------------
# F3: Figure 3 — the data-path size vs controller room trade-off
# ----------------------------------------------------------------------
def _fill_to_budget(allocation, library, budget):
    """Grow an allocation round-robin until the budget is exhausted.

    Models the Figure 3 designer who fixes the data-path *size* up
    front: whatever the allocator left unused is filled with additional
    instances of the already-chosen unit types (cheapest first), eating
    into the area that would otherwise hold controllers.
    """
    remaining = budget - allocation.area(library)
    names = sorted(allocation.names(), key=library.area_of)
    changed = True
    while changed and names:
        changed = False
        for resource_name in names:
            if library.area_of(resource_name) <= remaining:
                allocation = allocation.incremented(resource_name)
                remaining -= library.area_of(resource_name)
                changed = True
    return allocation


def fig3_sweep(name="hal", fractions=None, library=None, area_quanta=150,
               fill=True, session=None):
    """Speed-up as a function of the data-path share of the ASIC.

    For each target fraction the allocation algorithm runs with the
    data-path capped at ``fraction * total_area``; with ``fill`` the
    remaining data-path budget is then force-consumed (the designer has
    committed that silicon), so only ``(1 - fraction) * total_area`` is
    left for controllers.  Figure 3's claim is that both extremes lose:
    a tiny data-path gives many small speed-ups, a huge one leaves no
    controller room for the BSBs that would use it.

    The sweep shares one engine session across fractions: every budget
    re-examines the same BSBs, so urgencies, schedules and cost arrays
    carry over from point to point.
    """
    session = _resolve_session(session, library)
    library = session.library
    spec = application_spec(name)
    program = session.program(name)
    architecture = TargetArchitecture(library=library,
                                      total_area=spec.total_area)
    fractions = list(fractions or
                     [0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                      0.7, 0.8, 0.9, 0.95, 0.98])
    points = []
    for fraction in fractions:
        budget = fraction * spec.total_area
        result = session.allocate(program.bsbs, budget)
        allocation = result.allocation
        if fill:
            allocation = _fill_to_budget(allocation, library, budget)
        evaluation = session.evaluate(program.bsbs, allocation,
                                      architecture,
                                      area_quanta=area_quanta)
        points.append({
            "fraction": fraction,
            "datapath_area": evaluation.datapath_area,
            "speedup": evaluation.speedup,
            "hw_bsbs": len(evaluation.partition.hw_names),
            "controller_area": evaluation.partition.controller_area_used,
        })
    return points


def render_fig3(points, name="hal"):
    headers = ["Budget", "Data-path", "Controllers", "HW BSBs", "Speed-up"]
    rows = [["%.0f%%" % (100 * point["fraction"]),
             "%.0f" % point["datapath_area"],
             "%.0f" % point["controller_area"],
             point["hw_bsbs"],
             "%.0f%%" % point["speedup"]] for point in points]
    return render_table(headers, rows,
                        title="Figure 3 — data-path budget sweep (%s)"
                              % name)


# ----------------------------------------------------------------------
# S51: section 5.1 — optimistic controller estimation
# ----------------------------------------------------------------------
def s51_controller_rows(name, library=None, area_fraction=0.6,
                        session=None):
    """Per-BSB optimistic ECA vs actual (list-schedule) controller area.

    Section 5.1: the ASAP-based estimate is optimistic, so the real
    controllers of moved BSBs are larger and the algorithm allocates "a
    few too many resources".  Each row reports a BSB's ECA, its actual
    controller area under the algorithm's allocation, and the ratio.

    ``area_fraction`` scales the ASIC area: with an ample budget the
    allocator reaches every BSB's full parallelism and all ratios
    collapse to 1.0, so the phenomenon is shown on a constrained chip
    (60% of the Table 1 area by default) — the regime the paper's
    estimate actually operates in.
    """
    session = _resolve_session(session, library)
    library = session.library
    spec = application_spec(name)
    program = session.program(name)
    result = session.allocate(program.bsbs,
                              area_fraction * spec.total_area)
    rows = []
    for bsb in program.bsbs:
        if not len(bsb.dfg):
            continue
        optimistic = estimated_controller_area(bsb.dfg, library=library)
        try:
            actual = actual_controller_area(bsb.dfg, result.allocation,
                                            library)
        except Exception:
            continue  # BSB not executable under this allocation
        rows.append({
            "bsb": bsb.name,
            "eca": optimistic,
            "actual": actual,
            "ratio": actual / optimistic,
        })
    return rows


def render_s51(rows, name):
    headers = ["BSB", "ECA (ASAP)", "Actual", "Actual/ECA"]
    body = [[row["bsb"], "%.0f" % row["eca"], "%.0f" % row["actual"],
             "%.2f" % row["ratio"]] for row in rows]
    return render_table(headers, body,
                        title="Section 5.1 — controller estimate "
                              "optimism (%s)" % name)


# ----------------------------------------------------------------------
# T1n: the man/eigen design-iteration fix
# ----------------------------------------------------------------------
def design_iteration_report(name, library=None, area_quanta=150,
                            session=None):
    """Run the reduce-only iteration and report every accepted step."""
    session = _resolve_session(session, library)
    library = session.library
    spec = application_spec(name)
    program = session.program(name)
    architecture = TargetArchitecture(library=library,
                                      total_area=spec.total_area)
    result = session.allocate(program.bsbs, spec.total_area)
    iterated = session.iterate(program.bsbs, result.allocation,
                               architecture, area_quanta=area_quanta)
    return {
        "name": name,
        "initial_speedup": iterated.initial_evaluation.speedup,
        "final_speedup": iterated.final_evaluation.speedup,
        "initial_allocation": result.allocation,
        "final_allocation": iterated.final_allocation,
        "steps": iterated.steps,
    }
