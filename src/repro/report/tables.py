"""Plain-text table rendering for experiment reports."""


def render_table(headers, rows, title=None):
    """Render a list-of-rows table as aligned plain text.

    Every cell is stringified; columns are right-aligned except the
    first (the label column).  Returns the table as a single string.
    """
    headers = [str(header) for header in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            elif len(cell) > widths[index]:
                widths[index] = len(cell)

    def format_row(cells):
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(format_row(row))
    return "\n".join(lines)
