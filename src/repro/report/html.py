"""Self-contained static HTML reports (ROADMAP item 5).

Two layers, deliberately separated:

* **Document builders** reduce live objects (point results, sessions,
  stores, schedules) to plain JSON-compatible dictionaries.  The HTTP
  gateway runs these on the engine thread (the only thread allowed to
  touch a session/store) and ships the neutral documents to its
  handler threads.
* :func:`render_html` turns a document into one static HTML page:
  inline CSS, inline SVG, **zero external references** — no scripts,
  no fonts, no ``http(s)://`` URLs anywhere in the output.  Rendering
  is deterministic: fixed float formats, sorted iteration, no
  timestamps of its own — the same document always renders to the same
  bytes, which is what lets the gateway serve reports under strong
  ETags and lets CI byte-compare cold and warm renders.

Everything here is stdlib-only.
"""

import html as _html

__all__ = [
    "store_analytics",
    "gantt_documents",
    "pareto_document",
    "sweep_document",
    "dashboard_document",
    "render_html",
]


# ----------------------------------------------------------------------
# Document builders (live objects -> neutral dictionaries)
# ----------------------------------------------------------------------
def store_analytics(store):
    """Reduce a :class:`~repro.engine.store.CacheStore` to report data.

    Returns ``{"root", "stages", "deltas", "compactions"}`` — shard
    census, absorbed-delta compression accounting and the bounded
    compaction history — or ``None`` for store-less sessions.
    """
    if store is None:
        return None
    return {
        "root": store.root,
        "stages": {stage: {"entries": entries, "bytes": size}
                   for stage, (entries, size) in store.info().items()},
        "deltas": store.delta_stats(),
        "compactions": store.compaction_history(),
    }


def stats_document(stats):
    """Reduce a :class:`~repro.engine.cache.CacheStats` to report data."""
    return {
        "stages": {stage: {"hits": hits, "misses": misses}
                   for stage, (hits, misses)
                   in stats.snapshot().items()},
        "overall_hit_rate": stats.overall_hit_rate(),
        "hits": stats.hit_count(),
        "lookups": stats.hit_count() + stats.miss_count(),
        "frontend_compiles": stats.miss_count("compile"),
        "program_store_hits": stats.hit_count("compile"),
    }


def gantt_documents(session, apps):
    """ASAP-schedule Gantt data for each app's hottest BSB.

    Programs resolve through :meth:`Session.program`, so a warm store
    answers without frontend compiles.  One document per app, in the
    given order: ``{"app", "bsb", "length", "rows"}``.
    """
    from repro.sched.asap import asap_schedule
    from repro.viz.gantt import schedule_rows

    documents = []
    for app in apps:
        bsb = session.hottest_bsb(app)
        schedule = asap_schedule(bsb.dfg, library=session.library)
        documents.append({
            "app": app,
            "bsb": bsb.name,
            "length": schedule.length,
            "rows": schedule_rows(schedule),
        })
    return documents


def _result_row(result):
    point = result.point
    error = result.error
    return {
        "app": point.app,
        "area": point.area,
        "policy": point.policy or "designated",
        "quanta": point.quanta,
        "speedup": result.speedup,
        "datapath_area": result.datapath_area,
        "energy": result.energy,
        "hw_bsbs": list(result.hw_names),
        "allocation": (None if result.allocation is None
                       else str(result.allocation)),
        "error": (None if error is None
                  else "%s: %s" % (error.kind, error.message)),
    }


def pareto_document(results):
    """The dominance-filtered front of a result batch, as report data.

    Failed points never enter the front (they carry zero metrics and
    would pollute a minimising axis).  Vectors are the oriented
    (speed-up, -area, -energy) triples; points come back in the
    front's deterministic descending order.
    """
    from repro.core.objective import get_objective

    ranked = [result for result in results if result.error is None]
    front = get_objective("pareto").new_front()
    for result in ranked:
        front.add((result.speedup, -result.datapath_area,
                   -result.energy), result)
    points = []
    for (speedup, neg_area, neg_energy), payload in front.points():
        points.append({
            "app": payload.point.app,
            "area": payload.point.area,
            "policy": payload.point.policy or "designated",
            "speedup": speedup,
            "datapath_area": -neg_area,
            "energy": -neg_energy,
        })
    return {
        "points": points,
        "hypervolume": front.hypervolume(),
        "candidates": len(ranked),
    }


def sweep_document(results, stats=None, store=None, gantts=None,
                   title="Design-space sweep", job=None):
    """Assemble the full report document for a sweep or service job.

    ``results`` are :class:`~repro.engine.design_point.PointResult`
    objects; every other section is optional and renders only when
    provided.  ``job`` is a status projection for gateway-served
    reports (id/state/counts).
    """
    return {
        "kind": "sweep-report",
        "title": title,
        "job": job,
        "results": [_result_row(result) for result in results],
        "pareto": pareto_document(results),
        "stats": None if stats is None else stats_document(stats),
        "store": store,
        "gantts": gantts or [],
    }


def dashboard_document(info, jobs):
    """Assemble the live-service dashboard document.

    ``info`` is the service ping/info mapping (engines, queue depths),
    ``jobs`` the queue's job listing rows — both already neutral
    dictionaries built on the service loop.
    """
    return {
        "kind": "dashboard",
        "title": "Exploration service dashboard",
        "info": info,
        "jobs": jobs,
    }


# ----------------------------------------------------------------------
# Rendering (neutral dictionaries -> one self-contained HTML page)
# ----------------------------------------------------------------------
_CSS = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 64em; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: 0.2em; }
h2 { margin-top: 1.6em; color: #333; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.7em;
         text-align: left; font-size: 0.92em; }
th { background: #e8eef4; }
tr:nth-child(even) td { background: #f6f8fa; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.error { color: #a40000; }
.note { color: #666; font-size: 0.9em; }
svg { background: #fcfcfc; border: 1px solid #ddd; margin: 0.6em 0; }
"""


def _escape(value):
    return _html.escape(str(value), quote=True)


def _number(value, format_spec="%.2f"):
    if value is None:
        return "–"
    return format_spec % value


def _table(headers, rows, numeric=()):
    """An HTML table; ``numeric`` columns get right-aligned cells."""
    parts = ["<table>", "<tr>"]
    for header in headers:
        parts.append("<th>%s</th>" % _escape(header))
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for column, cell in enumerate(row):
            css = ' class="num"' if column in numeric else ""
            parts.append("<td%s>%s</td>" % (css, cell))
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _svg_text(x, y, text, anchor="start", size=11, fill="#222"):
    return ('<text x="%.1f" y="%.1f" font-size="%d" fill="%s" '
            'text-anchor="%s" font-family="Helvetica">%s</text>'
            % (x, y, size, fill, anchor, _escape(text)))


def _axis_bounds(values, pad_fraction=0.1):
    low, high = min(values), max(values)
    span = high - low
    pad = span * pad_fraction if span else max(abs(high) * 0.1, 1.0)
    return low - pad, high + pad


def _pareto_svg(document):
    """Inline SVG scatter: data-path area vs speed-up, front marked."""
    results = [row for row in document["results"]
               if row["error"] is None]
    if not results:
        return '<p class="note">No successful points to plot.</p>'
    pareto = document["pareto"]
    front_keys = {(point["app"], point["datapath_area"],
                   point["speedup"]) for point in pareto["points"]}
    width, height = 640, 360
    margin = 52
    xs = [row["datapath_area"] for row in results]
    ys = [row["speedup"] for row in results]
    x_low, x_high = _axis_bounds(xs)
    y_low, y_high = _axis_bounds(ys)

    def sx(value):
        return margin + (value - x_low) / (x_high - x_low) \
            * (width - 2 * margin)

    def sy(value):
        return height - margin - (value - y_low) / (y_high - y_low) \
            * (height - 2 * margin)

    parts = ['<svg width="%d" height="%d" viewBox="0 0 %d %d" '
             'role="img" aria-label="Pareto scatter">'
             % (width, height, width, height)]
    # Axes + labels.
    parts.append('<line x1="%d" y1="%d" x2="%d" y2="%d" '
                 'stroke="#444"/>' % (margin, height - margin,
                                      width - margin, height - margin))
    parts.append('<line x1="%d" y1="%d" x2="%d" y2="%d" '
                 'stroke="#444"/>' % (margin, margin, margin,
                                      height - margin))
    parts.append(_svg_text(width / 2.0, height - 12,
                           "data-path area (GE)", anchor="middle"))
    parts.append('<g transform="rotate(-90 14 %d)">%s</g>'
                 % (height // 2,
                    _svg_text(14, height / 2.0, "speed-up (%)",
                              anchor="middle")))
    for tick in range(5):
        x_value = x_low + (x_high - x_low) * tick / 4.0
        y_value = y_low + (y_high - y_low) * tick / 4.0
        parts.append(_svg_text(sx(x_value), height - margin + 16,
                               "%.0f" % x_value, anchor="middle",
                               size=10, fill="#555"))
        parts.append(_svg_text(margin - 6, sy(y_value) + 4,
                               "%.0f" % y_value, anchor="end",
                               size=10, fill="#555"))
    # Front polyline (descending speed-up order = ascending area walk).
    front_points = [(sx(point["datapath_area"]), sy(point["speedup"]))
                    for point in pareto["points"]]
    if len(front_points) > 1:
        path = " ".join("%.1f,%.1f" % point for point in front_points)
        parts.append('<polyline points="%s" fill="none" '
                     'stroke="#3465a4" stroke-width="1.5" '
                     'stroke-dasharray="4 3"/>' % path)
    # Points: dominated grey, front blue.
    for row in results:
        key = (row["app"], row["datapath_area"], row["speedup"])
        on_front = key in front_keys
        parts.append('<circle cx="%.1f" cy="%.1f" r="%d" fill="%s" '
                     'stroke="#333" stroke-width="0.5"><title>%s</title>'
                     '</circle>'
                     % (sx(row["datapath_area"]), sy(row["speedup"]),
                        5 if on_front else 3,
                        "#3465a4" if on_front else "#bbbbbb",
                        _escape("%s area %.0f policy %s: SU %.0f%%, "
                                "data-path %.0f, energy %.2f"
                                % (row["app"], row["area"],
                                   row["policy"], row["speedup"],
                                   row["datapath_area"],
                                   row["energy"]))))
    parts.append(_svg_text(width - margin, margin - 8,
                           "hypervolume %.3f (%d front / %d points)"
                           % (pareto["hypervolume"],
                              len(pareto["points"]),
                              pareto["candidates"]),
                           anchor="end", size=11, fill="#3465a4"))
    parts.append("</svg>")
    return "".join(parts)


_GANTT_COLORS = {
    "mul": "#f4cccc", "div": "#ea9999", "mod": "#ea9999",
    "add": "#d9ead3", "sub": "#d9ead3", "const": "#fff2cc",
    "load": "#cfe2f3", "store": "#cfe2f3",
}


def _gantt_svg(gantt):
    """Inline SVG Gantt: one bar per operation over control steps."""
    rows = gantt["rows"]
    if not rows:
        return '<p class="note">Empty schedule.</p>'
    length = max(gantt["length"], 1)
    row_height, bar_height = 18, 12
    label_width, margin = 130, 28
    chart_width = max(24 * length, 240)
    width = label_width + chart_width + margin
    height = margin + row_height * len(rows) + 26

    def sx(step):
        # Steps are 1-based; step N's bar spans [N-1, N) chart units.
        return label_width + chart_width * (step - 1) / float(length)

    parts = ['<svg width="%d" height="%d" viewBox="0 0 %d %d" '
             'role="img" aria-label="Schedule Gantt">'
             % (width, height, width, height)]
    for step in range(1, length + 2):
        x = sx(step)
        parts.append('<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" '
                     'stroke="#e0e0e0"/>'
                     % (x, margin - 8, x,
                        margin + row_height * len(rows)))
        if step <= length:
            parts.append(_svg_text(x + chart_width / (2.0 * length),
                                   margin - 12, "t=%d" % step,
                                   anchor="middle", size=9,
                                   fill="#777"))
    for position, row in enumerate(rows):
        y = margin + position * row_height
        parts.append(_svg_text(label_width - 8, y + bar_height,
                               row["label"], anchor="end", size=10))
        color = _GANTT_COLORS.get(row["type"], "#eeeeee")
        if row["start"] is None:
            parts.append('<rect x="%.1f" y="%.1f" width="%.1f" '
                         'height="%d" fill="none" stroke="#999" '
                         'stroke-dasharray="3 2"><title>%s</title>'
                         '</rect>'
                         % (sx(1), y + 2.0, chart_width / float(length),
                            bar_height,
                            _escape("%s: unplaced" % row["label"])))
            continue
        bar_width = (chart_width * (row["finish"] - row["start"] + 1)
                     / float(length))
        parts.append('<rect x="%.1f" y="%.1f" width="%.1f" '
                     'height="%d" fill="%s" stroke="#333" '
                     'stroke-width="0.5"><title>%s</title></rect>'
                     % (sx(row["start"]), y + 2.0, bar_width,
                        bar_height, color,
                        _escape("%s: t=%d..%d (latency %d)"
                                % (row["label"], row["start"],
                                   row["finish"], row["latency"]))))
    parts.append("</svg>")
    return "".join(parts)


def _results_section(document):
    rows = []
    for row in document["results"]:
        if row["error"] is not None:
            rows.append([_escape(row["app"]),
                         _number(row["area"], "%.0f"),
                         _escape(row["policy"]),
                         "%d" % row["quanta"],
                         '<span class="error">%s</span>'
                         % _escape(row["error"]),
                         "–", "–", "–"])
            continue
        rows.append([
            _escape(row["app"]),
            _number(row["area"], "%.0f"),
            _escape(row["policy"]),
            "%d" % row["quanta"],
            "%.0f%%" % row["speedup"],
            "%.0f" % row["datapath_area"],
            "%.2f" % row["energy"],
            _escape(", ".join(row["hw_bsbs"]) or "(none)"),
        ])
    table = _table(["App", "Area", "Policy", "Quanta", "Speed-up",
                    "Data-path", "Energy", "HW BSBs"], rows,
                   numeric=(1, 3, 4, 5, 6))
    allocations = [row for row in document["results"]
                   if row["allocation"]]
    parts = ["<h2>Design points</h2>", table]
    if allocations:
        parts.append("<h2>Allocations</h2>")
        parts.append(_table(
            ["App", "Area", "Policy", "Allocation"],
            [[_escape(row["app"]), _number(row["area"], "%.0f"),
              _escape(row["policy"]), _escape(row["allocation"])]
             for row in allocations], numeric=(1,)))
    return "".join(parts)


def _pareto_section(document):
    pareto = document["pareto"]
    parts = ["<h2>Pareto front (speed-up, -area, -energy)</h2>",
             _pareto_svg(document)]
    if pareto["points"]:
        parts.append(_table(
            ["App", "Area", "Policy", "Speed-up", "Data-path",
             "Energy"],
            [[_escape(point["app"]), _number(point["area"], "%.0f"),
              _escape(point["policy"]), "%.0f%%" % point["speedup"],
              "%.0f" % point["datapath_area"],
              "%.2f" % point["energy"]]
             for point in pareto["points"]],
            numeric=(1, 3, 4, 5)))
        parts.append('<p class="note">hypervolume %.3f over %d '
                     'successful point(s)</p>'
                     % (pareto["hypervolume"], pareto["candidates"]))
    return "".join(parts)


def _stats_section(stats):
    rows = []
    for stage in sorted(stats["stages"]):
        entry = stats["stages"][stage]
        lookups = entry["hits"] + entry["misses"]
        rate = 100.0 * entry["hits"] / lookups if lookups else 0.0
        rows.append([_escape(stage), "%d" % entry["hits"],
                     "%d" % entry["misses"], "%.0f%%" % rate])
    return "".join([
        "<h2>Cache analytics (store replay)</h2>",
        _table(["Stage", "Hits", "Misses", "Hit rate"], rows,
               numeric=(1, 2, 3)),
        '<p class="note">overall hit rate %.1f%% (%d hits / %d '
        'lookups); frontend compiles %d (program store hits %d)</p>'
        % (100.0 * stats["overall_hit_rate"], stats["hits"],
           stats["lookups"], stats["frontend_compiles"],
           stats["program_store_hits"]),
    ])


def _store_section(store):
    parts = ["<h2>Store analytics</h2>",
             '<p class="note">%s</p>' % _escape(store["root"])]
    stages = store["stages"]
    if stages:
        rows = [[_escape(stage), "%d" % stages[stage]["entries"],
                 "%d" % stages[stage]["bytes"]]
                for stage in sorted(stages)]
        rows.append(["<em>total</em>",
                     "%d" % sum(entry["entries"]
                                for entry in stages.values()),
                     "%d" % sum(entry["bytes"]
                                for entry in stages.values())])
        parts.append(_table(["Shard", "Entries", "Bytes"], rows,
                            numeric=(1, 2)))
    else:
        parts.append('<p class="note">Empty store.</p>')
    deltas = store["deltas"]
    if deltas:
        parts.append("<h2>Absorbed store deltas</h2>")
        rows = []
        for engine in sorted(deltas):
            entry = deltas[engine]
            raw = entry["raw_bytes"]
            saved = (100.0 * (1.0 - entry["compressed_bytes"] / raw)
                     if raw else 0.0)
            rows.append([_escape(engine), "%d" % entry["frames"],
                         "%d" % raw, "%d" % entry["compressed_bytes"],
                         "%.1f%%" % saved])
        parts.append(_table(["Engine", "Frames", "Raw bytes",
                             "Compressed", "Saved"], rows,
                            numeric=(1, 2, 3, 4)))
    compactions = store["compactions"]
    if compactions:
        parts.append("<h2>Compaction history</h2>")
        rows = [["%d" % event.get("kept", 0),
                 "%d" % event.get("dropped", 0),
                 "%d" % event.get("bytes_before", 0),
                 "%d" % event.get("bytes_after", 0),
                 _escape(", ".join(
                     "%s -%d" % (stage, dropped)
                     for stage, (_, dropped)
                     in sorted(event.get("stages", {}).items())
                     if dropped) or "(nothing dropped)")]
                for event in compactions]
        parts.append(_table(["Kept", "Dropped", "Bytes before",
                             "Bytes after", "Stages"], rows,
                            numeric=(0, 1, 2, 3)))
    return "".join(parts)


def _job_section(job):
    rows = [[_escape(key), _escape(_flatten(job[key]))]
            for key in sorted(job)]
    return "".join(["<h2>Job</h2>",
                    _table(["Field", "Value"], rows)])


def _document_body(document):
    parts = ["<h1>%s</h1>" % _escape(document["title"])]
    if document.get("job"):
        parts.append(_job_section(document["job"]))
    parts.append(_results_section(document))
    parts.append(_pareto_section(document))
    if document.get("stats"):
        parts.append(_stats_section(document["stats"]))
    if document.get("store"):
        parts.append(_store_section(document["store"]))
    for gantt in document.get("gantts", []):
        parts.append("<h2>Schedule Gantt: %s / %s (%d steps)</h2>"
                     % (_escape(gantt["app"]), _escape(gantt["bsb"]),
                        gantt["length"]))
        parts.append(_gantt_svg(gantt))
    return "".join(parts)


def _dashboard_body(document):
    parts = ["<h1>%s</h1>" % _escape(document["title"])]
    info = document["info"]
    parts.append("<h2>Service</h2>")
    parts.append(_table(["Field", "Value"],
                        [[_escape(key), _escape(_flatten(info[key]))]
                         for key in sorted(info)]))
    jobs = document["jobs"]
    parts.append("<h2>Jobs</h2>")
    if jobs:
        columns = sorted({key for job in jobs for key in job})
        parts.append(_table(
            [column.replace("_", " ") for column in columns],
            [[_escape(_flatten(job.get(column, "–")))
              for column in columns] for job in jobs]))
    else:
        parts.append('<p class="note">No jobs.</p>')
    return "".join(parts)


def _flatten(value):
    """Human-readable scalar for nested info values."""
    if isinstance(value, dict):
        return ", ".join("%s=%s" % (key, _flatten(value[key]))
                         for key in sorted(value))
    if isinstance(value, (list, tuple)):
        return ", ".join(_flatten(each) for each in value)
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def render_html(document):
    """Render a report/dashboard document to one self-contained page."""
    if document.get("kind") == "dashboard":
        body = _dashboard_body(document)
    else:
        body = _document_body(document)
    return ("<!DOCTYPE html>\n"
            '<html lang="en"><head><meta charset="utf-8">'
            "<title>%s</title>"
            "<style>%s</style></head>\n"
            "<body>%s</body></html>\n"
            % (_escape(document["title"]), _CSS, body))
