"""Reporting: table rendering and the paper's experiment drivers."""

from repro.report.tables import render_table
from repro.report.experiments import (
    Table1Row,
    table1_row,
    table1_rows,
    render_table1,
    fig3_sweep,
    render_fig3,
    s51_controller_rows,
    render_s51,
    design_iteration_report,
)

__all__ = [
    "render_table",
    "Table1Row",
    "table1_row",
    "table1_rows",
    "render_table1",
    "fig3_sweep",
    "render_fig3",
    "s51_controller_rows",
    "render_s51",
    "design_iteration_report",
]
