"""Deterministic soak of the hardened service (ISSUE 4 acceptance).

The scenario the hardening exists for: one bulk client saturates a
cap-bounded queue with a large batch while interactive clients submit
one-point jobs.  With ``scheduler="fair"`` and a queue cap, the suite
pins, in one run: no starvation (every tiny job finishes before the
saturating batch), retry-after rejections retried to success, results
bit-identical to a serial :meth:`Session.explore`, and — separately —
the GC retention bounds (TTL + max retained jobs).

Determinism: evaluations are real (the parity assertion needs them),
but :class:`SlowService` adds a fixed artificial latency per point so
scheduling order is observable on any machine — completion stamps are
read server-side (``Job.finished_at``), not from wall-clock races.
"""

import threading
import time

import pytest

from repro.engine import DesignPoint, Session
from repro.service.client import ServiceError
from repro.service.server import ExplorationService

#: The saturating batch and the interactive probes; all real,
#: all cheap (straight is the smallest benchmark).
LARGE = tuple(DesignPoint(app="straight", area=2000.0 + 1000.0 * step,
                          quanta=80) for step in range(12))
TINY = tuple(DesignPoint(app="straight", area=2500.0 + 500.0 * step,
                         quanta=90) for step in range(4))


class SlowService(ExplorationService):
    """Real evaluations plus a fixed per-point latency.

    The delay makes one point a visible scheduling quantum; results
    stay bit-identical because the evaluation itself is untouched.
    """

    point_delay = 0.08

    def _evaluate_local(self, point):
        time.sleep(self.point_delay)
        return super()._evaluate_local(point)


class VerySlowService(SlowService):
    point_delay = 0.4


def assert_results_match_serial(results, points, truth_by_point):
    for result, point in zip(results, points):
        expected = truth_by_point[point]
        assert result.error is None
        assert result.point == expected.point
        assert result.speedup == expected.speedup
        assert result.datapath_area == expected.datapath_area
        assert result.hw_names == tuple(expected.hw_names)
        assert result.allocation == expected.allocation


class TestFairSoak:
    def test_fairness_backpressure_and_bit_identical_results(
            self, make_harness):
        harness = make_harness(service_class=SlowService,
                               scheduler="fair",
                               queue_cap=len(LARGE) + 2)
        bulk = harness.client(client_id="bulk", timeout=120.0)
        gate = threading.Event()
        outcomes = {}
        rejections = {}

        def interactive(slot):
            client = harness.client(client_id="tiny-%d" % slot,
                                    retry_budget=60.0, timeout=120.0)
            assert gate.wait(30)
            job = client.submit([TINY[slot]])
            outcomes[slot] = (job, client.collect(job))
            rejections[slot] = client.last_submit_rejections

        threads = [threading.Thread(target=interactive, args=(slot,))
                   for slot in range(len(TINY))]
        for thread in threads:
            thread.start()
        # Admit the saturating batch first, then release the probes:
        # 12 of 14 slots are taken the moment the tiny clients submit.
        job_large = bulk.submit(LARGE)
        gate.set()
        large_results = bulk.collect(job_large)
        for thread in threads:
            thread.join(120)
        assert set(outcomes) == set(range(len(TINY)))

        # 1. Backpressure: over-cap submissions were rejected with a
        #    retry-after the client honoured through to admission.
        assert sum(rejections.values()) >= 1

        # 2. Fairness: every interactive job finished before the
        #    saturating batch (server-side completion stamps).
        queue = harness.service.queue
        large_finished = queue.jobs[job_large].finished_at
        assert large_finished is not None
        for slot, (job_id, _) in outcomes.items():
            tiny_finished = queue.jobs[job_id].finished_at
            assert tiny_finished < large_finished, \
                "tiny job %d starved behind the large batch" % slot

        # 3. Exactness: everything the soak computed is bit-identical
        #    to a fresh serial session over the same points.
        truth = Session().explore(list(LARGE) + list(TINY),
                                  on_error="capture")
        truth_by_point = {result.point: result for result in truth}
        assert_results_match_serial(large_results, LARGE,
                                    truth_by_point)
        for slot, (_, results) in outcomes.items():
            assert_results_match_serial(results, [TINY[slot]],
                                        truth_by_point)


class TestSmallestJobFirst:
    def test_late_small_job_overtakes_the_batch(self, make_harness):
        harness = make_harness(service_class=SlowService,
                               scheduler="sjf")
        client = harness.client(timeout=120.0)
        big = client.submit(LARGE[:8])
        small = client.submit(TINY[:2])
        client.collect(big)
        client.collect(small)
        queue = harness.service.queue
        assert queue.jobs[small].finished_at \
            < queue.jobs[big].finished_at


class TestRetryBudget:
    def test_no_budget_surfaces_the_structured_rejection(
            self, make_harness):
        harness = make_harness(service_class=VerySlowService,
                               queue_cap=1)
        blocker = harness.client(timeout=120.0)
        occupied = blocker.submit([LARGE[0]])
        impatient = harness.client(retry_budget=0.0)
        with pytest.raises(ServiceError) as excinfo:
            impatient.submit([TINY[0]])
        assert excinfo.value.retry_after is not None
        assert "cap" in str(excinfo.value)
        # The same submission with a budget waits its turn and lands.
        patient = harness.client(retry_budget=60.0, timeout=120.0)
        job = patient.submit([TINY[0]])
        results = patient.collect(job)
        assert results[0].error is None
        blocker.collect(occupied)


class TestRetention:
    def test_gc_bounds_retained_jobs(self, make_harness):
        harness = make_harness(job_ttl=30.0, max_jobs=2)
        client = harness.client()
        finished = [client.submit([point]) for point in TINY]
        for job in finished:
            client.collect(job)
        # The retention bound holds the moment jobs complete...
        assert len(client.jobs()) <= 2
        # ...the evicted ones answer "expired", not "unknown"...
        with pytest.raises(ServiceError, match="expired"):
            client.status(finished[0])
        # ...and the survivors forecast their expiry.
        survivor = client.status(finished[-1])
        assert survivor["expires_in"] is not None
        assert 0.0 <= survivor["expires_in"] <= 30.0

    def test_ttl_empties_an_idle_service(self, make_harness):
        harness = make_harness(job_ttl=0.3)
        client = harness.client()
        job = client.submit([TINY[0]])
        client.collect(job)
        assert len(client.jobs()) == 1
        time.sleep(0.5)
        # Any request dispatch runs the GC; the finished job is gone.
        assert client.jobs() == []
        with pytest.raises(ServiceError, match="expired"):
            client.status(job)
