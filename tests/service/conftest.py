"""Shared live-service harness for the service test modules.

One real :class:`ExplorationService` (real sockets on an ephemeral
loopback port, real session, tmp-path store) on a background thread,
driven by real :class:`ServiceClient` instances — the same path the
CLI takes.  ``make_harness`` accepts every service knob (token,
scheduler, queue_cap, job_ttl, max_jobs, a service subclass), so the
auth / backpressure / fairness / GC suites all drive the genuine
article.
"""

import asyncio
import threading

import pytest

from repro.engine import Session
from repro.service.client import ServiceClient
from repro.service.server import ExplorationService


class ServiceHarness:
    """One live service on a background thread."""

    def __init__(self, cache_dir, workers=1, flush_interval=0.2,
                 service_class=ExplorationService, token=None,
                 **service_kwargs):
        self.session = Session(cache_dir=cache_dir)
        self.service = None
        self.port = None
        self.token = token
        self._gateway = None
        self._ready = threading.Event()
        self._workers = workers
        self._flush_interval = flush_interval
        self._service_class = service_class
        self._service_kwargs = service_kwargs
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(30), "service never came up"

    def _run(self):
        async def main():
            service = self._service_class(
                self.session, workers=self._workers,
                flush_interval=self._flush_interval, token=self.token,
                **self._service_kwargs)
            self.service = service
            await service.start(port=0)
            self.port = service.address[1]
            self._ready.set()
            await service.run_until_shutdown()

        asyncio.run(main())

    def client(self, timeout=60.0, **kwargs):
        kwargs.setdefault("token", self.token)
        return ServiceClient(port=self.port, timeout=timeout, **kwargs)

    def http_gateway(self, api_keys=None):
        """Mount (once) and return the HTTP gateway over this service."""
        if self._gateway is None:
            from repro.service.http import HttpGateway

            self._gateway = HttpGateway(self.service, api_keys=api_keys)
            self._gateway.start(port=0)
        return self._gateway

    def http_client(self, api_key=None, **kwargs):
        from repro.service.http_client import HttpServiceClient

        gateway = self.http_gateway()
        kwargs.setdefault("retry_budget", 10.0)
        return HttpServiceClient(
            url="http://127.0.0.1:%d" % gateway.address[1],
            api_key=api_key, **kwargs)

    def stop(self):
        if self._gateway is not None:
            self._gateway.stop()
            self._gateway = None
        if self._thread.is_alive():
            try:
                self.client(timeout=5.0).shutdown()
            except Exception:
                pass
            self._thread.join(30)


@pytest.fixture
def make_harness(tmp_path):
    created = []

    def factory(**kwargs):
        kwargs.setdefault("cache_dir",
                          str(tmp_path / ("store-%d" % len(created))))
        harness = ServiceHarness(**kwargs)
        created.append(harness)
        return harness

    yield factory
    for harness in created:
        harness.stop()


@pytest.fixture
def harness(make_harness):
    return make_harness()
