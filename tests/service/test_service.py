"""End-to-end tests for the exploration service.

Each harness runs a real :class:`ExplorationService` (real sockets on
an ephemeral loopback port, real session, tmp-path store) on a
background thread, driven by real :class:`ServiceClient` instances —
the same path the CLI takes.  The acceptance bar (ISSUE 3): concurrent
clients sharing one store get results bit-identical to a serial
``Session.explore``, and a poisoned batch fails per-point, never
per-job.
"""

import json
import socket
import threading

import pytest

from repro.engine import DesignPoint, Session
from repro.io.serialize import design_point_to_dict
from repro.service import protocol
from repro.service.client import ServiceError

#: Small, fast grids (straight is the cheapest benchmark; quanta kept
#: low).  GRID_A and GRID_B overlap on two points — the sharing the
#: service exists to exploit.
GRID_A = (DesignPoint(app="straight", area=3000.0, quanta=80),
          DesignPoint(app="straight", area=5000.0, quanta=80),
          DesignPoint(app="straight", area=7500.0, quanta=80))
GRID_B = (DesignPoint(app="straight", area=5000.0, quanta=80),
          DesignPoint(app="straight", area=7500.0, quanta=80),
          DesignPoint(app="straight", area=15000.0, quanta=80))
POISON = DesignPoint(app="nope", quanta=80)


def serial_results(points):
    """The ground truth: a fresh serial session over the same points."""
    return Session().explore(list(points), on_error="capture")


def assert_matches_serial(results, points):
    truth = serial_results(points)
    for result, expected in zip(results, truth):
        assert result.point == expected.point
        assert result.speedup == expected.speedup
        assert result.datapath_area == expected.datapath_area
        assert result.hw_names == tuple(expected.hw_names)
        assert result.allocation == expected.allocation


class TestSubmitStreamStatus:
    def test_end_to_end(self, harness):
        client = harness.client()
        job = client.submit(GRID_A)
        results = client.collect(job)
        assert all(result.ok for result in results)
        assert_matches_serial(results, GRID_A)
        status = client.status(job)
        assert status["state"] == "done"
        assert status["done"] == len(GRID_A)
        assert status["errors"] == 0

    def test_second_submission_is_warm(self, harness):
        client = harness.client()
        first = client.collect(client.submit(GRID_A))
        warm_job = client.submit(GRID_A)
        second = client.collect(warm_job)
        assert [r.speedup for r in second] == \
            [r.speedup for r in first]
        status = client.status(warm_job)
        assert status["hit_rate"] > 0.9

    def test_results_stream_replays_after_completion(self, harness):
        client = harness.client()
        job = client.submit(GRID_A[:1])
        client.collect(job)           # drain once
        replay = client.collect(job)  # stream again, job already done
        assert replay[0].speedup == \
            serial_results(GRID_A[:1])[0].speedup

    def test_status_of_unknown_job_rejected(self, harness):
        with pytest.raises(ServiceError, match="unknown job"):
            harness.client().status("job-999")

    def test_warm_restart_from_the_store(self, tmp_path, make_harness):
        shared = str(tmp_path / "shared-store")
        first = make_harness(cache_dir=shared)
        results = first.client().collect(
            first.client().submit(GRID_A))
        first.stop()
        second = make_harness(cache_dir=shared)  # fresh process state
        client = second.client()
        job = client.submit(GRID_A)
        again = client.collect(job)
        assert [r.speedup for r in again] == \
            [r.speedup for r in results]
        # Evaluations replay from the hydrated store (program compile
        # is the one cold stage, as documented in the ROADMAP).
        assert client.status(job)["hit_rate"] > 0.5


class TestConcurrentClients:
    def test_two_clients_share_one_store(self, harness):
        outcomes = {}

        def run(name, grid):
            client = harness.client()
            outcomes[name] = client.collect(client.submit(grid))

        threads = [threading.Thread(target=run, args=("a", GRID_A)),
                   threading.Thread(target=run, args=("b", GRID_B))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert set(outcomes) == {"a", "b"}
        assert_matches_serial(outcomes["a"], GRID_A)
        assert_matches_serial(outcomes["b"], GRID_B)

    def test_pooled_workers_match_serial(self, make_harness):
        harness = make_harness(workers=2)
        client = harness.client(timeout=120.0)
        results = client.collect(client.submit(GRID_A))
        assert_matches_serial(results, GRID_A)

    def test_shutdown_with_pooled_work_in_flight(self, make_harness):
        """Regression: terminating the pool under live ``apply`` calls
        stranded the dispatch threads; shutdown must drain instead."""
        harness = make_harness(workers=2)
        client = harness.client()
        client.submit(GRID_A + GRID_B)  # keep both workers busy
        harness.stop()
        assert not harness._thread.is_alive()

    def test_shutdown_with_idle_connection(self, make_harness):
        """Regression: an idle client parked in readline() must not
        hold the server teardown open (Python 3.12's wait_closed()
        waits for every connection handler)."""
        harness = make_harness()
        idler = socket.create_connection(("127.0.0.1", harness.port),
                                         timeout=30)
        try:
            harness.stop()
            assert not harness._thread.is_alive()
        finally:
            idler.close()


class TestFailureContainment:
    def test_poisoned_batch_fails_per_point(self, harness):
        points = (GRID_A[0], POISON, GRID_A[1])
        client = harness.client()
        results = client.collect(client.submit(points))
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error.kind == "ReproError"
        assert "nope" in results[1].error.message
        assert_matches_serial([results[0], results[2]],
                              (points[0], points[2]))
        status = client.status(client.submit(GRID_A[:1]))
        assert status["state"] in ("queued", "running", "done")

    def test_poisoned_batch_persists_the_good_points(self, harness):
        client = harness.client()
        client.collect(client.submit((GRID_A[0], POISON, GRID_A[1])))
        warm = Session(cache_dir=harness.session.store.root)
        for point in (GRID_A[0], GRID_A[1]):
            warm.evaluate_point(point)
        assert warm.stats.hit_count("eval") == 2


class TestCancel:
    def test_cancel_queued_job(self, harness):
        client = harness.client()
        # Keep the single worker busy with a first job, so the second
        # is still entirely pending when the cancel lands.
        busy = client.submit(GRID_A)
        doomed = client.submit(GRID_B)
        status = client.cancel(doomed)
        assert status["state"] == "cancelled"
        assert status["cancelled"] + status["done"] + \
            status["running"] == len(GRID_B)
        assert status["cancelled"] >= 1
        # The cancelled job's stream still terminates cleanly...
        slots = client.collect(doomed)
        assert any(result is None for result in slots)
        # ... and the busy job is untouched.
        assert all(result.ok for result in client.collect(busy))

    def test_cancel_unknown_job_rejected(self, harness):
        with pytest.raises(ServiceError, match="unknown job"):
            harness.client().cancel("job-404")


class TestMalformedRequests:
    def raw_lines(self, harness, payloads):
        """Send raw lines on one connection; one reply line each."""
        with socket.create_connection(("127.0.0.1", harness.port),
                                      timeout=30) as sock:
            with sock.makefile("rwb") as stream:
                replies = []
                for payload in payloads:
                    stream.write(payload)
                    stream.flush()
                    replies.append(json.loads(stream.readline()))
                return replies

    def test_rejections_do_not_kill_the_connection(self, harness):
        replies = self.raw_lines(harness, [
            b"this is not json\n",
            b'{"op": "launch-missiles"}\n',
            b'{"op": "submit", "points": "everything"}\n',
            b'{"op": "submit", "points": [{"kind": "design-point", '
            b'"version": 1, "app": "hal", "policy": "greedy"}]}\n',
            b'{"op": "status", "job": 42}\n',
            b'{"op": "ping"}\n',
        ])
        assert [reply["ok"] for reply in replies] == \
            [False, False, False, False, False, True]
        assert "JSON" in replies[0]["error"]
        assert "unknown op" in replies[1]["error"]
        assert "points" in replies[2]["error"]
        assert "greedy" in replies[3]["error"]

    def test_rejected_submission_queues_nothing(self, harness):
        client = harness.client()
        before = client.ping()["jobs"]
        with pytest.raises(ServiceError):
            client.submit([{"kind": "design-point", "version": 1,
                            "app": "hal", "quanta": 0}])
        assert client.ping()["jobs"] == before

    def test_oversized_line_drops_the_connection(self, harness):
        with socket.create_connection(("127.0.0.1", harness.port),
                                      timeout=30) as sock:
            with sock.makefile("rwb") as stream:
                stream.write(b'{"op": "ping", "pad": "'
                             + b"x" * protocol.MAX_LINE_BYTES
                             + b'"}\n')
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply["ok"] is False
                assert stream.readline() == b""  # server closed it


class TestAuth:
    """The shared-token handshake (ISSUE 4)."""

    TOKEN = "correct-horse-battery"

    def test_tokenless_client_is_rejected_before_any_job_state(
            self, make_harness):
        harness = make_harness(token=self.TOKEN)
        intruder = harness.client(token=None)
        with pytest.raises(ServiceError, match="authentication"):
            intruder.submit(GRID_A)
        with pytest.raises(ServiceError, match="authentication"):
            intruder.ping()
        # Nothing was queued by the rejected submission.
        authed = harness.client()
        assert authed.ping()["jobs"] == 0
        assert authed.jobs() == []

    def test_wrong_token_is_rejected(self, make_harness):
        harness = make_harness(token=self.TOKEN)
        wrong = harness.client(token="open-sesame")
        with pytest.raises(ServiceError, match="invalid token"):
            wrong.ping()

    def test_authenticated_client_round_trips(self, make_harness):
        harness = make_harness(token=self.TOKEN)
        client = harness.client()
        results = client.collect(client.submit(GRID_A[:1]))
        assert_matches_serial(results, GRID_A[:1])

    def test_token_against_open_server_is_harmless(self, harness):
        client = harness.client(token="anything-goes")
        assert client.ping()["ok"]

    def test_malformed_auth_keeps_the_connection(self, make_harness):
        """A structurally bad auth line is a rejection, not a crash;
        the connection stays open but unauthenticated."""
        harness = make_harness(token=self.TOKEN)
        with socket.create_connection(("127.0.0.1", harness.port),
                                      timeout=30) as sock:
            with sock.makefile("rwb") as stream:
                stream.write(b'{"op": "auth", "token": 42}\n')
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply["ok"] is False
                stream.write(protocol.encode(
                    {"op": "auth", "token": self.TOKEN}))
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply["ok"] is True


class TestTypedConnectionErrors:
    """Regression (ISSUE 4): a dropped connection surfaces as
    :class:`ServiceError`, never an opaque ``ConnectionResetError``."""

    def test_oversized_submit_surfaces_service_error(self, harness):
        point = design_point_to_dict(DesignPoint(app="straight"))
        point["pad"] = "x" * (2 * protocol.MAX_LINE_BYTES)
        client = harness.client()
        with pytest.raises(ServiceError):
            client.submit([point])

    def test_unauthenticated_drop_carries_the_server_message(
            self, make_harness):
        harness = make_harness(token="hunter2")
        client = harness.client(token=None)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(GRID_A[:1])
        assert "auth" in str(excinfo.value)
