"""HTTP gateway tests (ISSUE 9): conditional caching, auth, quotas.

Every test drives a real gateway (ephemeral port, daemon threads)
mounted over the live harness service — the same stack ``serve --http``
runs.  Raw ``http.client`` requests are used wherever the *wire*
matters (status codes, ETag / Cache-Control / Retry-After headers);
:class:`HttpServiceClient` is used wherever the client contract
matters (conditional polling, retry-to-success, byte-identity with
the TCP client).
"""

import http.client
import json
import time

import pytest

from repro.engine import DesignPoint
from repro.errors import ReproError
from repro.io.serialize import design_point_to_dict, point_result_to_dict
from repro.service.client import ServiceError
from repro.service.http import ApiKey, load_api_keys
from repro.service.server import ExplorationService

GRID = (DesignPoint(app="straight", area=3000.0, quanta=80),
        DesignPoint(app="straight", area=5000.0, quanta=80),
        DesignPoint(app="straight", area=7500.0, quanta=80))


class SlowService(ExplorationService):
    """Real evaluations with a visible per-point latency."""

    point_delay = 0.08

    def _evaluate_local(self, point):
        time.sleep(self.point_delay)
        return super()._evaluate_local(point)


def raw(gateway, method, path, headers=None, body=None):
    """One raw HTTP round trip: ``(status, headers, payload)``."""
    connection = http.client.HTTPConnection(
        "127.0.0.1", gateway.address[1], timeout=30)
    try:
        connection.request(method, path, body=body,
                           headers=headers or {})
        response = connection.getresponse()
        return response.status, response.headers, response.read()
    finally:
        connection.close()


def submit_body(points=GRID, **extra):
    document = {"points": [design_point_to_dict(point)
                           for point in points]}
    document.update(extra)
    return json.dumps(document)


class TestByteIdentity:
    def test_http_collect_matches_tcp_collect_byte_for_byte(
            self, harness):
        tcp = harness.client()
        web = harness.http_client()
        job_tcp = tcp.submit(GRID)
        job_web = web.submit(GRID)
        lines_tcp = [json.dumps(point_result_to_dict(result),
                                sort_keys=True)
                     for result in tcp.collect(job_tcp)]
        lines_web = [json.dumps(point_result_to_dict(result),
                                sort_keys=True)
                     for result in web.collect(job_web)]
        assert lines_tcp == lines_web

    def test_http_results_stream_is_completion_ordered_and_total(
            self, harness):
        web = harness.http_client(poll_wait=0.2)
        job = web.submit(GRID)
        seen = dict(web.results(job))
        assert sorted(seen) == [0, 1, 2]
        assert all(result.error is None for result in seen.values())
        assert web.last_status["state"] == "done"
        assert web.last_status["done"] == len(GRID)


class TestConditionalGet:
    def test_status_lifecycle_etag_304_and_immutability(
            self, make_harness):
        harness = make_harness(service_class=SlowService)
        gateway = harness.http_gateway()
        tcp = harness.client()
        job = tcp.submit(GRID)
        path = "/v1/jobs/%s" % job

        status, headers, body = raw(gateway, "GET", path)
        assert status == 200
        etag_running = headers["ETag"]
        assert etag_running.startswith('"')
        assert headers["Cache-Control"] == "no-cache"
        assert b"expires_in" not in body  # volatile field stays out

        tcp.collect(job)
        status, headers, body = raw(gateway, "GET", path)
        assert status == 200
        etag_done = headers["ETag"]
        assert etag_done != etag_running  # progress changed the bytes
        assert "immutable" in headers["Cache-Control"]
        assert json.loads(body.decode("utf-8"))["state"] == "done"

        # A fresh validator revalidates for free...
        status, headers, body = raw(
            gateway, "GET", path, headers={"If-None-Match": etag_done})
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag_done
        # ...a stale one pays a full 200 again.
        status, _, body = raw(
            gateway, "GET", path,
            headers={"If-None-Match": etag_running})
        assert status == 200
        assert body

    def test_results_document_304_and_counters(self, harness):
        gateway = harness.http_gateway()
        web = harness.http_client()
        job = web.submit(GRID)
        web.collect(job)
        first = web.results_document(job)
        again = web.results_document(job)
        assert again == first
        assert web.conditional_hits >= 1
        assert web.conditional_misses >= 1
        info = web.ping()
        assert info["transport"] == "http"
        assert info["http_not_modified"] >= 1
        assert info["http_requests"] > info["http_not_modified"]

    def test_client_folds_expires_header_back_into_status(
            self, make_harness):
        harness = make_harness(job_ttl=120.0)
        web = harness.http_client()
        job = web.submit(GRID[:1])
        web.collect(job)
        first = web.status(job)
        assert first["expires_in"] is not None
        again = web.status(job)  # a 304 — yet the countdown is fresh
        assert web.conditional_hits >= 1
        assert again["expires_in"] is not None


class TestAuth:
    def test_keyed_gateway_401s_missing_and_unknown_keys(
            self, harness):
        gateway = harness.http_gateway(api_keys={
            "k-alice": ApiKey("k-alice", client="alice")})
        status, headers, body = raw(gateway, "GET", "/v1/ping")
        assert status == 401
        assert headers["WWW-Authenticate"] == "Bearer"
        assert not json.loads(body.decode("utf-8"))["ok"]
        status, headers, _ = raw(
            gateway, "GET", "/v1/ping",
            headers={"Authorization": "Bearer nope"})
        assert status == 401
        status, _, _ = raw(
            gateway, "GET", "/v1/ping",
            headers={"Authorization": "Bearer k-alice"})
        assert status == 200
        status, _, _ = raw(gateway, "GET", "/v1/ping",
                           headers={"X-Api-Key": "k-alice"})
        assert status == 200

    def test_keyed_submit_uses_the_keys_identity(self, harness):
        harness.http_gateway(api_keys={
            "k-alice": ApiKey("k-alice", client="alice", weight=2)})
        web = harness.http_client(api_key="k-alice")
        job = web.submit(GRID[:1])
        web.collect(job)
        assert harness.service.queue.get(job).client == "alice"

    def test_client_error_type_on_rejection(self, harness):
        harness.http_gateway(api_keys={
            "k-alice": ApiKey("k-alice", client="alice")})
        web = harness.http_client(api_key="wrong")
        with pytest.raises(ServiceError, match="unknown API key"):
            web.ping()


class TestQuota:
    def test_batch_larger_than_quota_is_rejected_unretryably(
            self, harness):
        harness.http_gateway(api_keys={
            "k-small": ApiKey("k-small", client="small", quota=2)})
        web = harness.http_client(api_key="k-small")
        with pytest.raises(ServiceError, match="split the batch"):
            web.submit(GRID)  # 3 points can never fit a 2-point quota
        assert web.last_submit_rejections == 0  # not backpressure

    def test_quota_breach_is_429_with_retry_after(self, make_harness):
        harness = make_harness(service_class=SlowService)
        gateway = harness.http_gateway(api_keys={
            "k-alice": ApiKey("k-alice", client="alice", quota=3)})
        web = harness.http_client(api_key="k-alice")
        web.submit(GRID)  # fills the quota while the points evaluate
        status, headers, body = raw(
            gateway, "POST", "/v1/jobs",
            headers={"Authorization": "Bearer k-alice",
                     "Content-Type": "application/json"},
            body=submit_body(GRID[:1]))
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        document = json.loads(body.decode("utf-8"))
        assert document["retry_after"] > 0
        assert "quota" in document["error"]

    def test_client_retries_quota_breach_to_success(self,
                                                    make_harness):
        harness = make_harness(service_class=SlowService)
        harness.http_gateway(api_keys={
            "k-alice": ApiKey("k-alice", client="alice", quota=3)})
        web = harness.http_client(api_key="k-alice",
                                  retry_budget=30.0, retry_seed=7)
        first = web.submit(GRID)
        second = web.submit(GRID[:1])  # over quota until first drains
        assert web.last_submit_rejections >= 1
        results = web.collect(second)
        assert len(results) == 1 and results[0].error is None
        web.collect(first)


class TestRoutesAndErrors:
    def test_unknown_job_404_and_unknown_path_404(self, harness):
        gateway = harness.http_gateway()
        assert raw(gateway, "GET", "/v1/jobs/job-999")[0] == 404
        assert raw(gateway, "GET", "/v2/ping")[0] == 404
        assert raw(gateway, "GET", "/v1/nope")[0] == 404

    def test_expired_job_is_410_not_404(self, make_harness):
        harness = make_harness(job_ttl=0.05)
        web = harness.http_client()
        gateway = harness.http_gateway()
        job = web.submit(GRID[:1])
        web.collect(job)
        time.sleep(0.15)
        status, _, body = raw(gateway, "GET", "/v1/jobs/%s" % job)
        assert status == 410
        assert "expired" in json.loads(body.decode("utf-8"))["error"]

    def test_method_mismatches_are_405_with_allow(self, harness):
        gateway = harness.http_gateway()
        web = harness.http_client()
        job = web.submit(GRID[:1])
        status, headers, _ = raw(gateway, "DELETE", "/v1/ping")
        assert (status, headers["Allow"]) == (405, "GET")
        status, headers, _ = raw(gateway, "DELETE", "/v1/jobs")
        assert (status, headers["Allow"]) == (405, "GET, POST")
        status, headers, _ = raw(gateway, "POST",
                                 "/v1/jobs/%s" % job, body="{}",
                                 headers={"Content-Length": "2"})
        assert (status, headers["Allow"]) == (405, "GET, DELETE")

    def test_body_plumbing_411_413_400(self, harness):
        gateway = harness.http_gateway()
        from repro.service import protocol
        status, _, _ = raw(gateway, "POST", "/v1/jobs",
                           headers={"Content-Length": "oops"})
        assert status == 411
        status, _, _ = raw(
            gateway, "POST", "/v1/jobs",
            headers={"Content-Length":
                     str(protocol.MAX_LINE_BYTES + 1)})
        assert status == 413
        status, _, _ = raw(gateway, "POST", "/v1/jobs",
                           body="not json",
                           headers={"Content-Length": "8"})
        assert status == 400
        status, _, _ = raw(gateway, "POST", "/v1/jobs", body="[]",
                           headers={"Content-Length": "2"})
        assert status == 400

    def test_jobs_listing_and_cancel(self, make_harness):
        harness = make_harness(service_class=SlowService)
        web = harness.http_client()
        job = web.submit(GRID)
        assert any(entry["job"] == job for entry in web.jobs())
        final = web.cancel(job)
        assert final["state"] in ("cancelled", "done")


class TestApiKeyFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(json.dumps({
            "k-a": "alice",
            "k-b": {"client": "bob", "weight": 3, "quota": 8}}))
        keys = load_api_keys(str(path))
        assert keys["k-a"].client == "alice"
        assert keys["k-a"].weight == 1 and keys["k-a"].quota is None
        assert (keys["k-b"].client, keys["k-b"].weight,
                keys["k-b"].quota) == ("bob", 3, 8)

    @pytest.mark.parametrize("payload, message", [
        ("[]", "non-empty JSON object"),
        ("{}", "non-empty JSON object"),
        ("not json", "not valid JSON"),
        (json.dumps({"k": 7}), "client label or an object"),
        (json.dumps({"k": {"client": "c", "color": "red"}}),
         "unknown field"),
        (json.dumps({"k": {"client": "c", "weight": 0}}),
         "weight must be"),
        (json.dumps({"k": {"client": "c", "quota": 0}}),
         "quota must be"),
        (json.dumps({"k": {}}), "client label"),
    ])
    def test_malformed_files_are_loud(self, tmp_path, payload,
                                      message):
        path = tmp_path / "keys.json"
        path.write_text(payload)
        with pytest.raises(ReproError, match=message):
            load_api_keys(str(path))

    def test_missing_file_is_loud(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_api_keys(str(tmp_path / "absent.json"))
