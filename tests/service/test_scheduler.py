"""Unit tests for the queue's scheduling policies and admission/GC.

The policies are plain synchronous data structures (the asyncio side
only supplies the blocking), so they are pinned here directly: exact
pick order for fifo / sjf / fair, weighted rotation, admission-cap
rejections carrying ``retry_after``, depth accounting and the
finished-job GC (TTL + retention bound + "expired" memory).
"""

import asyncio

import pytest

from repro.errors import ReproError
from repro.service.queue import (
    FairScheduler,
    FifoScheduler,
    JobQueue,
    QueueFullError,
    SmallestJobFirstScheduler,
    SCHEDULERS,
)


class StubResult:
    """The slice of :class:`PointResult` the job bookkeeping reads."""

    error = None


class StubJob:
    """The slice of :class:`Job` the schedulers read."""

    def __init__(self, name, points, client="", weight=1):
        self.id = name
        self.points = [None] * points
        self.client = client
        self.weight = weight


def drain(scheduler):
    """Every remaining pick as ``(job id, index)`` pairs."""
    picks = []
    while True:
        unit = scheduler.pick()
        if unit is None:
            return picks
        job, index = unit
        picks.append((job.id, index))


class TestFifo:
    def test_submission_order(self):
        scheduler = FifoScheduler()
        scheduler.add(StubJob("a", 2))
        scheduler.add(StubJob("b", 1))
        assert drain(scheduler) == [("a", 0), ("a", 1), ("b", 0)]

    def test_empty_pick_is_none(self):
        assert FifoScheduler().pick() is None


class TestSmallestJobFirst:
    def test_small_job_preempts_a_big_backlog(self):
        scheduler = SmallestJobFirstScheduler()
        scheduler.add(StubJob("big", 5))
        scheduler.add(StubJob("tiny", 1))
        scheduler.add(StubJob("mid", 3))
        picks = drain(scheduler)
        assert picks[0] == ("tiny", 0)
        assert picks[1:4] == [("mid", 0), ("mid", 1), ("mid", 2)]
        assert picks[4:] == [("big", index) for index in range(5)]

    def test_ties_break_by_submission_order(self):
        scheduler = SmallestJobFirstScheduler()
        scheduler.add(StubJob("first", 2))
        scheduler.add(StubJob("second", 2))
        assert drain(scheduler) == [("first", 0), ("first", 1),
                                    ("second", 0), ("second", 1)]

    def test_late_small_job_jumps_a_draining_big_one(self):
        scheduler = SmallestJobFirstScheduler()
        scheduler.add(StubJob("big", 4))
        assert scheduler.pick()[0].id == "big"
        scheduler.add(StubJob("tiny", 1))
        assert scheduler.pick()[0].id == "tiny"
        assert [job for job, _ in drain(scheduler)] == ["big"] * 3


class TestFair:
    def test_round_robin_between_clients(self):
        scheduler = FairScheduler()
        scheduler.add(StubJob("a", 3, client="alice"))
        scheduler.add(StubJob("b", 3, client="bob"))
        picks = [job for job, _ in drain(scheduler)]
        assert picks == ["a", "b", "a", "b", "a", "b"]

    def test_weight_gives_a_client_a_larger_share(self):
        scheduler = FairScheduler()
        scheduler.add(StubJob("a", 4, client="alice", weight=1))
        scheduler.add(StubJob("b", 4, client="bob", weight=2))
        picks = [job for job, _ in drain(scheduler)]
        assert picks == ["a", "b", "b", "a", "b", "b", "a", "a"]

    def test_jobs_of_one_client_stay_fifo(self):
        scheduler = FairScheduler()
        scheduler.add(StubJob("a1", 2, client="alice"))
        scheduler.add(StubJob("a2", 2, client="alice"))
        assert [job for job, _ in drain(scheduler)] \
            == ["a1", "a1", "a2", "a2"]

    def test_one_saturating_client_cannot_starve_another(self):
        scheduler = FairScheduler()
        scheduler.add(StubJob("flood", 100, client="bulk"))
        assert scheduler.pick()[0].id == "flood"
        scheduler.add(StubJob("probe", 1, client="interactive"))
        picks = [scheduler.pick()[0].id for _ in range(2)]
        assert "probe" in picks

    def test_idle_client_reenters_at_the_tail(self):
        scheduler = FairScheduler()
        scheduler.add(StubJob("a", 1, client="alice"))
        scheduler.add(StubJob("b", 2, client="bob"))
        assert drain(scheduler) == [("a", 0), ("b", 0), ("b", 1)]
        scheduler.add(StubJob("b2", 1, client="bob"))
        scheduler.add(StubJob("a2", 1, client="alice"))
        assert drain(scheduler) == [("b2", 0), ("a2", 0)]


class TestJobQueueAdmission:
    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_unknown_scheduler_is_loud(self):
        with pytest.raises(ReproError, match="unknown scheduler"):
            JobQueue(scheduler="lifo")

    def test_scheduler_registry_names(self):
        assert set(SCHEDULERS) == {"fifo", "sjf", "fair"}

    def test_over_cap_submission_is_rejected_with_retry_after(self):
        async def main():
            queue = JobQueue(max_pending=3, retry_after=0.5)
            queue.submit([1, 2])
            with pytest.raises(QueueFullError) as excinfo:
                queue.submit([3, 4])
            assert excinfo.value.retry_after == 0.5
            assert "cap" in str(excinfo.value)
            # The rejected batch queued nothing.
            assert len(queue.jobs) == 1
            assert queue.depth == 2
            # An in-cap batch is still welcome.
            queue.submit([3])
            assert queue.depth == 3

        self.run(main())

    def test_batch_larger_than_the_cap_is_never_retryable(self):
        """Regression: a batch that exceeds the cap outright can never
        be admitted, so it must reject without a retry hint — a
        QueueFullError would make the client burn its whole backoff
        budget on guaranteed-futile retries."""
        async def main():
            queue = JobQueue(max_pending=2)
            with pytest.raises(ReproError) as excinfo:
                queue.submit([1, 2, 3])
            assert not isinstance(excinfo.value, QueueFullError)
            assert "never be admitted" in str(excinfo.value)
            assert len(queue.jobs) == 0

        self.run(main())

    def test_cancel_racing_a_started_point_counts_it_once(self):
        """Regression: a point that went RUNNING between cancel()'s
        pending snapshot and the locked mark must stay RUNNING — a
        double termination would stream the index twice and drive the
        queue depth negative, silently loosening the admission cap."""
        async def main():
            queue = JobQueue(max_pending=10)
            job = queue.submit(["p", "q"])
            job.states[0] = "running"  # the scheduler got there first
            marked = await job.mark_cancelled([0, 1])  # stale snapshot
            assert marked == 1
            assert job.states[0] == "running"
            assert job.order == [1]
            assert queue.depth == 1
            await job.record(0, StubResult())
            assert queue.depth == 0
            assert job.order == [1, 0]
            # And a record losing the race is a no-op, not a rewrite.
            await job.record(1, StubResult())
            assert job.order == [1, 0]
            assert queue.depth == 0

        self.run(main())

    def test_depth_drops_as_points_terminate(self):
        async def main():
            queue = JobQueue(max_pending=2)
            job = queue.submit(["p", "q"])
            assert queue.depth == 2
            await queue.next_unit()
            await job.record(0, StubResult())
            assert queue.depth == 1
            await queue.cancel(job.id)
            assert queue.depth == 0
            assert job.finished_at is not None
            # Room again: the cap tracks in-flight work, not history.
            queue.submit(["r", "s"])

        self.run(main())


class TestJobGC:
    def run(self, coroutine):
        return asyncio.run(coroutine)

    async def finished_job(self, queue, points=1):
        job = queue.submit([object()] * points)
        for index in range(points):
            await queue.next_unit()
            await job.record(index, StubResult())
        return job

    def test_ttl_expires_finished_jobs(self):
        async def main():
            queue = JobQueue(job_ttl=10.0)
            job = await self.finished_job(queue)
            base = job.finished_at
            assert queue.collect_garbage(now=base + 5.0) == 0
            assert queue.collect_garbage(now=base + 10.5) == 1
            assert job.id not in queue.jobs
            with pytest.raises(ReproError, match="expired"):
                queue.get(job.id)

        self.run(main())

    def test_running_jobs_are_never_collected(self):
        async def main():
            queue = JobQueue(job_ttl=0.0, max_finished=0)
            job = queue.submit([object(), object()])
            await queue.next_unit()
            await job.record(0, object())  # half done: not terminal
            assert queue.collect_garbage(now=job.finished_at) == 0
            assert job.id in queue.jobs

        self.run(main())

    def test_retention_bound_evicts_oldest_finished_first(self):
        async def main():
            queue = JobQueue(max_finished=2)
            jobs = [await self.finished_job(queue) for _ in range(4)]
            # Force distinct finish stamps for a deterministic order.
            for offset, job in enumerate(jobs):
                job.finished_at = 100.0 + offset
            assert queue.collect_garbage(now=200.0) == 2
            assert set(queue.jobs) == {jobs[2].id, jobs[3].id}

        self.run(main())

    def test_status_reports_time_to_expiry(self):
        async def main():
            queue = JobQueue(job_ttl=10.0)
            job = await self.finished_job(queue)
            document = queue.status(job, now=job.finished_at + 4.0)
            assert document["expires_in"] == pytest.approx(6.0)
            # No TTL configured -> no expiry forecast.
            untracked = JobQueue()
            job2 = await self.finished_job(untracked)
            assert untracked.status(job2)["expires_in"] is None

        self.run(main())

    def test_unknown_job_stays_unknown(self):
        queue = JobQueue()
        with pytest.raises(ReproError, match="unknown job"):
            queue.get("job-404")
