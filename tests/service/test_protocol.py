"""Tests for the service wire protocol (framing and validation)."""

import json

import pytest

from repro.engine import DesignPoint
from repro.io.serialize import design_point_to_dict
from repro.service import protocol
from repro.service.protocol import (
    MAX_BATCH_POINTS,
    MAX_CLIENT_CHARS,
    MAX_WEIGHT,
    ProtocolError,
    auth_token,
    decode_request,
    encode,
    job_name,
    submission_meta,
    submission_points,
)


def line(message):
    return json.dumps(message).encode("utf-8")


class TestFraming:
    def test_encode_is_one_line(self):
        data = encode({"op": "ping"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert json.loads(data) == {"op": "ping"}

    def test_decode_roundtrip(self):
        request = decode_request(encode({"op": "status", "job": "job-1"}))
        assert request["op"] == "status"
        assert request["job"] == "job-1"

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode_request(b"not json at all\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_request(b"[1, 2, 3]\n")

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(line({"op": "launch-missiles"}))

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError):
            decode_request(line({"points": []}))

    def test_rejects_oversized_line(self):
        huge = line({"op": "ping", "pad": "x" * protocol.MAX_LINE_BYTES})
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_request(huge)

    def test_ok_and_error_builders(self):
        assert protocol.ok(job="job-1") == {"ok": True, "job": "job-1"}
        rejected = protocol.error(ProtocolError("nope"))
        assert rejected["ok"] is False
        assert rejected["error"] == "nope"


class TestSubmission:
    def request(self, points):
        return {"op": "submit", "points": points}

    def test_accepts_valid_points(self):
        points = [design_point_to_dict(DesignPoint(app="hal")),
                  design_point_to_dict(DesignPoint(app="man",
                                                   area=4000.0))]
        decoded = submission_points(self.request(points))
        assert decoded == [DesignPoint(app="hal"),
                           DesignPoint(app="man", area=4000.0)]

    def test_rejects_missing_points(self):
        with pytest.raises(ProtocolError, match="points"):
            submission_points({"op": "submit"})

    def test_rejects_empty_batch(self):
        with pytest.raises(ProtocolError):
            submission_points(self.request([]))

    def test_rejects_oversized_batch(self):
        point = design_point_to_dict(DesignPoint(app="hal"))
        with pytest.raises(ProtocolError, match="batch cap"):
            submission_points(self.request(
                [point] * (MAX_BATCH_POINTS + 1)))

    def test_rejects_structurally_bad_point_by_position(self):
        good = design_point_to_dict(DesignPoint(app="hal"))
        bad = dict(good, policy="greedy")
        with pytest.raises(ProtocolError, match=r"points\[1\]"):
            submission_points(self.request([good, bad]))

    def test_accepts_unknown_app(self):
        """Unknown apps are a per-point evaluation error, not a
        submission rejection."""
        point = design_point_to_dict(DesignPoint(app="mystery"))
        assert submission_points(self.request([point]))[0].app \
            == "mystery"


class TestSubmissionMeta:
    def test_defaults_to_anonymous_unit_weight(self):
        assert submission_meta({"op": "submit"}) == ("", 1)
        assert submission_meta({"op": "submit", "client": None}) \
            == ("", 1)

    def test_accepts_client_and_weight(self):
        request = {"op": "submit", "client": "alice", "weight": 3}
        assert submission_meta(request) == ("alice", 3)

    def test_rejects_bad_client(self):
        for client in (42, ["a"], "x" * (MAX_CLIENT_CHARS + 1)):
            with pytest.raises(ProtocolError, match="client"):
                submission_meta({"op": "submit", "client": client})

    def test_rejects_bad_weight(self):
        for weight in (0, -1, MAX_WEIGHT + 1, 1.5, "2", True):
            with pytest.raises(ProtocolError, match="weight"):
                submission_meta({"op": "submit", "weight": weight})


class TestAuthToken:
    def test_extracts_token(self):
        assert auth_token({"op": "auth", "token": "sesame"}) \
            == "sesame"

    def test_rejects_missing_or_bad_token(self):
        for request in ({"op": "auth"}, {"op": "auth", "token": ""},
                        {"op": "auth", "token": 42}):
            with pytest.raises(ProtocolError, match="token"):
                auth_token(request)

    def test_auth_is_a_known_op(self):
        request = decode_request(encode({"op": "auth", "token": "t"}))
        assert request["op"] == "auth"


class TestErrorFields:
    def test_error_carries_structured_detail(self):
        rejected = protocol.error("queue full", retry_after=0.5)
        assert rejected == {"ok": False, "error": "queue full",
                            "retry_after": 0.5}


class TestJobName:
    def test_extracts_job(self):
        assert job_name({"op": "status", "job": "job-7"}) == "job-7"

    def test_rejects_missing_or_bad_job(self):
        for request in ({"op": "status"}, {"op": "status", "job": 7},
                        {"op": "status", "job": ""}):
            with pytest.raises(ProtocolError):
                job_name(request)
