"""Raw-wire tests for the gateway's HTML endpoints (ISSUE 10).

``GET /v1/jobs/{id}/report`` and ``GET /v1/dashboard`` serve the same
self-contained documents ``lycos-repro report`` writes, behind the
gateway's existing auth and strong-ETag/304 machinery.  The wire
matters here: content types, Cache-Control lifecycles, 304 bodies.
"""

import time

import pytest

from repro.engine import DesignPoint
from repro.service.client import ServiceError
from repro.service.http import ApiKey
from repro.service.server import ExplorationService

from tests.service.test_http import GRID, raw


class SlowService(ExplorationService):
    point_delay = 0.15

    def _evaluate_local(self, point):
        time.sleep(self.point_delay)
        return super()._evaluate_local(point)


def finished_job(harness):
    client = harness.client()
    job = client.submit(GRID)
    client.collect(job)
    return job


class TestJobReport:
    def test_terminal_report_is_selfcontained_html(self, harness):
        gateway = harness.http_gateway()
        job = finished_job(harness)
        status, headers, body = raw(
            gateway, "GET", "/v1/jobs/%s/report" % job)
        assert status == 200
        assert headers["Content-Type"] == "text/html; charset=utf-8"
        page = body.decode("utf-8")
        assert page.startswith("<!DOCTYPE html>")
        assert "http://" not in page and "https://" not in page
        assert "<h2>Job</h2>" in page          # status projection
        assert "Pareto front" in page
        assert "hypervolume" in page
        assert "Design points" in page
        assert "Schedule Gantt: straight" in page
        assert "Store analytics" in page

    def test_if_none_match_revalidates_for_free(self, harness):
        gateway = harness.http_gateway()
        job = finished_job(harness)
        path = "/v1/jobs/%s/report" % job
        status, headers, first = raw(gateway, "GET", path)
        assert status == 200
        etag = headers["ETag"]
        assert etag.startswith('"')

        status, headers, body = raw(
            gateway, "GET", path, headers={"If-None-Match": etag})
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

        # A stale validator pays a full 200 with identical bytes.
        status, headers, body = raw(
            gateway, "GET", path, headers={"If-None-Match": '"zzz"'})
        assert status == 200
        assert body == first
        assert headers["ETag"] == etag

    def test_cache_control_lifecycle(self, make_harness):
        harness = make_harness(service_class=SlowService)
        gateway = harness.http_gateway()
        client = harness.client()
        job = client.submit(GRID)
        status, headers, _ = raw(
            gateway, "GET", "/v1/jobs/%s/report" % job)
        assert status == 200
        assert headers["Cache-Control"] == "no-cache"
        client.collect(job)
        status, headers, _ = raw(
            gateway, "GET", "/v1/jobs/%s/report" % job)
        assert status == 200
        assert "immutable" in headers["Cache-Control"]

    def test_unknown_job_is_404(self, harness):
        gateway = harness.http_gateway()
        status, _, _ = raw(gateway, "GET", "/v1/jobs/nope/report")
        assert status == 404


class TestDashboard:
    def test_dashboard_lists_service_and_jobs(self, harness):
        gateway = harness.http_gateway()
        job = finished_job(harness)
        status, headers, body = raw(gateway, "GET", "/v1/dashboard")
        assert status == 200
        assert headers["Content-Type"] == "text/html; charset=utf-8"
        assert headers["Cache-Control"] == "no-cache"
        page = body.decode("utf-8")
        assert "Exploration service dashboard" in page
        assert job in page
        assert "http://" not in page and "https://" not in page

    def test_dashboard_304_when_nothing_changed(self, harness):
        gateway = harness.http_gateway()
        finished_job(harness)
        status, headers, _ = raw(gateway, "GET", "/v1/dashboard")
        assert status == 200
        etag = headers["ETag"]
        status, _, body = raw(
            gateway, "GET", "/v1/dashboard",
            headers={"If-None-Match": etag})
        assert status == 304
        assert body == b""

    def test_new_job_changes_the_etag(self, harness):
        gateway = harness.http_gateway()
        finished_job(harness)
        _, headers, _ = raw(gateway, "GET", "/v1/dashboard")
        etag_before = headers["ETag"]
        finished_job(harness)
        status, headers, _ = raw(
            gateway, "GET", "/v1/dashboard",
            headers={"If-None-Match": etag_before})
        assert status == 200
        assert headers["ETag"] != etag_before


class TestAuthAndClient:
    def test_html_endpoints_require_the_key(self, make_harness):
        harness = make_harness()
        gateway = harness.http_gateway(
            api_keys={"k-1": ApiKey("k-1", "alice")})
        for path in ("/v1/dashboard", "/v1/jobs/x/report"):
            status, _, _ = raw(gateway, "GET", path)
            assert status == 401
        status, _, _ = raw(
            gateway, "GET", "/v1/dashboard",
            headers={"Authorization": "Bearer k-1"})
        assert status == 200

    def test_client_report_and_dashboard(self, harness):
        harness.http_gateway()
        web = harness.http_client()
        job = web.submit(GRID)
        web.collect(job)
        page = web.report(job)
        assert page.startswith("<!DOCTYPE html>")
        assert "Pareto front" in page
        dashboard = web.dashboard()
        assert "Exploration service dashboard" in dashboard
        with pytest.raises(ServiceError):
            web.report("missing-job")

    def test_report_matches_raw_wire_bytes(self, harness):
        gateway = harness.http_gateway()
        web = harness.http_client()
        job = finished_job(harness)
        _, _, body = raw(gateway, "GET", "/v1/jobs/%s/report" % job)
        assert web.report(job) == body.decode("utf-8")
