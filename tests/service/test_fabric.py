"""Distributed-fabric tier: N-engine parity under fault injection.

The acceptance bar (ISSUE 7): a coordinator with N joined engines
returns job results bit-identical to the single-engine service — same
allocations, same speed-ups, same completion accounting — no matter
how the roster splits the points, and no matter which engines die
mid-lease or which delta frames the wire eats.  Every test drives real
sockets: real :class:`~repro.service.worker.EngineWorker` instances
(on threads — the worker is synchronous by design) joined to a real
coordinator harness, plus hand-rolled protocol conversations where a
fault must be injected deterministically.
"""

import json
import socket
import threading
import time

import pytest

from repro.engine import DesignPoint
from repro.service import protocol
from repro.service.server import ExplorationService
from repro.service.worker import EngineWorker

from tests.service.test_service import (
    GRID_A,
    POISON,
    assert_matches_serial,
    serial_results,
)

#: Two apps -> two affinity keys, so a two-engine roster genuinely
#: splits the work instead of routing everything to one engine.
FABRIC_GRID = (DesignPoint(app="straight", area=3000.0, quanta=80),
               DesignPoint(app="hal", area=20000.0, quanta=80),
               DesignPoint(app="straight", area=5000.0, quanta=80),
               DesignPoint(app="hal", area=30000.0, quanta=80),
               DesignPoint(app="straight", area=7500.0, quanta=80))


class WorkerThread:
    """One EngineWorker on a daemon thread, joined to a harness."""

    def __init__(self, harness, label, slots=1, cache_dir=None):
        self.worker = EngineWorker("127.0.0.1", harness.port,
                                   token=harness.token, label=label,
                                   slots=slots, cache_dir=cache_dir,
                                   announce=None)
        self.thread = threading.Thread(target=self.worker.run,
                                       daemon=True)
        self.thread.start()

    def join(self, timeout=30):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "worker never wound down"


def wait_for_engines(client, count, kind=None, timeout=10.0):
    """Poll ping until ``count`` live engines (of ``kind``) exist."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        engines = [engine for engine in client.ping()["engines"]
                   if engine["alive"]
                   and (kind is None or engine["kind"] == kind)]
        if len(engines) >= count:
            return engines
        time.sleep(0.05)
    raise AssertionError("engines never joined")


class RawWorker:
    """A hand-driven protocol conversation for fault injection."""

    def __init__(self, harness, label, slots=2):
        self.sock = socket.create_connection(
            ("127.0.0.1", harness.port), timeout=30)
        self.stream = self.sock.makefile("rwb")
        if harness.token is not None:
            assert self.request({"op": "auth",
                                 "token": harness.token})["ok"]
        joined = self.request({"op": "join", "engine": label,
                               "slots": slots})
        assert joined["ok"]
        self.engine = joined["engine"]

    def request(self, message):
        self.stream.write(protocol.encode(message))
        self.stream.flush()
        return json.loads(
            self.stream.readline(protocol.MAX_LINE_BYTES + 1))

    def lease(self, max_units=2, wait=5.0):
        return self.request({"op": "lease", "engine": self.engine,
                             "max": max_units, "wait": wait})

    def vanish(self):
        """Die without a word — the mid-lease crash."""
        self.sock.close()


class TestRemoteParity:
    def test_pure_coordinator_with_two_workers(self, make_harness):
        harness = make_harness(local_engines=0)
        workers = [WorkerThread(harness, "wa"),
                   WorkerThread(harness, "wb")]
        client = harness.client()
        engines = wait_for_engines(client, 2, kind="remote")
        assert {engine["engine"] for engine in engines} == \
            {"wa", "wb"}
        results = client.collect(client.submit(FABRIC_GRID))
        assert all(result.ok for result in results)
        assert_matches_serial(results, FABRIC_GRID)
        # The points really ran remotely: a pure coordinator has no
        # local engine, and the workers' counters account for all of
        # them.
        engines = client.ping()["engines"]
        assert all(engine["kind"] == "remote" for engine in engines)
        assert sum(engine["done"] for engine in engines) == \
            len(FABRIC_GRID)
        assert sum(engine["deltas_absorbed"]
                   for engine in engines) >= 1
        harness.stop()
        for worker in workers:
            worker.join()

    def test_mixed_local_and_remote_engines(self, make_harness):
        harness = make_harness(local_engines=1)
        worker = WorkerThread(harness, "helper")
        client = harness.client()
        wait_for_engines(client, 1, kind="remote")
        results = client.collect(client.submit(FABRIC_GRID))
        assert_matches_serial(results, FABRIC_GRID)
        kinds = {engine["kind"]
                 for engine in client.ping()["engines"]}
        assert kinds == {"local", "remote"}
        harness.stop()
        worker.join()

    def test_multiple_local_engines(self, make_harness):
        harness = make_harness(local_engines=3, workers=3)
        client = harness.client()
        engines = client.ping()["engines"]
        assert [engine["engine"] for engine in engines] == \
            ["local-1", "local-2", "local-3"]
        results = client.collect(client.submit(FABRIC_GRID))
        assert_matches_serial(results, FABRIC_GRID)
        assert sum(engine["done"] for engine
                   in client.ping()["engines"]) == len(FABRIC_GRID)

    def test_remote_poison_point_fails_per_point(self, make_harness):
        harness = make_harness(local_engines=0)
        worker = WorkerThread(harness, "w")
        client = harness.client()
        wait_for_engines(client, 1, kind="remote")
        grid = (GRID_A[0], POISON, GRID_A[1])
        results = client.collect(client.submit(grid))
        assert results[1].error is not None
        assert results[0].ok and results[2].ok
        assert_matches_serial(results, grid)
        harness.stop()
        worker.join()


class TestAffinity:
    def test_second_submission_is_affinity_warm(self, make_harness):
        # A long steal delay makes placement purely affine, so the
        # engine split is deterministic: every point of one program
        # lands on the engine that compiled it, and the second
        # submission replays from that engine's warm cache.
        harness = make_harness(local_engines=0, steal_delay=30.0)
        workers = [WorkerThread(harness, "wa"),
                   WorkerThread(harness, "wb")]
        client = harness.client()
        wait_for_engines(client, 2, kind="remote")
        client.collect(client.submit(FABRIC_GRID))
        first = {engine["engine"]: engine["done"]
                 for engine in client.ping()["engines"]}
        warm_job = client.submit(FABRIC_GRID)
        client.collect(warm_job)
        second = {engine["engine"]: engine["done"]
                  for engine in client.ping()["engines"]}
        # Affinity: each engine's share of the rerun equals its share
        # of the first run — points re-route to the engine that
        # already holds their program.
        assert {name: count * 2 for name, count in first.items()} == \
            second
        # And that placement is what makes the rerun warm remotely.
        assert client.status(warm_job)["hit_rate"] > 0.8
        harness.stop()
        for worker in workers:
            worker.join()


class TestFaultInjection:
    def test_worker_death_mid_lease_requeues(self, make_harness):
        harness = make_harness(local_engines=0, engine_timeout=30.0)
        client = harness.client()
        job = client.submit(FABRIC_GRID)  # queued; no engines yet
        doomed = RawWorker(harness, "doomed", slots=2)
        leased = doomed.lease(max_units=2, wait=10.0)["points"]
        assert len(leased) == 2  # really held mid-lease
        doomed.vanish()
        # The survivor joins after the crash and must still see every
        # point — the dead engine's leases and lane re-queue onto it.
        survivor = WorkerThread(harness, "survivor")
        results = client.collect(job)
        assert all(result.ok for result in results)
        assert_matches_serial(results, FABRIC_GRID)
        roster = {engine["engine"]: engine
                  for engine in client.ping()["engines"]}
        assert roster["doomed"]["alive"] is False
        assert roster["doomed"]["in_flight"] == 0
        assert roster["survivor"]["done"] == len(FABRIC_GRID)
        harness.stop()
        survivor.join()

    def test_delta_frame_drop_recovers(self, make_harness):
        # The wire eating a delta frame and the connection dying are
        # the same event (frames ride one ordered TCP stream), so the
        # injection point is the coordinator's delta handler: the
        # first frame "never arrives" and the link breaks, exactly as
        # a mid-send worker crash looks from the coordinator.
        class DropFirstDelta(ExplorationService):
            dropped = 0

            async def _handle_delta(self, request, writer, conn):
                if not type(self).dropped:
                    type(self).dropped += 1
                    raise ConnectionResetError("injected frame drop")
                await super()._handle_delta(request, writer, conn)

        # steal_delay=0 guarantees the casualty gets a unit no matter
        # where rendezvous hashing lands the two programs: the local
        # pump holds one point in flight while another waits on its
        # lane, and an instantly-ripe lane unit is stolen by the idle
        # worker on its first lease.  (Affinity alone is hash luck —
        # any library change reshuffles the program fingerprints.)
        DropFirstDelta.dropped = 0
        harness = make_harness(service_class=DropFirstDelta,
                               local_engines=1, steal_delay=0.0)
        client = harness.client()
        job = client.submit(FABRIC_GRID)
        casualty = WorkerThread(harness, "casualty")
        results = client.collect(job)
        assert DropFirstDelta.dropped == 1  # the injection fired
        assert all(result.ok for result in results)
        assert_matches_serial(results, FABRIC_GRID)
        casualty.join()
        harness.stop()

    def test_coordinator_restart_with_warm_store(self, tmp_path,
                                                 make_harness):
        # Remote deltas must actually reach the coordinator's disk:
        # run everything on remote engines, restart the coordinator on
        # the same store with no remote help, and the rerun replays
        # warm — compiled programs included.
        shared = str(tmp_path / "fabric-store")
        first = make_harness(cache_dir=shared, local_engines=0)
        worker = WorkerThread(first, "w")
        client = first.client()
        wait_for_engines(client, 1, kind="remote")
        cold = client.collect(client.submit(FABRIC_GRID))
        first.stop()
        worker.join()
        second = make_harness(cache_dir=shared, local_engines=1)
        client = second.client()
        warm_job = client.submit(FABRIC_GRID)
        warm = client.collect(warm_job)
        assert [r.speedup for r in warm] == \
            [r.speedup for r in cold]
        assert client.status(warm_job)["hit_rate"] > 0.8
        # The frontend compiles happened on the worker and travelled
        # home as program-store entries; the restarted coordinator
        # re-compiles nothing.
        assert client.ping()["program_compiles"] == 0

    def test_malformed_delta_cannot_corrupt_job_state(self,
                                                      make_harness):
        harness = make_harness(local_engines=0)
        client = harness.client()
        job = client.submit(GRID_A)
        rogue = RawWorker(harness, "rogue", slots=1)
        leased = rogue.lease(max_units=1, wait=10.0)["points"]
        assert leased
        unit = leased[0]
        # A result for a unit nobody leased to this engine: counted
        # as stale, never recorded.
        from repro.io.serialize import FORMAT_VERSION

        fake = {"kind": "point-result", "version": FORMAT_VERSION,
                "point": unit["point"], "allocation": None,
                "speedup": 9999.0, "datapath_area": 1.0,
                "hw_bsbs": [], "error": None}
        response = rogue.request({
            "op": "delta", "engine": rogue.engine,
            "results": [{"job": unit["job"], "index": 999,
                         "result": fake, "stats": {}}]})
        assert response["ok"]
        assert response["recorded"] == 0 and response["stale"] == 1
        # An undecodable store blob rejects the whole frame — the
        # leased unit's (valid) result inside it is NOT recorded.
        response = rogue.request({
            "op": "delta", "engine": rogue.engine,
            "results": [{"job": unit["job"],
                         "index": unit["index"],
                         "result": fake, "stats": {}}],
            "store": "!!not-base64!!"})
        assert not response["ok"]
        assert client.status(job)["done"] == 0
        # The rogue disconnects; its lease re-queues and an honest
        # worker completes the job bit-identical to serial.
        rogue.vanish()
        honest = WorkerThread(harness, "honest")
        results = client.collect(job)
        assert_matches_serial(results, GRID_A)
        harness.stop()
        honest.join()


class TestRosterObservability:
    def test_single_engine_ping_is_backward_compatible(self, harness):
        info = harness.client().ping()
        # Every pre-fabric field survives with its old meaning...
        for field in ("protocol", "workers", "jobs", "scheduler",
                      "depth", "queue_cap", "program_compiles",
                      "program_store_hits"):
            assert field in info
        # ...and the roster rides alongside: one default local engine.
        assert info["local_engines"] == 1
        (engine,) = info["engines"]
        assert engine["engine"] == "local-1"
        assert engine["kind"] == "local"
        assert engine["alive"] is True
        for field in ("slots", "queued", "in_flight", "done",
                      "stolen", "hits", "misses", "hit_rate",
                      "deltas_absorbed", "delta_entries"):
            assert field in engine

    def test_roster_accounts_per_engine_hit_rates(self, harness):
        client = harness.client()
        client.collect(client.submit(GRID_A))
        (cold,) = client.ping()["engines"]
        client.collect(client.submit(GRID_A))
        (warm,) = client.ping()["engines"]
        assert warm["done"] == 2 * len(GRID_A)
        # The counters are cumulative, so the warm rerun (nearly all
        # hits) pulls the engine's lifetime rate up over the cold run.
        assert warm["hits"] > cold["hits"]
        assert warm["hit_rate"] > cold["hit_rate"]

    def test_heartbeat_requires_a_joined_engine(self, harness):
        raw = RawWorker.__new__(RawWorker)
        raw.sock = socket.create_connection(
            ("127.0.0.1", harness.port), timeout=10)
        raw.stream = raw.sock.makefile("rwb")
        response = raw.request({"op": "engine-heartbeat",
                                "engine": "nobody"})
        assert not response["ok"]
        assert "join" in response["error"]
        raw.vanish()


class TestClientJitter:
    def test_fixed_seed_is_deterministic(self):
        from repro.service.client import ServiceClient

        one = ServiceClient(retry_seed=7)
        two = ServiceClient(retry_seed=7)
        waits = [one._backoff_wait(0.1, attempt)
                 for attempt in range(8)]
        assert waits == [two._backoff_wait(0.1, attempt)
                         for attempt in range(8)]
        # Jitter only shortens: each wait stays within the capped
        # exponential envelope that bounds the retry-budget math.
        for attempt, wait in enumerate(waits):
            ceiling = min(2.0, 0.1 * (2 ** attempt))
            assert 0.5 * ceiling < wait <= ceiling
        # And it actually spreads: not every draw is the ceiling.
        assert any(wait < min(2.0, 0.1 * (2 ** attempt))
                   for attempt, wait in enumerate(waits))

    def test_zero_jitter_restores_the_exact_old_schedule(self):
        from repro.service.client import ServiceClient

        client = ServiceClient(retry_jitter=0.0)
        assert [client._backoff_wait(0.25, attempt)
                for attempt in range(5)] == \
            [0.25, 0.5, 1.0, 2.0, 2.0]

    def test_jitter_out_of_range_rejected(self):
        from repro.errors import ReproError
        from repro.service.client import ServiceClient

        with pytest.raises(ReproError, match="retry_jitter"):
            ServiceClient(retry_jitter=1.5)
