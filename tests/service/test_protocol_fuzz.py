"""Property-based fuzz of the service protocol (seeded, deterministic).

Two tiers over one mutation engine:

* Unit tier — thousands of seeded mutations of valid request lines
  (truncation, junk-byte splices, type swaps, oversized fields,
  split/merged lines) fed straight through the parser/validators:
  every input must either decode or raise :class:`ProtocolError` —
  never any other exception.
* Server tier — the same mutations over real sockets against a live
  service (open and token-protected): the server loop must answer
  every line with a structured error or drop it, stay alive, keep the
  connection serviceable (a trailing ping still answers) and — on the
  token-protected server — create no job state whatsoever.

Everything is seeded ``random.Random``; a failure reproduces exactly.
"""

import json
import random
import socket

from repro.engine import DesignPoint
from repro.io.serialize import FORMAT_VERSION, design_point_to_dict
from repro.service import protocol
from repro.service.protocol import (
    ProtocolError,
    auth_token,
    decode_request,
    decode_store_delta,
    delta_fields,
    engine_name,
    job_name,
    join_fields,
    lease_fields,
    submission_points,
    submission_meta,
)

#: The fuzz submit template uses an unknown app on purpose: if a
#: mutation survives validation and queues a real job, its points fail
#: fast per-point instead of grinding the engine.
FUZZ_POINT = design_point_to_dict(
    DesignPoint(app="zz-no-such-app", area=1000.0, quanta=60))

#: A structurally valid point-result document for the delta template —
#: whether its unit was ever leased is the server's problem (it counts
#: unleased results as stale), the wire shape is the fuzz target here.
FUZZ_RESULT = {"kind": "point-result", "version": FORMAT_VERSION,
               "point": FUZZ_POINT, "allocation": None,
               "speedup": 0.0, "datapath_area": 0.0, "hw_bsbs": [],
               "error": {"kind": "ReproError", "message": "fuzz"}}


def valid_requests():
    """One well-formed request per op (shutdown deliberately absent:
    a lucky mutation must not stop the server under test)."""
    return [
        {"op": "ping"},
        {"op": "submit", "points": [FUZZ_POINT]},
        {"op": "submit", "points": [FUZZ_POINT, FUZZ_POINT],
         "client": "fuzz", "weight": 2},
        {"op": "status", "job": "job-1"},
        {"op": "results", "job": "job-1"},
        {"op": "cancel", "job": "job-1"},
        {"op": "jobs"},
        {"op": "auth", "token": "hunter2"},
        # The fabric ops (ISSUE 7).  The lease waits 0 seconds so a
        # mutation-surviving lease answers immediately instead of
        # long-polling the fuzz connection.
        {"op": "join", "engine": "fuzz-worker", "slots": 2},
        {"op": "lease", "engine": "fuzz-worker", "max": 1, "wait": 0},
        {"op": "delta", "engine": "fuzz-worker",
         "results": [{"job": "job-1", "index": 0,
                      "result": FUZZ_RESULT,
                      "stats": {"alloc": [1, 0]}}],
         "store": protocol.encode_store_delta({"sched": {}})},
        {"op": "delta", "engine": "fuzz-worker", "results": [],
         "store": None},
        {"op": "engine-heartbeat", "engine": "fuzz-worker"},
    ]


#: Replacement values for the type-swap mutator.  No "shutdown": the
#: swap must never accidentally spell the one op that stops the server.
JUNK_VALUES = (None, True, False, 0, -1, 3.5, "", "x", [], [1, 2],
               {}, {"a": 1}, "å∫ç∂", "job-1", [FUZZ_POINT])


def mutate(rng, line):
    """One seeded mutation of an encoded request line."""
    choice = rng.randrange(6)
    if choice in (2, 3):
        # Structural mutators need a parseable document; a line that
        # is already byte-mangled (double mutation) gets bytes again.
        try:
            document = json.loads(line)
        except ValueError:
            choice = 1
    if choice == 0:  # truncation
        return line[:rng.randrange(len(line))] + b"\n"
    if choice == 1:  # junk bytes spliced in (incl. invalid UTF-8)
        position = rng.randrange(len(line))
        junk = bytes(rng.randrange(256)
                     for _ in range(rng.randrange(1, 9)))
        return line[:position] + junk + line[position:]
    if choice == 2:  # type swap on a random field
        key = rng.choice(sorted(document))
        document[key] = rng.choice(JUNK_VALUES)
        return protocol.encode(document)
    if choice == 3:  # oversized field (still under the line cap)
        document["pad"] = "x" * rng.choice((10_000, 200_000))
        return protocol.encode(document)
    if choice == 4:  # split: one request arrives as two lines
        position = rng.randrange(len(line))
        return line[:position] + b"\n" + line[position:]
    # merged: two requests on one line
    return line.rstrip(b"\n") + line


def exercise_validators(request):
    """Run the op-specific validator chain, as the server would."""
    op = request["op"]
    if op == "submit":
        submission_points(request)
        submission_meta(request)
    elif op in ("status", "results", "cancel"):
        job_name(request)
    elif op == "auth":
        auth_token(request)
    elif op == "join":
        join_fields(request)
    elif op == "lease":
        engine_name(request)
        lease_fields(request)
    elif op == "engine-heartbeat":
        engine_name(request)
    elif op == "delta":
        engine_name(request)
        _, blob = delta_fields(request)
        if blob is not None:
            decode_store_delta(blob)


class TestUnitFuzz:
    ROUNDS = 4000

    def test_parser_only_ever_raises_protocol_error(self):
        rng = random.Random(0xC0FFEE)
        templates = [protocol.encode(request)
                     for request in valid_requests()]
        for _ in range(self.ROUNDS):
            payload = mutate(rng, rng.choice(templates))
            for piece in payload.split(b"\n"):
                if not piece:
                    continue
                try:
                    request = decode_request(piece + b"\n")
                except ProtocolError:
                    continue  # structured rejection: the contract
                try:
                    exercise_validators(request)
                except ProtocolError:
                    pass  # ditto

    def test_double_mutation_still_contained(self):
        rng = random.Random(20260730)
        templates = [protocol.encode(request)
                     for request in valid_requests()]
        for _ in range(self.ROUNDS // 2):
            payload = mutate(rng, mutate(rng, rng.choice(templates)))
            for piece in payload.split(b"\n"):
                if not piece:
                    continue
                try:
                    exercise_validators(decode_request(piece + b"\n"))
                except ProtocolError:
                    pass


def send_then_ping(port, payload, ping_line, timeout=20.0):
    """Fire a fuzz payload then a ping on one connection.

    Returns True when the trailing ping was answered (the connection
    stayed serviceable); False when the server dropped the link — the
    only in-protocol reason being a framing violation.  Either way
    every received line must be structured JSON.
    """
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        if not payload.endswith(b"\n"):
            payload += b"\n"
        sock.sendall(payload + ping_line)
        buffered = b""
        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                raise AssertionError(
                    "server went mute after %r" % payload[:120])
            if not chunk:
                return False  # dropped; caller reconnects
            buffered += chunk
            # The tail past the last newline is a partial reply line;
            # keep it buffered for the next chunk.
            *complete, buffered = buffered.split(b"\n")
            for line in complete:
                if not line:
                    continue
                document = json.loads(line)  # every reply is JSON
                assert isinstance(document, dict)
                assert "ok" in document
                if document.get("protocol") is not None:
                    return True  # the trailing ping got through


class TestServerFuzz:
    ROUNDS = 80

    def test_open_server_survives_and_stays_serviceable(
            self, harness):
        rng = random.Random(0xF52)
        templates = [protocol.encode(request)
                     for request in valid_requests()]
        ping_line = protocol.encode({"op": "ping"})
        for _ in range(self.ROUNDS):
            payload = b"".join(
                mutate(rng, rng.choice(templates))
                for _ in range(rng.randrange(1, 4)))
            send_then_ping(harness.port, payload, ping_line)
        # The service is intact end-to-end, not just per-connection.
        assert harness.client().ping()["ok"]

    def test_token_server_yields_no_job_state_to_fuzz(
            self, make_harness):
        harness = make_harness(token="fuzz-proof-token")
        rng = random.Random(0xA07)
        templates = [protocol.encode(request)
                     for request in valid_requests()]
        for _ in range(self.ROUNDS // 2):
            payload = mutate(rng, rng.choice(templates))
            if not payload.endswith(b"\n"):
                payload += b"\n"
            with socket.create_connection(
                    ("127.0.0.1", harness.port), timeout=20) as sock:
                sock.sendall(payload)
                # Half-close: the server sees EOF after the payload
                # and ends the conversation, so the drain below never
                # waits out a timeout on a kept-open connection.
                sock.shutdown(socket.SHUT_WR)
                while True:  # drain whatever the server answers
                    if not sock.recv(65536):
                        break
        # No mutation authenticated, so nothing was ever queued — and
        # no fuzzed join ever attached an engine: the roster still
        # holds exactly the default local engine.
        client = harness.client()
        assert client.ping()["jobs"] == 0
        assert client.jobs() == []
        assert [engine["kind"]
                for engine in client.ping()["engines"]] == ["local"]

    def test_oversized_line_then_recovery(self, harness):
        """A framing violation drops that connection only; the next
        one works."""
        huge = (b'{"op": "ping", "pad": "'
                + b"x" * protocol.MAX_LINE_BYTES + b'"}\n')
        ping_line = protocol.encode({"op": "ping"})
        alive = send_then_ping(harness.port, huge, ping_line)
        assert not alive  # framing gone: the server dropped the link
        assert harness.client().ping()["ok"]
