"""Client-layer contract regressions (ISSUE 9's bugfix sweep).

Three fixed bugs, each pinned here so it cannot quietly return:

1. ``ServiceClient.results()`` used to hold its socket open until the
   garbage collector finalised an abandoned generator; it now tears
   the connection down *eagerly* (``GeneratorExit`` lands in the
   ``finally``) and the server tolerates the early disconnect.
2. ``submit()`` under-reported ``last_submit_rejections`` by exactly
   one when the *final* rejection overran the retry budget — the
   give-up rejection went uncounted.
3. The backoff jitter envelope was documented one way and implemented
   another; the reconciled contract is pinned at its exact endpoints:
   a sleep is uniform on ``((1 - jitter) * wait, wait]`` — top
   attainable, bottom excluded.  Both clients must share that helper
   (:func:`repro.service.client.backoff_wait`), not copy it.
"""

import time

import pytest

from repro.engine import DesignPoint
from repro.errors import ReproError
from repro.service.client import (
    RetryingClientMixin,
    ServiceClient,
    ServiceError,
    backoff_wait,
)
from repro.service.http_client import HttpServiceClient
from repro.service.server import ExplorationService

GRID = (DesignPoint(app="straight", area=3000.0, quanta=80),
        DesignPoint(app="straight", area=5000.0, quanta=80),
        DesignPoint(app="straight", area=7500.0, quanta=80),
        DesignPoint(app="straight", area=15000.0, quanta=80))


class SlowService(ExplorationService):
    point_delay = 0.1

    def _evaluate_local(self, point):
        time.sleep(self.point_delay)
        return super()._evaluate_local(point)


def spying_client(harness, **kwargs):
    """A harness client whose created sockets are recorded."""
    client = harness.client(**kwargs)
    sockets = []
    inner = client._connect

    def connect():
        sock = inner()
        sockets.append(sock)
        return sock

    client._connect = connect
    return client, sockets


class TestEagerStreamTeardown:
    def test_closing_an_abandoned_stream_closes_the_socket(
            self, make_harness):
        harness = make_harness(service_class=SlowService)
        client, sockets = spying_client(harness)
        job = client.submit(GRID)
        stream = client.results(job)
        index, result = next(stream)
        assert result is not None
        assert len(sockets) == 2  # submit's + the stream's
        assert sockets[-1].fileno() != -1  # live mid-stream
        stream.close()  # GeneratorExit → finally → socket closed NOW
        assert sockets[-1].fileno() == -1

    def test_break_out_of_the_loop_closes_the_socket(
            self, make_harness):
        harness = make_harness(service_class=SlowService)
        client, sockets = spying_client(harness)
        job = client.submit(GRID)

        def first_result():
            for index, result in client.results(job):
                return index, result

        first_result()
        # CPython refcounting finalises the abandoned generator as
        # ``first_result`` returns, which must run the finally.
        assert sockets[-1].fileno() == -1

    def test_server_survives_the_early_disconnect(self, make_harness):
        harness = make_harness(service_class=SlowService)
        client = harness.client()
        job = client.submit(GRID)
        stream = client.results(job)
        next(stream)
        stream.close()
        # The service must treat the dropped stream as a client going
        # away, not an error: it still evaluates and serves everyone.
        results = client.collect(job)
        assert len(results) == len(GRID)
        assert all(result.error is None for result in results)

    def test_exhausted_stream_also_closes_its_socket(self, harness):
        client, sockets = spying_client(harness)
        job = client.submit(GRID[:2])
        list(client.results(job))
        assert sockets[-1].fileno() == -1
        assert client.last_status["state"] == "done"


class _Rejector:
    """A ``send`` that rejects ``failures`` times, then succeeds."""

    def __init__(self, failures, retry_after=0.01):
        self.failures = failures
        self.retry_after = retry_after
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise ServiceError("queue full",
                               response={"ok": False,
                                         "error": "queue full",
                                         "retry_after":
                                         self.retry_after})
        return "job-1"


def mixin(budget, jitter=0.0, cap=2.0, seed=1):
    client = RetryingClientMixin()
    client._init_retry(budget, cap, jitter, seed)
    return client


class TestRejectionAccounting:
    def test_final_overbudget_rejection_is_counted(self):
        client = mixin(budget=0.0)
        send = _Rejector(failures=99)
        with pytest.raises(ServiceError):
            client._submit_with_retries(send)
        # The regression: this used to read 0 — the submit absorbed
        # one real rejection and reported none.
        assert client.last_submit_rejections == 1
        assert send.calls == 1

    def test_absorbed_and_final_rejections_all_count(self):
        client = mixin(budget=0.2)
        send = _Rejector(failures=99, retry_after=0.05)
        with pytest.raises(ServiceError):
            client._submit_with_retries(send)
        assert client.last_submit_rejections == send.calls

    def test_retried_to_success_counts_only_absorbed(self):
        client = mixin(budget=10.0)
        send = _Rejector(failures=2)
        assert client._submit_with_retries(send) == "job-1"
        assert client.last_submit_rejections == 2
        assert send.calls == 3

    def test_counter_resets_between_submits(self):
        client = mixin(budget=10.0)
        assert client._submit_with_retries(
            _Rejector(failures=1)) == "job-1"
        assert client.last_submit_rejections == 1
        assert client._submit_with_retries(
            _Rejector(failures=0)) == "job-1"
        assert client.last_submit_rejections == 0

    def test_non_backpressure_rejection_is_not_retried(self):
        client = mixin(budget=10.0)
        calls = []

        def send():
            calls.append(None)
            raise ServiceError("malformed request")  # no retry_after

        with pytest.raises(ServiceError, match="malformed"):
            client._submit_with_retries(send)
        assert len(calls) == 1
        assert client.last_submit_rejections == 0

    def test_live_zero_budget_submit_reports_its_rejection(
            self, make_harness):
        harness = make_harness(service_class=SlowService, queue_cap=4)
        client = harness.client(retry_budget=0.0)
        client.submit(GRID)  # fills the cap
        with pytest.raises(ServiceError, match="queue full"):
            client.submit(GRID[:1])
        assert client.last_submit_rejections == 1


class _FixedRng:
    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


class TestJitterEnvelope:
    def test_top_endpoint_is_attainable(self):
        # A draw of exactly 0.0 sleeps the full wait — the documented
        # envelope is ((1 - j) * wait, wait], closed at the top.
        assert backoff_wait(0.5, 0, 2.0, 0.5, _FixedRng(0.0)) == 0.5

    def test_bottom_endpoint_is_excluded(self):
        # random() < 1.0 always, so in real arithmetic the sleep
        # strictly exceeds (1 - jitter) * wait.  At the very largest
        # draw float rounding can collapse the hair's-width gap onto
        # the boundary itself, which is why the documented contract
        # only promises the closed bound there.
        largest = 1.0 - 2 ** -53  # max value random() can return
        wait = backoff_wait(0.5, 0, 2.0, 0.5, _FixedRng(largest))
        assert (1.0 - 0.5) * 0.5 <= wait <= 0.5
        # One ulp below the extreme the strict bound holds outright.
        wait = backoff_wait(0.5, 0, 2.0, 0.5, _FixedRng(1.0 - 2e-16))
        assert (1.0 - 0.5) * 0.5 < wait <= 0.5

    @pytest.mark.parametrize("draw", [0.0, 0.25, 0.5, 0.999999])
    @pytest.mark.parametrize("jitter", [0.1, 0.5, 1.0])
    def test_envelope_holds_across_the_range(self, draw, jitter):
        wait = 2.0  # hint 0.5, attempt 2, capped at 2.0
        value = backoff_wait(0.5, 2, 2.0, jitter, _FixedRng(draw))
        assert (1.0 - jitter) * wait < value <= wait

    def test_zero_jitter_restores_the_exact_schedule(self):
        class Exploder:
            def random(self):
                raise AssertionError("jitter 0 must not draw")

        schedule = [backoff_wait(0.25, attempt, 2.0, 0.0, Exploder())
                    for attempt in range(5)]
        assert schedule == [0.25, 0.5, 1.0, 2.0, 2.0]

    def test_jitter_out_of_range_is_rejected(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ReproError, match="retry_jitter"):
                mixin(budget=1.0, jitter=bad)


class TestSharedHelper:
    def test_both_clients_inherit_the_one_contract(self):
        assert issubclass(ServiceClient, RetryingClientMixin)
        assert issubclass(HttpServiceClient, RetryingClientMixin)
        for name in ("_backoff_wait", "_submit_with_retries",
                     "_init_retry"):
            # Neither transport may shadow the shared helper with a
            # private copy — the fix must live in exactly one place.
            assert name not in vars(ServiceClient)
            assert name not in vars(HttpServiceClient)
            assert name in vars(RetryingClientMixin)

    def test_backoff_method_delegates_to_the_module_helper(self):
        client = mixin(budget=1.0, jitter=0.0)
        assert client._backoff_wait(0.25, 3) == backoff_wait(
            0.25, 3, 2.0, 0.0, _FixedRng(0.0))
