"""Tests for the exploration engine's Session and DesignPoint."""

import pytest

from repro.apps.registry import application_spec
from repro.engine import DesignPoint, EvalCache, PointResult, Session
from repro.errors import ReproError
from repro.ir.ops import OpType
from repro.partition.model import TargetArchitecture

from tests.conftest import make_leaf, make_parallel_dfg


@pytest.fixture
def small_app():
    muls = make_leaf(make_parallel_dfg(OpType.MUL, 2, "muls"),
                     profile=50, name="muls", reads={"a"}, writes={"b"})
    adds = make_leaf(make_parallel_dfg(OpType.ADD, 3, "adds"),
                     profile=20, name="adds", reads={"b"}, writes={"c"})
    return [muls, adds]


class TestDesignPoint:
    def test_defaults(self):
        point = DesignPoint(app="hal")
        assert point.area is None
        assert point.policy is None
        assert point.quanta == 150

    def test_points_are_hashable_and_comparable(self):
        assert DesignPoint(app="hal") == DesignPoint(app="hal")
        assert len({DesignPoint(app="hal"), DesignPoint(app="hal"),
                    DesignPoint(app="man")}) == 2

    def test_rejects_bad_app(self):
        with pytest.raises(ReproError):
            DesignPoint(app="")

    def test_rejects_bad_area(self):
        with pytest.raises(ReproError):
            DesignPoint(app="hal", area=-1.0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ReproError):
            DesignPoint(app="hal", policy="greedy")

    def test_rejects_bad_quanta(self):
        with pytest.raises(ReproError):
            DesignPoint(app="hal", quanta=0)

    def test_points_are_immutable(self):
        with pytest.raises(Exception):
            DesignPoint(app="hal").quanta = 7


class TestSessionCaching:
    def test_program_compiled_once(self):
        session = Session()
        first = session.program("hal")
        second = session.program("hal")
        assert first is second
        assert session.stats.snapshot()["program"] == (1, 1)

    def test_evaluate_hit_and_miss_accounting(self, library, small_app):
        session = Session(library=library)
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        allocation = {"multiplier": 1, "adder": 1}
        first = session.evaluate(small_app, allocation, architecture,
                                 area_quanta=100)
        second = session.evaluate(small_app, allocation, architecture,
                                  area_quanta=100)
        assert first is second
        assert session.stats.snapshot()["eval"] == (1, 1)

    def test_distinct_points_do_not_alias(self, library, small_app):
        session = Session(library=library)
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        one = session.evaluate(small_app, {"multiplier": 1}, architecture,
                               area_quanta=100)
        two = session.evaluate(small_app, {"multiplier": 2}, architecture,
                               area_quanta=100)
        assert one.allocation != two.allocation

    def test_warm_session_matches_fresh_session(self):
        warm = Session()
        points = [DesignPoint(app="hal"),
                  DesignPoint(app="hal", area=4000.0)]
        warmed = [warm.evaluate_point(p) for p in points for _ in (0, 1)]
        fresh = [Session().evaluate_point(p) for p in points]
        assert warmed[0].speedup == warmed[1].speedup
        assert warmed[0].speedup == fresh[0].speedup
        assert warmed[2].speedup == fresh[1].speedup
        assert warmed[0].allocation == fresh[0].allocation
        assert warmed[2].allocation == fresh[1].allocation

    def test_allocate_memoised(self, library, small_app):
        session = Session(library=library)
        first = session.allocate(small_app, 6000.0)
        second = session.allocate(small_app, 6000.0)
        assert first is second
        assert session.stats.snapshot()["alloc"] == (1, 1)

    def test_allocate_policy_variant(self, library, small_app):
        session = Session(library=library)
        result = session.allocate(small_app, 6000.0, policy="balanced")
        assert result.policy_name == "balanced"
        assert not result.allocation.is_empty()

    def test_allocate_rejects_unknown_policy(self, library, small_app):
        session = Session(library=library)
        with pytest.raises(ReproError):
            session.allocate(small_app, 6000.0, policy="greedy")

    def test_allocate_accepts_dict_restrictions(self, library, small_app):
        session = Session(library=library)
        result = session.allocate(small_app, 6000.0,
                                  restrictions={"multiplier": 1,
                                                "adder": 2})
        assert result.allocation["multiplier"] <= 1
        assert result.allocation["adder"] <= 2
        again = session.allocate(small_app, 6000.0,
                                 restrictions={"multiplier": 1,
                                               "adder": 2})
        assert again is result

    def test_allocate_rejects_restrictions_with_policy(self, library,
                                                       small_app):
        session = Session(library=library)
        with pytest.raises(ReproError):
            session.allocate(small_app, 6000.0, policy="balanced",
                             restrictions={"multiplier": 1})

    def test_stats_summary_renders(self):
        session = Session()
        session.program("hal")
        text = session.stats.summary()
        assert "program" in text
        assert "misses" in text

    def test_cache_clear_resets(self, library, small_app):
        session = Session(library=library)
        session.allocate(small_app, 6000.0)
        session.cache.clear()
        assert session.stats.hit_count() == 0
        assert not session.cache.allocs


class TestExplore:
    def test_explore_serial_results_in_order(self):
        session = Session()
        spec = application_spec("hal")
        points = [DesignPoint(app="hal", area=spec.total_area),
                  DesignPoint(app="hal", area=0.6 * spec.total_area)]
        results = session.explore(points)
        assert [r.point for r in results] == points
        assert all(isinstance(r, PointResult) for r in results)
        assert all(r.speedup > 0 for r in results)

    def test_explore_accepts_app_names(self):
        session = Session()
        results = session.explore(["hal"])
        assert results[0].point == DesignPoint(app="hal")

    def test_explore_rejects_garbage(self):
        with pytest.raises(ReproError):
            Session().explore([42])

    def test_explore_parallel_equals_serial(self):
        session = Session()
        spec = application_spec("man")
        points = [DesignPoint(app="man", area=fraction * spec.total_area)
                  for fraction in (0.4, 0.6, 0.8, 1.0)]
        serial = session.explore(points)
        parallel = session.explore(points, workers=2)
        assert [r.point for r in parallel] == [r.point for r in serial]
        assert [r.speedup for r in parallel] == [r.speedup for r in serial]
        assert [r.allocation for r in parallel] == \
            [r.allocation for r in serial]

    def test_explore_grid_cross_product(self):
        session = Session()
        results = session.explore_grid(
            apps=["hal"], areas=[4000.0, 8000.0],
            policies=[None, "balanced"], quanta=[100])
        assert len(results) == 4
        assert {r.point.policy for r in results} == {None, "balanced"}
        assert {r.point.area for r in results} == {4000.0, 8000.0}

    def test_grid_points_use_spec_area_by_default(self):
        session = Session()
        result = session.explore_grid(apps=["hal"])[0]
        assert result.point.area is None
        spec = application_spec("hal")
        direct = session.evaluate_point(
            DesignPoint(app="hal", area=spec.total_area))
        assert result.speedup == direct.speedup


class TestEvalCache:
    def test_pin_keeps_ids_stable(self):
        cache = EvalCache()
        obj = object()
        assert cache.pin(obj) == cache.pin(obj) == id(obj)

    def test_processor_token_by_value(self):
        from repro.swmodel.processor import default_processor

        cache = EvalCache()
        assert (cache.processor_token(default_processor())
                == cache.processor_token(default_processor()))

    def test_uid_key_memoised_per_list(self, small_app):
        cache = EvalCache()
        assert cache.uid_key(small_app) is cache.uid_key(small_app)
        assert cache.uid_key(small_app) == \
            tuple(bsb.uid for bsb in small_app)
