"""Tests for the content-addressed persistent engine store.

The store's contract is exactness: a warm session hydrated from disk
must produce results bit-identical to a cold computation, across
process boundaries (simulated here by rebuilding applications with
fresh uids), through parallel workers, and in the face of corrupted or
truncated shard files.
"""

import os
import pickle

import pytest

from repro.apps.registry import application_spec
from repro.core.exhaustive import exhaustive_best_allocation
from repro.engine import CacheStore, DesignPoint, Session
from repro.engine.store import (
    STORE_VERSION,
    bsb_fingerprint,
    library_fingerprint,
    technology_fingerprint,
)
from repro.hwlib.library import ResourceLibrary, default_library
from repro.ir.ops import OpType
from repro.partition.model import TargetArchitecture

from tests.conftest import make_leaf, make_parallel_dfg


def make_small_app():
    """Two BSBs built fresh on every call — distinct uids, one content."""
    muls = make_leaf(make_parallel_dfg(OpType.MUL, 2, "muls"),
                     profile=50, name="muls", reads={"a"}, writes={"b"})
    adds = make_leaf(make_parallel_dfg(OpType.ADD, 3, "adds"),
                     profile=20, name="adds", reads={"b"}, writes={"c"})
    return [muls, adds]


def assert_same_result(one, other):
    assert one.best_allocation == other.best_allocation
    assert one.evaluations == other.evaluations
    assert one.space == other.space
    assert one.sampled == other.sampled
    assert one.skipped_infeasible == other.skipped_infeasible
    first, second = one.best_evaluation, other.best_evaluation
    assert first.allocation == second.allocation
    assert first.datapath_area == second.datapath_area
    assert (first.available_controller_area
            == second.available_controller_area)
    assert first.partition.speedup == second.partition.speedup
    assert first.partition.hybrid_time == second.partition.hybrid_time
    assert first.partition.sw_time_all == second.partition.sw_time_all
    assert first.partition.hw_sequences == second.partition.hw_sequences
    assert first.partition.hw_names == second.partition.hw_names


class TestFingerprints:
    def test_bsb_fingerprint_is_content_based(self):
        first, second = make_small_app(), make_small_app()
        assert first[0].uid != second[0].uid
        assert bsb_fingerprint(first[0]) == bsb_fingerprint(second[0])
        assert bsb_fingerprint(first[0]) != bsb_fingerprint(first[1])

    def test_bsb_name_is_part_of_the_fingerprint(self):
        plain = make_leaf(make_parallel_dfg(OpType.ADD, 2, "twin"),
                          profile=5, name="left")
        renamed = make_leaf(make_parallel_dfg(OpType.ADD, 2, "twin"),
                            profile=5, name="right")
        assert bsb_fingerprint(plain) != bsb_fingerprint(renamed)

    def test_profile_count_changes_the_fingerprint(self):
        one = make_leaf(make_parallel_dfg(OpType.ADD, 2, "p"), profile=5,
                        name="p")
        other = make_leaf(make_parallel_dfg(OpType.ADD, 2, "p"), profile=6,
                          name="p")
        assert bsb_fingerprint(one) != bsb_fingerprint(other)

    def test_library_fingerprint_by_value(self):
        assert (library_fingerprint(default_library())
                == library_fingerprint(default_library()))
        slow = ResourceLibrary(name="lycos-default")
        slow.add_single("adder", OpType.ADD, area=120.0, latency=3)
        assert (library_fingerprint(slow)
                != library_fingerprint(default_library()))

    def test_technology_fingerprint(self):
        library = default_library()
        assert (technology_fingerprint(library.technology)
                == technology_fingerprint(library.technology))


class TestColdWarmParity:
    def test_warm_exhaustive_bit_identical_across_uids(self, tmp_path):
        """A second 'process' (fresh uids) replays the stored stages."""
        library = default_library()
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        cold_session = Session(library=library,
                               cache_dir=str(tmp_path / "store"))
        cold = exhaustive_best_allocation(make_small_app(), architecture,
                                          area_quanta=100,
                                          session=cold_session)
        # Fresh session + fresh BSB objects: only content hashes match.
        warm_session = Session(library=default_library(),
                               cache_dir=str(tmp_path / "store"))
        warm_arch = TargetArchitecture(library=warm_session.library,
                                       total_area=6000.0)
        warm = exhaustive_best_allocation(make_small_app(), warm_arch,
                                          area_quanta=100,
                                          session=warm_session)
        assert_same_result(cold, warm)
        # Everything expensive must be replayed from disk.
        assert warm_session.stats.miss_count("cost") == 0
        assert warm_session.stats.miss_count("partition") == 0
        assert warm_session.stats.hit_count("partition") > 0

    def test_warm_matches_storeless_serial(self, tmp_path):
        library = default_library()
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        plain = exhaustive_best_allocation(make_small_app(), architecture)
        for _ in range(2):  # cold then warm
            session = Session(library=default_library(),
                              cache_dir=str(tmp_path / "store"))
            arch = TargetArchitecture(library=session.library,
                                      total_area=6000.0)
            stored = exhaustive_best_allocation(make_small_app(), arch,
                                                session=session)
            assert_same_result(plain, stored)

    def test_warm_point_result_bit_identical(self, tmp_path):
        point = DesignPoint(app="hal")
        cold_session = Session(cache_dir=str(tmp_path / "store"))
        cold = cold_session.evaluate_point(point)
        cold_session.save_store()
        warm_session = Session(cache_dir=str(tmp_path / "store"))
        warm = warm_session.evaluate_point(point)
        assert warm.allocation == cold.allocation
        assert warm.speedup == cold.speedup
        assert warm.datapath_area == cold.datapath_area
        assert warm.hw_names == cold.hw_names
        assert warm_session.stats.hit_count("alloc") == 1
        assert warm_session.stats.hit_count("eval") == 1
        assert warm_session.stats.miss_count("alloc") == 0
        assert warm_session.stats.miss_count("eval") == 0

    def test_explicit_restrictions_still_use_the_store(self, tmp_path):
        """Regression: passing restrictions= skipped session
        .restrictions(), which was the only place the BSBs got
        registered — the store then silently persisted nothing."""
        from repro.core.restrictions import asap_restrictions

        store_dir = str(tmp_path / "store")
        for attempt in range(2):
            library = default_library()
            app = make_small_app()
            session = Session(library=library, cache_dir=store_dir)
            architecture = TargetArchitecture(library=library,
                                              total_area=6000.0)
            result = exhaustive_best_allocation(
                app, architecture,
                restrictions=asap_restrictions(app, library),
                session=session)
            if attempt == 0:
                cold = result
        assert_same_result(cold, result)
        assert session.stats.miss_count("cost") == 0
        assert session.stats.miss_count("partition") == 0

    def test_sampled_search_warm_parity(self, tmp_path):
        spec = application_spec("man")
        for attempt in range(2):
            session = Session(cache_dir=str(tmp_path / "store"))
            program = session.program("man")
            architecture = TargetArchitecture(
                library=session.library, total_area=spec.total_area)
            result = session.exhaustive(program.bsbs, architecture,
                                        max_evaluations=60,
                                        area_quanta=100)
            if attempt == 0:
                cold = result
        assert_same_result(cold, result)


class TestStoreRobustness:
    def _poison(self, store_dir, payload):
        os.makedirs(store_dir, exist_ok=True)
        written = []
        for stage in ("costs", "evals", "partitions"):
            path = os.path.join(store_dir,
                                "%s.v%d.pkl" % (stage, STORE_VERSION))
            with open(path, "wb") as handle:
                handle.write(payload)
            written.append(path)
        return written

    def test_corrupt_shards_are_ignored_and_repaired(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._poison(store_dir, b"not a pickle at all")
        library = default_library()
        session = Session(library=library, cache_dir=store_dir)
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        result = exhaustive_best_allocation(make_small_app(), architecture,
                                            session=session)
        plain = exhaustive_best_allocation(make_small_app(), architecture)
        assert_same_result(plain, result)
        # The flush at the end of the search replaced the poison.
        with open(os.path.join(
                store_dir, "costs.v%d.pkl" % STORE_VERSION), "rb") as f:
            assert isinstance(pickle.load(f), dict)

    def test_truncated_shard_recovers(self, tmp_path):
        store_dir = str(tmp_path / "store")
        # First write a real store...
        session = Session(cache_dir=store_dir)
        architecture = TargetArchitecture(library=session.library,
                                          total_area=6000.0)
        exhaustive_best_allocation(make_small_app(), architecture,
                                   session=session)
        # ...then simulate a partial write by truncating every shard.
        for name in os.listdir(store_dir):
            path = os.path.join(store_dir, name)
            size = os.path.getsize(path)
            with open(path, "rb+") as handle:
                handle.truncate(max(1, size // 2))
        fresh = Session(cache_dir=store_dir)
        arch = TargetArchitecture(library=fresh.library,
                                  total_area=6000.0)
        result = exhaustive_best_allocation(make_small_app(), arch,
                                            session=fresh)
        plain = exhaustive_best_allocation(make_small_app(), architecture)
        assert_same_result(plain, result)

    def test_non_dict_shard_is_treated_as_empty(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._poison(store_dir, pickle.dumps([1, 2, 3]))
        store = CacheStore(store_dir)
        assert store._load_shard("costs") == {}

    def test_interleaved_flushers_merge_instead_of_clobbering(
            self, tmp_path):
        """Two stores over one directory: both writers' entries last."""
        store_dir = str(tmp_path / "store")
        first = Session(library=default_library(), cache_dir=store_dir)
        architecture = TargetArchitecture(library=first.library,
                                          total_area=6000.0)
        exhaustive_best_allocation(make_small_app(), architecture,
                                   session=first)
        second = Session(library=default_library(), cache_dir=store_dir)
        other_app = [make_leaf(make_parallel_dfg(OpType.ADD, 2, "solo"),
                               profile=9, name="solo")]
        arch2 = TargetArchitecture(library=second.library,
                                   total_area=6000.0)
        exhaustive_best_allocation(other_app, arch2, session=second)
        combined = CacheStore(store_dir)._load_shard("costs")
        fingerprints = {key[0] for key in combined}
        assert bsb_fingerprint(other_app[0]) in fingerprints
        assert bsb_fingerprint(make_small_app()[0]) in fingerprints

    def test_leftover_lock_file_does_not_block_flush(self, tmp_path,
                                                     monkeypatch):
        """A crashed writer's lock debris must never wedge the store.

        On POSIX the flock is kernel-released with the dead holder, so
        the leftover file is uncontended; on the O_EXCL fallback the
        mtime-age break steals it.  Either way the flush goes through.
        """
        store_dir = str(tmp_path / "store")
        os.makedirs(store_dir)
        lock_path = os.path.join(store_dir, ".flush.lock")
        with open(lock_path, "w"):
            pass  # debris of a crashed writer
        monkeypatch.setattr(CacheStore, "_LOCK_TIMEOUT_SECONDS", 0.05)
        session = Session(cache_dir=store_dir)
        architecture = TargetArchitecture(library=session.library,
                                          total_area=6000.0)
        exhaustive_best_allocation(make_small_app(), architecture,
                                   session=session)
        assert CacheStore(store_dir).info(), "flush must have gone through"

    def test_read_only_store_never_creates_the_directory(self, tmp_path):
        store_dir = str(tmp_path / "typo-store")
        store = CacheStore(store_dir)
        assert store.info() == {}
        assert store._load_shard("costs") == {}
        repr(store)
        assert not os.path.exists(store_dir)

    def test_info_and_clear(self, tmp_path):
        store_dir = str(tmp_path / "store")
        session = Session(cache_dir=store_dir)
        architecture = TargetArchitecture(library=session.library,
                                          total_area=6000.0)
        exhaustive_best_allocation(make_small_app(), architecture,
                                   session=session)
        store = CacheStore(store_dir)
        report = store.info()
        assert report, "expected shards on disk"
        for entries, size in report.values():
            assert entries > 0
            assert size > 0
        assert store.clear() == len(report)
        assert store.info() == {}


class TestParallelEquivalence:
    def test_workers_two_exhaustive_equals_serial(self):
        library = default_library()
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        serial = exhaustive_best_allocation(make_small_app(), architecture,
                                            area_quanta=100,
                                            keep_history=True)
        parallel = exhaustive_best_allocation(make_small_app(),
                                              architecture,
                                              area_quanta=100,
                                              keep_history=True,
                                              workers=2)
        assert_same_result(serial, parallel)
        assert ([(a, s) for a, s in parallel.history]
                == [(a, s) for a, s in serial.history])

    def test_parallel_merges_worker_stats(self):
        library = default_library()
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        session = Session(library=library)
        exhaustive_best_allocation(make_small_app(), architecture,
                                   session=session, workers=2)
        # The parent never evaluated anything itself, yet the pool's
        # accounting must land in its stats.
        assert session.stats.miss_count("cost") > 0
        assert session.stats.miss_count("partition") > 0

    def test_explore_parallel_merges_worker_stats(self):
        session = Session()
        spec = application_spec("hal")
        points = [DesignPoint(app="hal", area=f * spec.total_area)
                  for f in (0.5, 0.75, 1.0)]
        session.explore(points, workers=2)
        assert session.stats.miss_count("alloc") == len(points)
        assert session.stats.miss_count("eval") == len(points)

    def test_parallel_cold_run_persists_worker_entries(self, tmp_path):
        """Worker-computed entries travel back as deltas and reach the
        store through the parent's flush — a warm serial rerun must
        replay them without recomputing."""
        store_dir = str(tmp_path / "store")
        library = default_library()
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        cold_session = Session(library=library, cache_dir=store_dir)
        cold = exhaustive_best_allocation(make_small_app(), architecture,
                                          session=cold_session, workers=2)
        warm_session = Session(library=default_library(),
                               cache_dir=store_dir)
        warm_arch = TargetArchitecture(library=warm_session.library,
                                       total_area=6000.0)
        warm = exhaustive_best_allocation(make_small_app(), warm_arch,
                                          session=warm_session)
        assert_same_result(cold, warm)
        assert warm_session.stats.miss_count("cost") == 0
        assert warm_session.stats.miss_count("partition") == 0

    def test_parallel_with_shared_store_warm_start(self, tmp_path):
        """workers=2 over a warm store: identical result, no cost work."""
        store_dir = str(tmp_path / "store")
        library = default_library()
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        cold_session = Session(library=library, cache_dir=store_dir)
        cold = exhaustive_best_allocation(make_small_app(), architecture,
                                          session=cold_session)
        warm_session = Session(library=default_library(),
                               cache_dir=store_dir)
        warm_arch = TargetArchitecture(library=warm_session.library,
                                       total_area=6000.0)
        warm = exhaustive_best_allocation(make_small_app(), warm_arch,
                                          session=warm_session, workers=2)
        assert_same_result(cold, warm)
        assert warm_session.stats.miss_count("cost") == 0
        assert warm_session.stats.miss_count("partition") == 0


class TestSessionStoreLifecycle:
    def test_save_store_is_noop_without_cache_dir(self):
        assert Session().save_store() == 0

    def test_workers_must_be_positive(self):
        from repro.errors import AllocationError

        library = default_library()
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        with pytest.raises(AllocationError):
            exhaustive_best_allocation(make_small_app(), architecture,
                                       workers=0)

    def test_store_isolated_by_version(self, tmp_path):
        store_dir = str(tmp_path / "store")
        session = Session(cache_dir=store_dir)
        architecture = TargetArchitecture(library=session.library,
                                          total_area=6000.0)
        exhaustive_best_allocation(make_small_app(), architecture,
                                   session=session)
        for name in os.listdir(store_dir):
            if name == ".flush.lock":
                continue  # the flock file, deliberately left behind
            assert ".v%d." % STORE_VERSION in name
