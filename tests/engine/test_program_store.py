"""The persistent program store: warm sessions skip the frontend compile.

This is the differential cold-vs-warm parity tier.  Contract under
test: a session hydrated from a ``cache_dir`` written by another
"process" (simulated by fresh sessions — uid counters only move
forward, so hydrated objects land in a disjoint uid space exactly as
they would across a real process boundary) must

* perform **zero** frontend compiles (counter-verified, both at the
  process-wide builder counter and the session's ``compile`` stage),
* produce output bit-identical to the cold run for Table 1 and
  Figure 3 rows,
* degrade to a cold compile — never an error — when the program shard
  (or an individual entry) is corrupt, and
* fail loudly at flush time when a registered library or BSB was
  mutated after registration (the ROADMAP mutation nuance).
"""

import os
import pickle

import pytest

from repro.apps.registry import application_source
from repro.cdfg.builder import frontend_compile_count
from repro.engine import DesignPoint, Session
from repro.engine.store import (
    PROGRAMS_STAGE,
    STORE_VERSION,
    CacheStore,
    bsb_fingerprint,
    program_fingerprint,
)
from repro.errors import ReproError, StoreIntegrityError
from repro.hwlib.library import default_library
from repro.io.serialize import program_from_dict, program_to_dict
from repro.ir.ops import OpType
from repro.report.experiments import (
    fig3_sweep,
    render_fig3,
    render_table1,
    table1_rows,
)


def programs_shard_path(store_dir):
    return os.path.join(store_dir,
                        "%s.v%d.pkl" % (PROGRAMS_STAGE, STORE_VERSION))


class TestProgramFingerprint:
    def test_stable_across_calls(self):
        library = default_library()
        source, inputs = application_source("hal")
        assert (program_fingerprint("hal", source, inputs, library)
                == program_fingerprint("hal", source, inputs,
                                       default_library()))

    def test_source_and_inputs_and_name_matter(self):
        library = default_library()
        source, inputs = application_source("hal")
        base = program_fingerprint("hal", source, inputs, library)
        assert program_fingerprint("hal2", source, inputs,
                                   library) != base
        assert program_fingerprint("hal", source + "\n// edit",
                                   inputs, library) != base
        changed = dict(inputs)
        changed[next(iter(changed))] += 1
        assert program_fingerprint("hal", source, changed,
                                   library) != base

    def test_unknown_app_raises_the_registry_error(self):
        with pytest.raises(ReproError):
            application_source("nope")


class TestProgramRoundTrip:
    def test_real_program_survives_dump_load_reuid(self):
        cold = Session()
        program = cold.program("hal")
        clone = program_from_dict(program_to_dict(program))
        assert clone.name == program.name
        assert clone.source == program.source
        assert clone.source_lines() == program.source_lines()
        assert clone.inputs == program.inputs
        assert clone.final_values == program.final_values
        assert clone.outputs == program.outputs
        assert clone.ast is None
        # The CDFG travels as a neutral document: structure, names and
        # profile counts round-trip; uids are re-assigned on load.
        assert clone.cdfg is not None
        assert clone.cdfg.to_payload() == program.cdfg.to_payload()
        assert clone.cdfg.uid != program.cdfg.uid
        assert len(clone.bsbs) == len(program.bsbs)
        for fresh, original in zip(clone.bsbs, program.bsbs):
            assert fresh.uid != original.uid  # re-assigned, not copied
            assert bsb_fingerprint(fresh) == bsb_fingerprint(original)
            assert (fresh.dfg.structural_signature()
                    == original.dfg.structural_signature())
            ops = {op.uid for op in original.dfg.operations()}
            assert not ops & {op.uid for op in fresh.dfg.operations()}

    def test_malformed_documents_raise_repro_error(self):
        for junk in (None, [], {"kind": "program"},
                     {"kind": "program", "version": 99},
                     {"kind": "program", "version": 1, "root": {}},
                     {"kind": "program", "version": 1,
                      "root": {"kind": "leaf", "dfg": {"name": "x",
                                                       "ops": [["??", "", None]],
                                                       "edges": []}}}):
            with pytest.raises(ReproError):
                program_from_dict(junk)

    def test_bad_edge_indices_are_rejected_not_reinterpreted(self):
        """Negative indices must fail (-> cold-compile fallback), not
        silently hydrate a different graph via Python indexing."""
        from repro.errors import CdfgError
        from repro.ir.dfg import DFG

        base = Session().program("straight")
        payload = None
        for bsb in base.bsbs:
            if len(bsb.dfg) >= 2:
                payload = bsb.dfg.to_payload()
                break
        assert payload is not None
        for edges in ([[-1, 0]], [[0, 99]], [["0", 1]], [[0]], 5):
            bad = dict(payload, edges=edges)
            with pytest.raises(CdfgError):
                DFG.from_payload(bad)

    def test_cyclic_payload_is_rejected(self):
        program = Session().program("straight")
        payload = program_to_dict(program)

        def first_leaf(node):
            if node["kind"] == "leaf" and len(node["dfg"]["ops"]) >= 2:
                return node
            for child in node.get("children", node.get("body", [])):
                found = first_leaf(child)
                if found is not None:
                    return found
            return None

        leaf = first_leaf(payload["root"])
        leaf["dfg"]["edges"] = [[0, 1], [1, 0]]
        with pytest.raises(ReproError):
            program_from_dict(payload)


class TestColdWarmParity:
    def test_table1_rows_bit_identical_with_zero_compiles(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold_session = Session(cache_dir=store_dir)
        cold = table1_rows(names=["straight"], max_evaluations=40,
                           session=cold_session)
        assert cold_session.stats.miss_count("compile") == 1

        warm_session = Session(cache_dir=store_dir)
        before = frontend_compile_count()
        warm = table1_rows(names=["straight"], max_evaluations=40,
                           session=warm_session)
        # The counter proof: the warm path never entered the frontend.
        assert frontend_compile_count() == before
        assert warm_session.stats.miss_count("compile") == 0
        assert warm_session.stats.hit_count("compile") == 1
        # Bit-identical rows — the rendered table includes the stored
        # cpu-seconds, so full string equality is the real contract.
        assert render_table1(warm) == render_table1(cold)
        assert warm[0].allocation == cold[0].allocation
        assert warm[0].best_allocation == cold[0].best_allocation

    def test_fig3_rows_bit_identical_with_zero_compiles(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold_session = Session(cache_dir=store_dir)
        cold = fig3_sweep(name="hal", fractions=[0.3, 0.6],
                          session=cold_session)
        cold_session.save_store()

        warm_session = Session(cache_dir=store_dir)
        before = frontend_compile_count()
        warm = fig3_sweep(name="hal", fractions=[0.3, 0.6],
                          session=warm_session)
        assert frontend_compile_count() == before
        assert warm == cold
        assert render_fig3(warm) == render_fig3(cold)

    def test_parallel_explore_ships_worker_programs_home(self, tmp_path):
        """A cold parallel sweep compiles only in the pool workers —
        their program documents must still reach the store through the
        delta plumbing, so a later serial process is fully warm."""
        store_dir = str(tmp_path / "store")
        spec_area = 9000.0
        points = [DesignPoint(app="hal", area=f * spec_area)
                  for f in (0.5, 0.75)]
        cold_session = Session(cache_dir=store_dir)
        cold = cold_session.explore(points, workers=2)
        assert cold_session.stats.miss_count("compile") >= 1

        warm_session = Session(cache_dir=store_dir)
        before = frontend_compile_count()
        warm = warm_session.explore(points)
        assert frontend_compile_count() == before
        assert [r.speedup for r in warm] == [r.speedup for r in cold]
        assert [r.allocation for r in warm] == [r.allocation
                                                for r in cold]

    def test_storeless_sessions_still_count_compiles(self):
        session = Session()
        session.program("straight")
        assert session.stats.miss_count("compile") == 1
        session.program("straight")  # memo hit: no second compile
        assert session.stats.miss_count("compile") == 1
        assert session.stats.hit_count("program") == 1


class TestProgramShardRobustness:
    def _warm_store(self, store_dir):
        session = Session(cache_dir=store_dir)
        result = session.evaluate_point(DesignPoint(app="hal"))
        session.save_store()
        return result

    def test_corrupt_program_shard_degrades_to_cold_compile(
            self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = self._warm_store(store_dir)
        with open(programs_shard_path(store_dir), "wb") as handle:
            handle.write(b"not a pickle at all")
        session = Session(cache_dir=store_dir)
        before = frontend_compile_count()
        warm = session.evaluate_point(DesignPoint(app="hal"))
        assert frontend_compile_count() == before + 1  # cold fallback
        assert warm.speedup == cold.speedup
        assert warm.allocation == cold.allocation
        # The fallback compile repairs the shard for the next session.
        session.save_store()
        with open(programs_shard_path(store_dir), "rb") as handle:
            assert len(pickle.load(handle)) == 1

    def test_damaged_program_entry_degrades_to_cold_compile(
            self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = self._warm_store(store_dir)
        path = programs_shard_path(store_dir)
        with open(path, "rb") as handle:
            shard = pickle.load(handle)
        poisoned = {key: {"kind": "garbage"} for key in shard}
        with open(path, "wb") as handle:
            pickle.dump(poisoned, handle)
        session = Session(cache_dir=store_dir)
        before = frontend_compile_count()
        warm = session.evaluate_point(DesignPoint(app="hal"))
        assert frontend_compile_count() == before + 1
        assert warm.speedup == cold.speedup

    def test_truncated_program_shard_recovers(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = self._warm_store(store_dir)
        path = programs_shard_path(store_dir)
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(max(1, size // 2))
        session = Session(cache_dir=store_dir)
        warm = session.evaluate_point(DesignPoint(app="hal"))
        assert warm.speedup == cold.speedup


class TestMutationIntegrity:
    def test_mutated_library_fails_loudly_at_flush(self, tmp_path):
        library = default_library()
        session = Session(library=library,
                          cache_dir=str(tmp_path / "store"))
        session.evaluate_point(DesignPoint(app="straight"))
        library.add_single("rogue", OpType.ADD, area=1.0, latency=1)
        with pytest.raises(StoreIntegrityError):
            session.save_store()

    def test_mutated_bsb_fails_loudly_at_flush(self, tmp_path):
        session = Session(cache_dir=str(tmp_path / "store"))
        program = session.program("straight")
        program.bsbs[0].dfg.new_operation(OpType.MUL, label="rogue")
        with pytest.raises(StoreIntegrityError):
            session.save_store()

    def test_unmutated_flush_stays_quiet(self, tmp_path):
        session = Session(cache_dir=str(tmp_path / "store"))
        session.evaluate_point(DesignPoint(app="straight"))
        assert session.save_store() > 0
        store = CacheStore(session.store.root)
        assert PROGRAMS_STAGE in store.info()


class TestCompaction:
    def test_program_entries_participate_in_lru_compaction(
            self, tmp_path):
        store_dir = str(tmp_path / "store")
        session = Session(cache_dir=store_dir)
        session.evaluate_point(DesignPoint(app="straight"))
        session.save_store()
        report = CacheStore(store_dir).compact(max_bytes=0)
        kept, dropped = report["stages"][PROGRAMS_STAGE]
        assert (kept, dropped) == (0, 1)
        assert not os.path.exists(programs_shard_path(store_dir))
        # Compacted-away program: the next session cold-compiles.
        fresh = Session(cache_dir=store_dir)
        before = frontend_compile_count()
        fresh.program("straight")
        assert frontend_compile_count() == before + 1
