"""Session-routed pipelines must be bit-identical to the direct paths.

The engine is pure plumbing: every cached stage is keyed by its true
inputs, so running Table 1, Figure 3, the design iteration or the
multi-ASIC co-design through a (warm) session must reproduce exactly
what the uncached computation produces.
"""

import pytest

from repro.apps.registry import application_spec
from repro.core.exhaustive import (
    enumerate_allocations,
    exhaustive_best_allocation,
)
from repro.core.iteration import design_iteration
from repro.core.rmap import RMap
from repro.engine import Session
from repro.ir.ops import OpType
from repro.partition.evaluate import evaluate_allocation
from repro.partition.model import TargetArchitecture
from repro.partition.multi_asic import multi_asic_codesign
from repro.report.experiments import design_iteration_report, fig3_sweep

from tests.conftest import make_leaf, make_parallel_dfg


@pytest.fixture
def small_app():
    muls = make_leaf(make_parallel_dfg(OpType.MUL, 3, "muls"),
                     profile=40, name="muls", reads={"a"}, writes={"b"})
    adds = make_leaf(make_parallel_dfg(OpType.ADD, 4, "adds"),
                     profile=15, name="adds", reads={"b"}, writes={"c"})
    return [muls, adds]


def assert_same_evaluation(one, other):
    assert one.allocation == other.allocation
    assert one.datapath_area == other.datapath_area
    assert one.available_controller_area == other.available_controller_area
    assert one.overhead_area == other.overhead_area
    assert one.partition.hw_sequences == other.partition.hw_sequences
    assert one.partition.hw_names == other.partition.hw_names
    assert one.partition.sw_time_all == other.partition.sw_time_all
    assert one.partition.hybrid_time == other.partition.hybrid_time
    assert one.partition.speedup == other.partition.speedup
    assert (one.partition.controller_area_used
            == other.partition.controller_area_used)


class TestEvaluateParity:
    def test_session_matches_uncached_on_synthetic(self, library,
                                                   small_app):
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        session = Session(library=library)
        for allocation in enumerate_allocations(small_app, library):
            if allocation.area(library) > architecture.total_area:
                continue
            plain = evaluate_allocation(small_app, allocation,
                                        architecture, area_quanta=100)
            cached = session.evaluate(small_app, allocation, architecture,
                                      area_quanta=100)
            rewarmed = session.evaluate(small_app, allocation,
                                        architecture, area_quanta=100)
            assert_same_evaluation(plain, cached)
            assert cached is rewarmed

    def test_legacy_dict_cache_matches(self, library, small_app):
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        legacy = {}
        session = Session(library=library)
        for allocation in ({"multiplier": 1, "adder": 1},
                           {"multiplier": 2, "adder": 2},
                           {"multiplier": 3}):
            allocation = RMap(allocation)
            plain = evaluate_allocation(small_app, allocation,
                                        architecture, area_quanta=100,
                                        cache=legacy)
            cached = session.evaluate(small_app, allocation, architecture,
                                      area_quanta=100)
            assert_same_evaluation(plain, cached)

    def test_session_matches_uncached_on_hal(self):
        session = Session()
        program = session.program("hal")
        spec = application_spec("hal")
        architecture = TargetArchitecture(library=session.library,
                                          total_area=spec.total_area)
        allocation = session.allocate(program.bsbs,
                                      spec.total_area).allocation
        plain = evaluate_allocation(program.bsbs, allocation, architecture,
                                    area_quanta=150)
        cached = session.evaluate(program.bsbs, allocation, architecture,
                                  area_quanta=150)
        assert_same_evaluation(plain, cached)


class TestCostSignatureParity:
    """bsb_cost and _cached_bsb_costs must share one memo key space.

    Both write ``cache.costs`` under (uid, signature, arch key); this
    pins their independently-implemented signature computations
    together — if either drifts, the shared-entry assertions fail.
    """

    @pytest.mark.parametrize("allocation", [
        {"multiplier": 1, "adder": 1},       # homogeneous
        {"multiplier": 9, "adder": 9},       # saturated counts collapse
        {"adder": 1},                        # muls BSB unexecutable
        {},                                  # everything unexecutable
    ])
    def test_both_paths_share_cache_entries(self, library, small_app,
                                            allocation):
        from repro.engine import EvalCache
        from repro.partition.model import bsb_cost, bsb_costs

        allocation = RMap(allocation)
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        cache = EvalCache()
        grouped = bsb_costs(small_app, allocation, architecture,
                            cache=cache)
        entries = len(cache.costs)
        singles = [bsb_cost(bsb, allocation, architecture, cache=cache)
                   for bsb in small_app]
        # The single-BSB path must hit the grouped path's entries:
        # same objects back, no new keys written.
        assert len(cache.costs) == entries
        for one, other in zip(grouped, singles):
            assert one is other


class TestDriverParity:
    def test_design_iteration_identical(self, library, small_app):
        architecture = TargetArchitecture(library=library,
                                          total_area=2500.0)
        start = RMap({"multiplier": 2, "adder": 1})
        private = design_iteration(small_app, start, architecture,
                                   area_quanta=100)
        session = Session(library=library)
        warm_up = session.evaluate(small_app, start, architecture,
                                   area_quanta=100)
        assert warm_up is not None
        shared = design_iteration(small_app, start, architecture,
                                  area_quanta=100, session=session)
        assert [str(step) for step in shared.steps] == \
            [str(step) for step in private.steps]
        assert shared.final_allocation == private.final_allocation
        assert (shared.final_evaluation.speedup
                == private.final_evaluation.speedup)

    def test_exhaustive_identical_cold_and_warm(self, library, small_app):
        architecture = TargetArchitecture(library=library,
                                          total_area=6000.0)
        session = Session(library=library)
        cold = exhaustive_best_allocation(small_app, architecture,
                                          area_quanta=100,
                                          session=session)
        warm = exhaustive_best_allocation(small_app, architecture,
                                          area_quanta=100,
                                          session=session)
        private = exhaustive_best_allocation(small_app, architecture,
                                             area_quanta=100)
        for other in (warm, private):
            assert other.best_allocation == cold.best_allocation
            assert (other.best_evaluation.speedup
                    == cold.best_evaluation.speedup)
            assert other.evaluations == cold.evaluations
            assert other.space == cold.space

    def test_multi_asic_identical(self, library, small_app):
        private = multi_asic_codesign(small_app, library, [3000.0, 3000.0])
        session = Session(library=library)
        shared = multi_asic_codesign(small_app, library, [3000.0, 3000.0],
                                     session=session)
        again = multi_asic_codesign(small_app, library, [3000.0, 3000.0],
                                    session=session)
        for other in (shared, again):
            assert other.speedup == private.speedup
            assert other.hybrid_time == private.hybrid_time
            assert other.hw_names() == private.hw_names()
            assert [plan.allocation for plan in other.asics] == \
                [plan.allocation for plan in private.asics]

    def test_fig3_sweep_identical(self):
        fractions = [0.3, 0.6, 0.9]
        private = fig3_sweep(name="hal", fractions=fractions)
        session = Session()
        shared = fig3_sweep(name="hal", fractions=fractions,
                            session=session)
        again = fig3_sweep(name="hal", fractions=fractions,
                           session=session)
        assert shared == private
        assert again == private

    def test_sched_memo_keys_include_library(self, library):
        # Two libraries sharing resource names but with different adder
        # latencies must not serve each other's schedule lengths from a
        # shared session cache.
        from repro.engine import EvalCache
        from repro.hwlib.library import ResourceLibrary
        from repro.ir.ops import OpType
        from repro.partition.model import hardware_steps

        slow = ResourceLibrary(name="slow")
        slow.add_single("adder", OpType.ADD, area=100.0, latency=3)
        bsb = make_leaf(make_parallel_dfg(OpType.ADD, 2, "adds"),
                        profile=1, name="adds")
        cache = EvalCache()
        fast_arch = TargetArchitecture(library=library, total_area=5000.0)
        slow_arch = TargetArchitecture(library=slow, total_area=5000.0)
        allocation = RMap({"adder": 1})
        fast_steps = hardware_steps(bsb, allocation, fast_arch,
                                    cache=cache)
        slow_steps = hardware_steps(bsb, allocation, slow_arch,
                                    cache=cache)
        assert slow_steps == 3 * fast_steps

    def test_driver_rejects_conflicting_session_and_library(self):
        from repro.hwlib.library import default_library
        from repro.report.experiments import table1_row

        session = Session()
        with pytest.raises(Exception):
            table1_row("hal", library=default_library(), session=session)

    def test_iteration_report_identical(self):
        private = design_iteration_report("man")
        session = Session()
        shared = design_iteration_report("man", session=session)
        assert shared["initial_speedup"] == private["initial_speedup"]
        assert shared["final_speedup"] == private["final_speedup"]
        assert shared["final_allocation"] == private["final_allocation"]
        assert [str(s) for s in shared["steps"]] == \
            [str(s) for s in private["steps"]]
