"""Tests for store LRU stamping and compaction (ISSUE 4).

The contract: every shard entry carries a last-used stamp (refreshed
when a flush writes it *or* a hydrate replays it — so a warm run that
computes nothing still protects its entries), and
:meth:`CacheStore.compact` evicts by age and/or down to a byte budget,
oldest first.  Compaction must leave survivors fully warm (>90% hit
rate), must never corrupt a shard — even racing a concurrent flush on
the ``O_EXCL`` lock-file fallback path — and evicted entries simply
recompute cold.
"""

import os
import pickle
import sys
import threading
import time

import pytest

from repro.engine import CacheStore, DesignPoint, Session
from repro.engine.store import ALL_SHARD_KINDS, STORE_VERSION
from repro.errors import ReproError

STRAIGHT = DesignPoint(app="straight", area=4000.0, quanta=100)
HAL = DesignPoint(app="hal", area=5000.0, quanta=100)


def lru_path(root):
    return os.path.join(root, "lru.v%d.meta" % STORE_VERSION)


def read_stamps(root):
    with open(lru_path(root), "rb") as handle:
        return pickle.load(handle)


def shard_keys(root):
    """{stage: set of stable keys} of every shard on disk (the
    compiled-program shard included — its entries are stamped and
    compacted like any stage entry)."""
    store = CacheStore(root)
    keys = {}
    for stage in ALL_SHARD_KINDS:
        data = store._load_shard(stage)
        if data:
            keys[stage] = set(data)
    return keys


def run_point(root, point):
    session = Session(cache_dir=root)
    result = session.evaluate_point(point)
    session.save_store()
    return result


class TestLruStamps:
    def test_flush_stamps_every_written_entry(self, tmp_path):
        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        stamps = read_stamps(root)
        for stage, keys in shard_keys(root).items():
            assert keys <= set(stamps.get(stage, {})), \
                "stage %s has unstamped entries" % stage

    def test_warm_replay_refreshes_stamps(self, tmp_path):
        """A warm run computes nothing new, yet its hydrated entries
        must be re-stamped — otherwise routinely-used entries would
        look stale to the LRU and be compacted away."""
        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        before = read_stamps(root)
        time.sleep(0.05)
        run_point(root, STRAIGHT)  # pure replay
        after = read_stamps(root)
        refreshed = sum(
            1 for stage, bucket in after.items()
            for key, stamp in bucket.items()
            if stamp > before.get(stage, {}).get(key, stamp))
        assert refreshed > 0

    def test_clear_removes_the_stamp_file(self, tmp_path):
        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        assert os.path.exists(lru_path(root))
        CacheStore(root).clear()
        assert not os.path.exists(lru_path(root))


class TestCompactByAge:
    def stamp_by_app(self, root, fresh_keys, now):
        """Rewrite the stamp file: ``fresh_keys`` stamped now, every
        other entry a thousand seconds stale."""
        stamps = {}
        for stage, keys in shard_keys(root).items():
            stamps[stage] = {
                key: (now if key in fresh_keys.get(stage, set())
                      else now - 1000.0)
                for key in keys}
        with open(lru_path(root), "wb") as handle:
            pickle.dump(stamps, handle)

    def test_evicts_stale_keeps_fresh_and_survivors_stay_warm(
            self, tmp_path):
        # A reference store holding only HAL names the fresh key set
        # (the pipeline is deterministic, so stable keys match).
        reference = str(tmp_path / "reference")
        run_point(reference, HAL)
        hal_keys = shard_keys(reference)

        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        run_point(root, HAL)
        self.stamp_by_app(root, hal_keys, time.time())

        report = CacheStore(root).compact(max_age_seconds=500.0)
        assert report["dropped"] > 0
        assert report["bytes_after"] < report["bytes_before"]
        # Exactly the stale (straight) entries went; hal survived.
        assert shard_keys(root) == hal_keys

        # Survivors are fully warm: the hal rerun replays everything
        # the store covers — since PR 5 that includes the compiled
        # program, so the only miss left is the in-process program
        # memo's first lookup (which the program store then serves).
        warm = Session(cache_dir=root)
        warm.evaluate_point(HAL)
        stats = warm.stats
        covered = stats.hit_count() + stats.miss_count() \
            - stats.miss_count("program")
        assert stats.hit_count() / covered > 0.9
        assert stats.miss_count() == stats.miss_count("program")
        assert stats.miss_count("compile") == 0, \
            "compacting kept hal fresh, so its program must survive"
        assert stats.miss_count("alloc") == 0
        assert stats.miss_count("eval") == 0

        # The evicted app recomputes cold — and correctly.
        cold = Session(cache_dir=root)
        result = cold.evaluate_point(STRAIGHT)
        assert cold.stats.miss_count("eval") >= 1
        assert result.speedup == \
            Session().evaluate_point(STRAIGHT).speedup

    def test_zero_age_empties_the_store(self, tmp_path):
        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        report = CacheStore(root).compact(max_age_seconds=0.0)
        assert report["kept"] == 0
        assert CacheStore(root).info() == {}
        # A later session simply starts cold and repopulates.
        run_point(root, STRAIGHT)
        assert CacheStore(root).info()


class TestCompactByBytes:
    def synthetic_store(self, tmp_path, entries=40, payload=200):
        """One 'evals' shard of opaque entries with ascending stamps —
        entry i is strictly more recently used than entry i-1."""
        root = str(tmp_path / "store")
        store = CacheStore(root)
        data = {("key-%03d" % index,): "x" * payload
                for index in range(entries)}
        store._write_shard("evals", data)
        stamps = {"evals": {("key-%03d" % index,): 1000.0 + index
                            for index in range(entries)}}
        with open(lru_path(root), "wb") as handle:
            pickle.dump(stamps, handle)
        return root, data

    def test_evicts_oldest_first_down_to_the_budget(self, tmp_path):
        root, data = self.synthetic_store(tmp_path)
        size = os.path.getsize(
            os.path.join(root, "evals.v%d.pkl" % STORE_VERSION))
        report = CacheStore(root).compact(max_bytes=size // 2)
        assert 0 < report["kept"] < len(data)
        assert report["bytes_after"] <= size // 2
        survivors = shard_keys(root)["evals"]
        # LRU: the survivors are exactly the most recent suffix.
        expected = {("key-%03d" % index,)
                    for index in range(len(data) - len(survivors),
                                       len(data))}
        assert survivors == expected
        # Stamps of the victims are pruned with them.
        assert set(read_stamps(root)["evals"]) == expected

    def test_generous_budget_drops_nothing(self, tmp_path):
        root, data = self.synthetic_store(tmp_path)
        report = CacheStore(root).compact(max_bytes=1 << 30)
        assert report["dropped"] == 0
        assert set(shard_keys(root)["evals"]) == set(data)


class TestCompactEdges:
    def test_requires_a_budget(self, tmp_path):
        with pytest.raises(ReproError, match="max_bytes"):
            CacheStore(str(tmp_path / "store")).compact()

    def test_missing_store_is_a_noop_and_stays_missing(self, tmp_path):
        root = str(tmp_path / "typo-store")
        report = CacheStore(root).compact(max_bytes=10)
        assert report == {"kept": 0, "dropped": 0, "bytes_before": 0,
                          "bytes_after": 0, "stages": {}}
        assert not os.path.exists(root)

    def test_compact_racing_a_flush_never_corrupts(self, tmp_path,
                                                   monkeypatch):
        """Compaction and flushes share the store lock; on platforms
        without ``fcntl`` that is the O_EXCL lock-file path — force it
        and hammer both sides concurrently.  Whatever interleaving
        wins, every shard must stay a readable dict and a fresh warm
        session must still match a storeless run bit-for-bit."""
        monkeypatch.setitem(sys.modules, "fcntl", None)
        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        failures = []

        def flusher():
            try:
                for step in range(6):
                    session = Session(cache_dir=root)
                    session.evaluate_point(DesignPoint(
                        app="straight", area=3000.0 + 500.0 * step,
                        quanta=100))
                    session.save_store()
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        thread = threading.Thread(target=flusher)
        thread.start()
        store = CacheStore(root)
        for _ in range(8):
            store.compact(max_bytes=1 << 30, max_age_seconds=3600.0)
        thread.join(60)
        assert not thread.is_alive()
        assert not failures, failures
        # Every shard on disk is a healthy dict...
        checker = CacheStore(root)
        for stage in ALL_SHARD_KINDS:
            assert isinstance(checker._load_shard(stage), dict)
        # ...and the store still serves bit-identical results.
        warm = Session(cache_dir=root)
        plain = Session()
        warm_result = warm.evaluate_point(STRAIGHT)
        plain_result = plain.evaluate_point(STRAIGHT)
        assert warm_result.speedup == plain_result.speedup
        assert warm_result.allocation == plain_result.allocation


class TestCompactLiveSession:
    """Compaction of a store some live session still holds entries from.

    flush() re-encodes the *whole* live cache whenever a stage grows,
    so without the evicted-key bookkeeping a non-quiescent session's
    next flush would write every victim straight back to disk and the
    compact would silently not stick.
    """

    def test_live_session_flush_does_not_resurrect_victims(self,
                                                           tmp_path):
        root = str(tmp_path / "store")
        session = Session(cache_dir=root)
        session.evaluate_point(STRAIGHT)
        session.save_store()
        victims = shard_keys(root)
        assert victims

        report = session.store.compact(max_age_seconds=0.0)
        assert report["dropped"] > 0
        assert not shard_keys(root)

        # New work dirties the stages; the rewrite must skip the
        # victims even though the session's cache still holds them.
        session.evaluate_point(HAL)
        session.save_store()
        after = shard_keys(root)
        assert after, "the new work itself must still persist"
        for stage, keys in victims.items():
            resurrected = keys & after.get(stage, set())
            assert not resurrected, \
                "stage %s resurrected %d evicted entries" \
                % (stage, len(resurrected))

    def test_cold_recompute_re_persists_evicted_entries(self, tmp_path):
        # Eviction is per live store object, not a permanent ban: a
        # fresh process that recomputes the work persists it again.
        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        CacheStore(root).compact(max_age_seconds=0.0)
        assert not shard_keys(root)
        run_point(root, STRAIGHT)
        assert shard_keys(root)

    def test_absorbed_worker_delta_unevicts(self, tmp_path):
        # A worker delta carrying an evicted key is *new computed work*
        # arriving, not a resurrection — it must persist.
        root = str(tmp_path / "store")
        parent = Session(cache_dir=root)
        parent.evaluate_point(STRAIGHT)
        parent.save_store()
        parent.store.compact(max_age_seconds=0.0)
        assert not shard_keys(root)

        worker = Session(cache_dir=root)  # hydrates nothing: disk empty
        worker.evaluate_point(STRAIGHT)
        delta = worker.store.export_delta(worker.cache)
        assert delta

        parent.store.absorb_delta(delta)
        parent.save_store()
        after = shard_keys(root)
        assert any(after.get(stage) for stage in delta), \
            "absorbed recomputation must reach the disk again"


class TestCompactionHistory:
    """compact() passes leave a bounded audit trail (ISSUE 10)."""

    def test_compact_records_one_event(self, tmp_path):
        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        store = CacheStore(root)
        report = store.compact(max_age_seconds=0.0)
        history = store.compaction_history()
        assert len(history) == 1
        event = history[0]
        assert event["kept"] == report["kept"]
        assert event["dropped"] == report["dropped"]
        assert event["bytes_before"] == report["bytes_before"]
        assert event["bytes_after"] == report["bytes_after"]
        assert event["stages"] == report["stages"]
        assert event["time"] > 0

    def test_history_appends_oldest_first_and_is_bounded(
            self, tmp_path):
        from repro.engine.store import COMPACTION_HISTORY_LIMIT

        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        store = CacheStore(root)
        for _ in range(COMPACTION_HISTORY_LIMIT + 3):
            store.compact(max_age_seconds=0.0)
        history = store.compaction_history()
        assert len(history) == COMPACTION_HISTORY_LIMIT
        times = [event["time"] for event in history]
        assert times == sorted(times)

    def test_fresh_store_and_damage_read_as_empty(self, tmp_path):
        root = str(tmp_path / "store")
        store = CacheStore(root)
        assert store.compaction_history() == []
        run_point(root, STRAIGHT)
        store.compact(max_age_seconds=0.0)
        with open(store._compactions_path(), "wb") as handle:
            handle.write(b"not a pickle")
        assert store.compaction_history() == []

    def test_clear_removes_the_history(self, tmp_path):
        root = str(tmp_path / "store")
        run_point(root, STRAIGHT)
        store = CacheStore(root)
        store.compact(max_age_seconds=0.0)
        assert store.compaction_history()
        store.clear()
        assert store.compaction_history() == []
        assert not os.path.exists(store._compactions_path())
